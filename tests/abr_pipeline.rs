//! The full ABR pipeline across crates: log sessions, compute session
//! metrics, evaluate counterfactual ABR controllers with the generic
//! estimators, and verify the estimates against real deployments.

use ddn::abr::policies::AbrPolicy;
use ddn::abr::throughput::{Bandwidth, ThroughputDiscount};
use ddn::abr::{
    abr_space, decode_state, log_session, run_session, AbrAsPolicy, BitrateLadder, BolaLike,
    BufferBased, ExploringAbr, Mpc, QoeModel, Session, SessionConfig, SessionMetrics,
};
use ddn::estimators::{DoublyRobust, Estimator, OverlapReport};
use ddn::models::FnModel;
use ddn::stats::{Rng, Xoshiro256};
use ddn::trace::{Context, Decision};

fn make_session(bandwidth: f64, chunks: usize) -> Session {
    Session::new(
        BitrateLadder::five_level(),
        SessionConfig {
            chunks,
            ..Default::default()
        },
        QoeModel::default(),
        Bandwidth::LogNormal {
            mean: bandwidth,
            std: 0.15 * bandwidth,
        },
        ThroughputDiscount::paper_default(),
    )
}

#[test]
fn session_metrics_rank_policies_consistently_with_qoe() {
    let ladder = BitrateLadder::five_level();
    let policies: Vec<(&str, Box<dyn AbrPolicy>)> = vec![
        ("bba", Box::new(BufferBased::default())),
        ("bola", Box::new(BolaLike::default())),
        ("mpc", Box::new(Mpc::new(5, QoeModel::default()))),
    ];
    for (name, policy) in &policies {
        let mut qoe_sum = 0.0;
        let mut rebuf = 0.0;
        for seed in 0..4 {
            let mut rng = Xoshiro256::seed_from(100 + seed);
            let outcomes = run_session(make_session(1_800.0, 80), policy.as_ref(), &mut rng);
            let m = SessionMetrics::of(&ladder, &outcomes);
            qoe_sum += m.mean_qoe;
            rebuf += m.rebuffer_ratio;
            // Invariants of the rollup.
            assert_eq!(m.level_histogram.iter().sum::<usize>(), m.chunks);
            assert!(m.rebuffer_ratio >= 0.0 && m.rebuffer_ratio < 1.0);
        }
        assert!(
            qoe_sum.is_finite() && rebuf.is_finite(),
            "{name}: degenerate metrics"
        );
    }
}

#[test]
fn dr_estimates_counterfactual_abr_with_stochastic_bandwidth() {
    // Stochastic per-chunk bandwidth makes the chunk-level mapping honest
    // (rewards vary beyond the policy's control), and an ε-exploring BBA
    // logger provides propensities.
    let ladder = BitrateLadder::five_level();
    let mut errors = Vec::new();
    for seed in 0..6u64 {
        let mut rng = Xoshiro256::seed_from(500 + seed);
        let bw = rng.range_f64(1_500.0, 2_500.0);

        // Ground truth: BOLA on the real world.
        let bola = BolaLike::default();
        let mut truth_rng = rng.fork();
        let truth_outcomes = run_session(make_session(bw, 100), &bola, &mut truth_rng);
        let truth: f64 =
            truth_outcomes.iter().map(|c| c.qoe).sum::<f64>() / truth_outcomes.len() as f64;

        // Log under ε-BBA.
        let logger = ExploringAbr::new(BufferBased::default(), 0.25);
        let mut log_rng = rng.fork();
        let logged = log_session(make_session(bw, 100), &logger, &mut log_rng);

        // Sanity: the question is answerable at ε = 0.25.
        let new_policy = AbrAsPolicy::new(BolaLike::default(), ladder.clone());
        let overlap = OverlapReport::analyze(&logged.trace, &new_policy).unwrap();
        assert!(
            overlap.effective_sample_size > 5.0,
            "ess {}",
            overlap.effective_sample_size
        );

        // DR with the assumed-independence chunk model.
        let l2 = ladder.clone();
        let model = FnModel::new(move |ctx: &Context, d: Decision| {
            let st = decode_state(ctx);
            let assumed = st.prev_observed_kbps.unwrap_or(l2.kbps(0));
            let download = l2.chunk_kbits(d.index()) / assumed;
            let rebuffer = (download - st.buffer_secs).max(0.0);
            QoeModel::default().chunk_qoe(&l2, d.index(), st.prev_level, rebuffer)
        });
        let dr = DoublyRobust::new(&model)
            .estimate(&logged.trace, &new_policy)
            .unwrap();
        errors.push((truth - dr.value).abs() / truth.abs().max(0.5));
    }
    let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
    // Session-coupled QoE (buffer carried across chunks) violates the
    // per-tuple reward assumption — the §4.1 "system state" caveat — so
    // the bar here is deliberately loose: the estimate must be in the
    // right ballpark, not tight. Figure 7b (chunk-local rewards) is where
    // the precise comparison lives.
    assert!(
        mean_err < 0.8,
        "DR should stay in the ballpark despite the trajectory coupling: errors {errors:?}"
    );
}

#[test]
fn abr_space_matches_ladder() {
    let ladder = BitrateLadder::five_level();
    let space = abr_space(&ladder);
    assert_eq!(space.len(), ladder.levels());
    assert!(space.name(0).contains("350"));
    assert!(space.name(4).contains("3000"));
}
