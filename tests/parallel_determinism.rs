//! Determinism of the experiment harness: `ExperimentRunner::run_parallel`
//! must be bit-identical to the serial `run` on a real simulate→log→
//! estimate pipeline, for any thread count. The whole reproduction rests
//! on this — 50-run protocols are fanned out across threads, and a single
//! nondeterministic float would change every downstream table.

use ddn::estimators::{DoublyRobust, Estimator, ExperimentRunner, Ips};
use ddn::models::TabularMeanModel;
use ddn::netsim::{small_world, RateProfile};
use ddn::policy::{LookupPolicy, UniformRandomPolicy};

/// One full seeded experiment: simulate a world, log a trace under a
/// uniform policy, then estimate a fixed target policy with IPS and DR.
fn experiment(seed: u64) -> (f64, Vec<(String, f64)>) {
    let world = small_world(RateProfile::Constant(8.0), 60.0);
    let logging = UniformRandomPolicy::new(world.space().clone());
    let trace = world.run(&logging, seed).trace;
    let target = LookupPolicy::constant(trace.space().clone(), 1);
    let ips = Ips::new().estimate(&trace, &target).unwrap().value;
    let model = TabularMeanModel::fit_trace(&trace, 1.0);
    let dr = DoublyRobust::new(&model)
        .estimate(&trace, &target)
        .unwrap()
        .value;
    // Ground truth only anchors the relative errors; keep it nonzero and
    // seed-dependent so the comparison covers the whole table pipeline.
    let truth = 1.0 + trace.mean_reward().abs();
    (truth, vec![("IPS".to_string(), ips), ("DR".to_string(), dr)])
}

#[test]
fn parallel_is_bit_identical_to_serial() {
    let runner = ExperimentRunner::new(8, 4242);
    let serial = runner.run(experiment);
    for threads in [1, 2, 4, 7] {
        let parallel = runner.run_parallel(threads, experiment);
        for name in ["IPS", "DR"] {
            let a = serial.raw_errors(name).unwrap();
            let b = parallel.raw_errors(name).unwrap();
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{name} run {i} differs with {threads} threads: {x} vs {y}"
                );
            }
            // Aggregates derived from identical raws must match exactly too.
            let ra = serial.get(name).unwrap();
            let rb = parallel.get(name).unwrap();
            assert_eq!(ra.mean.to_bits(), rb.mean.to_bits());
            assert_eq!(ra.min.to_bits(), rb.min.to_bits());
            assert_eq!(ra.max.to_bits(), rb.max.to_bits());
        }
    }
}

#[test]
fn repeated_serial_runs_are_bit_identical() {
    let runner = ExperimentRunner::new(4, 77);
    let a = runner.run(experiment);
    let b = runner.run(experiment);
    for name in ["IPS", "DR"] {
        let xs = a.raw_errors(name).unwrap();
        let ys = b.raw_errors(name).unwrap();
        assert!(xs
            .iter()
            .zip(ys)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
