//! The telemetry layer must not weaken the parallel-determinism contract:
//! the deterministic JSON form of a [`TelemetrySnapshot`] (thread count
//! dropped, nanoseconds zeroed, span *counts* kept) must be bit-identical
//! between `run_parallel_instrumented(1, …)` and any other thread count,
//! and between instrumented-serial and instrumented-parallel. Health
//! aggregates are merged in seed order, so every float in them inherits
//! the harness's bit-identity guarantee.

use ddn::estimators::{DoublyRobust, Estimator, ExperimentRunner, Ips};
use ddn::models::TabularMeanModel;
use ddn::netsim::{small_world, RateProfile};
use ddn::policy::{LookupPolicy, UniformRandomPolicy};
use ddn::telemetry::TelemetrySnapshot;

/// The same simulate→log→estimate pipeline the plain determinism test
/// uses, now with telemetry-emitting estimators inside.
fn experiment(seed: u64) -> (f64, Vec<(String, f64)>) {
    let world = small_world(RateProfile::Constant(8.0), 60.0);
    let logging = UniformRandomPolicy::new(world.space().clone());
    let trace = world.run(&logging, seed).trace;
    let target = LookupPolicy::constant(trace.space().clone(), 1);
    let ips = Ips::new().estimate(&trace, &target).unwrap().value;
    let model = TabularMeanModel::fit_trace(&trace, 1.0);
    let dr = DoublyRobust::new(&model)
        .estimate(&trace, &target)
        .unwrap()
        .value;
    let truth = 1.0 + trace.mean_reward().abs();
    (truth, vec![("IPS".to_string(), ips), ("DR".to_string(), dr)])
}

fn deterministic_json(snap: &TelemetrySnapshot) -> String {
    snap.to_json_deterministic().to_string()
}

#[test]
fn telemetry_json_is_bit_identical_across_thread_counts() {
    let runner = ExperimentRunner::new(8, 4242);
    let (serial_table, serial_snap) = runner.run_parallel_instrumented(1, experiment);
    let serial_json = deterministic_json(&serial_snap);
    // The snapshot actually carries health content — this test must not
    // pass vacuously on an empty document.
    assert!(serial_json.contains("\"IPS\""), "{serial_json}");
    assert!(serial_json.contains("\"ess\""), "{serial_json}");
    assert!(serial_json.contains("\"run\""), "span counts missing: {serial_json}");

    for threads in [2, 4, 8] {
        let (table, snap) = runner.run_parallel_instrumented(threads, experiment);
        assert_eq!(
            serial_json,
            deterministic_json(&snap),
            "telemetry diverges at {threads} threads"
        );
        // The error table keeps its own bit-identity alongside.
        for name in ["IPS", "DR"] {
            let a = serial_table.raw_errors(name).unwrap();
            let b = table.raw_errors(name).unwrap();
            assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
}

#[test]
fn instrumented_serial_matches_instrumented_parallel() {
    let runner = ExperimentRunner::new(5, 77);
    let (_, from_serial) = runner.run_instrumented(experiment);
    let (_, from_parallel) = runner.run_parallel_instrumented(4, experiment);
    assert_eq!(
        deterministic_json(&from_serial),
        deterministic_json(&from_parallel)
    );
}

/// `DDN_THREADS` steers [`ExperimentRunner::default_threads`], invalid
/// values fall back to machine parallelism, and the
/// `experiment.default_threads` gauge is written exactly once per
/// process (so concurrent experiments can't flap it mid-read). One test
/// owns the variable for the whole binary — nothing else here reads it.
#[test]
fn ddn_threads_env_overrides_default_thread_count() {
    std::env::set_var("DDN_THREADS", "3");
    assert_eq!(ExperimentRunner::default_threads(), 3);
    let gauge = ddn::telemetry::Registry::global().gauge("experiment.default_threads");
    assert_eq!(gauge.get(), 3.0, "first call records the gauge");

    // Invalid overrides fall back to the machine's parallelism.
    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for junk in ["0", "-2", "many"] {
        std::env::set_var("DDN_THREADS", junk);
        assert_eq!(ExperimentRunner::default_threads(), machine, "{junk:?}");
    }
    std::env::remove_var("DDN_THREADS");
    assert_eq!(ExperimentRunner::default_threads(), machine);

    // Later calls saw different thread counts, but the gauge keeps the
    // first write — once per process, never flapping.
    assert_eq!(gauge.get(), 3.0, "gauge must not be rewritten");
}

#[test]
fn full_json_reports_thread_count_but_deterministic_form_drops_it() {
    let runner = ExperimentRunner::new(3, 9);
    let (_, snap) = runner.run_parallel_instrumented(3, experiment);
    assert_eq!(snap.threads(), 3);
    let full = snap.to_json().to_string();
    assert!(full.contains("\"threads\":3"), "{full}");
    let det = deterministic_json(&snap);
    assert!(!det.contains("\"threads\""), "{det}");
}
