//! Cross-crate integration tests: full pipelines from world simulation
//! through trace serialization to estimation, spanning every crate in the
//! workspace.

use ddn::cdn::cfa::{CfaConfig, CfaWorld};
use ddn::cdn::wise::{WiseConfig, WiseWorld};
use ddn::estimators::{
    DirectMethod, DoublyRobust, Estimator, Ips, MatchingEstimator, SelfNormalizedIps,
};
use ddn::models::{CausalBayesNet, CbnConfig, KnnConfig, KnnRegressor, TabularMeanModel};
use ddn::netsim::{small_world, RateProfile};
use ddn::policy::{EpsilonSmoothedPolicy, LookupPolicy, UniformRandomPolicy};
use ddn::relay::{RelayConfig, RelayWorld};
use ddn::stats::Xoshiro256;
use ddn::trace::{CoverageReport, EmpiricalPropensity, Trace};

/// The full CFA pipeline: world → trace → JSONL → reload → estimate.
/// Serialization must not change any estimate.
#[test]
fn serialization_roundtrip_preserves_estimates() {
    let world = CfaWorld::new(CfaConfig::default(), 42);
    let mut rng = Xoshiro256::seed_from(1);
    let clients = world.sample_clients(400, &mut rng);
    let old = UniformRandomPolicy::new(world.space().clone());
    let trace = world.log_trace(&clients, &old, 2);
    let newp = world.greedy_policy();

    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).unwrap();
    let reloaded = Trace::read_jsonl(&buf[..]).unwrap();
    assert_eq!(trace.len(), reloaded.len());

    let knn_a = KnnRegressor::fit(&trace, KnnConfig::default());
    let knn_b = KnnRegressor::fit(&reloaded, KnnConfig::default());
    for (est_a, est_b) in [
        (
            DoublyRobust::new(&knn_a).estimate(&trace, &newp).unwrap(),
            DoublyRobust::new(&knn_b)
                .estimate(&reloaded, &newp)
                .unwrap(),
        ),
        (
            Ips::new().estimate(&trace, &newp).unwrap(),
            Ips::new().estimate(&reloaded, &newp).unwrap(),
        ),
        (
            MatchingEstimator::new().estimate(&trace, &newp).unwrap(),
            MatchingEstimator::new().estimate(&reloaded, &newp).unwrap(),
        ),
    ] {
        assert_eq!(est_a.value, est_b.value);
        assert_eq!(est_a.per_record, est_b.per_record);
    }
}

/// All estimators agree (approximately) on a well-posed problem with ample
/// randomization, and all land near the analytic ground truth.
#[test]
fn estimators_concur_on_well_posed_problem() {
    let world = CfaWorld::new(CfaConfig::default(), 7);
    let mut rng = Xoshiro256::seed_from(3);
    let clients = world.sample_clients(6_000, &mut rng);
    let old = UniformRandomPolicy::new(world.space().clone());
    let trace = world.log_trace(&clients, &old, 4);
    let newp = world.greedy_policy();
    let truth = world.true_value(&clients, &newp);

    let knn = KnnRegressor::fit(&trace, KnnConfig::default());
    let estimates = [
        (
            "DM",
            DirectMethod::new(&knn)
                .estimate(&trace, &newp)
                .unwrap()
                .value,
        ),
        ("IPS", Ips::new().estimate(&trace, &newp).unwrap().value),
        (
            "SNIPS",
            SelfNormalizedIps::new()
                .estimate(&trace, &newp)
                .unwrap()
                .value,
        ),
        (
            "DR",
            DoublyRobust::new(&knn)
                .estimate(&trace, &newp)
                .unwrap()
                .value,
        ),
        (
            "CFA",
            MatchingEstimator::new()
                .estimate(&trace, &newp)
                .unwrap()
                .value,
        ),
    ];
    for (name, v) in estimates {
        let rel = (v - truth).abs() / truth.abs();
        assert!(
            rel < 0.1,
            "{name} estimate {v} too far from truth {truth} (rel {rel})"
        );
    }
}

/// Estimating the logging policy itself (on-policy) must agree with the
/// trace's empirical mean for IPS-family estimators.
#[test]
fn on_policy_estimation_recovers_trace_mean() {
    let world = RelayWorld::new(RelayConfig::default(), 5);
    let mut rng = Xoshiro256::seed_from(6);
    let calls = world.sample_calls(2_000, &mut rng);
    let old = UniformRandomPolicy::new(world.space().clone());
    let trace = world.log_trace(&calls, &old, 7);

    let ips = Ips::new().estimate(&trace, &old).unwrap().value;
    let snips = SelfNormalizedIps::new()
        .estimate(&trace, &old)
        .unwrap()
        .value;
    assert!((ips - trace.mean_reward()).abs() < 1e-9);
    assert!((snips - trace.mean_reward()).abs() < 1e-9);
}

/// When the logging policy is unknown, EmpiricalPropensity recovers usable
/// propensities and IPS built on them still de-biases the estimate.
#[test]
fn estimated_propensities_rescue_an_unlabelled_trace() {
    let world = RelayWorld::new(RelayConfig::default(), 8);
    let mut rng = Xoshiro256::seed_from(9);
    let calls = world.sample_calls(8_000, &mut rng);
    let old = world.nat_only_relay_policy(0.25);
    let labelled = world.log_trace(&calls, &old, 10);

    // Strip the propensities (simulating a production trace without them).
    let stripped_records: Vec<_> = labelled
        .records()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.propensity = None;
            r
        })
        .collect();
    let stripped = Trace::from_records(
        labelled.schema().clone(),
        labelled.space().clone(),
        stripped_records,
    )
    .unwrap();

    // Re-estimate them from the trace.
    let fitted = EmpiricalPropensity::fit(&stripped, 0.5);
    let refilled_records: Vec<_> = stripped
        .records()
        .iter()
        .map(|r| {
            let p = fitted.prob(&r.context, r.decision).clamp(1e-6, 1.0);
            let mut r = r.clone();
            r.propensity = Some(p);
            r
        })
        .collect();
    let refilled = Trace::from_records(
        stripped.schema().clone(),
        stripped.space().clone(),
        refilled_records,
    )
    .unwrap();

    let relay_all = LookupPolicy::constant(world.space().clone(), 1);
    let truth = world.true_value(&calls, &relay_all);
    let ips = Ips::new().estimate(&refilled, &relay_all).unwrap().value;
    let naive = {
        let matched: Vec<f64> = refilled
            .records()
            .iter()
            .filter(|r| r.decision.index() == 1)
            .map(|r| r.reward)
            .collect();
        matched.iter().sum::<f64>() / matched.len() as f64
    };
    assert!(
        (ips - truth).abs() < (naive - truth).abs(),
        "IPS with estimated propensities ({ips}) should beat the naive average ({naive}), truth {truth}"
    );
}

/// The netsim → trace → model → estimator pipeline: evaluate a policy on
/// simulated telemetry and check the estimate against a fresh deployment.
#[test]
fn netsim_pipeline_estimates_deployment_value() {
    let world = small_world(RateProfile::Constant(8.0), 600.0);
    let old = EpsilonSmoothedPolicy::new(
        Box::new(LookupPolicy::constant(world.space().clone(), 1)),
        0.3,
    );
    let newp = LookupPolicy::constant(world.space().clone(), 0);
    let out = world.run(&old, 11);
    let model = TabularMeanModel::fit_trace(&out.trace, 1.0);
    let estimate = DoublyRobust::new(model)
        .estimate(&out.trace, &newp)
        .unwrap()
        .value;
    let truth = world.true_value(&newp, 500, 5);
    let rel = (estimate - truth).abs() / truth.abs();
    assert!(
        rel < 0.25,
        "DR estimate {estimate} vs deployment truth {truth} (rel {rel})"
    );
}

/// The WISE world's CBN + DR pipeline holds together end to end, and the
/// coverage report flags the skew that drives the pitfall.
#[test]
fn wise_pipeline_and_coverage_diagnostics() {
    let world = WiseWorld::new(WiseConfig {
        long_ms: 900.0,
        short_ms: 300.0,
        noise_std: 350.0,
        clients_per_arrow: 500,
        clients_per_rare_cell: 5,
    });
    let pop = world.population();
    let trace = world.log_trace(&pop, &world.old_policy(), 12);

    let coverage = CoverageReport::of(&trace);
    assert_eq!(coverage.decisions_total, 4);
    assert!(
        !coverage.has_unseen_decisions(),
        "even rare cells have ~5 observations"
    );
    // The skew: the most-logged decision dwarfs the least-logged.
    let max = *coverage.per_decision.iter().max().unwrap();
    let min = *coverage.per_decision.iter().min().unwrap();
    assert!(
        max > 20 * min,
        "expected heavy skew, got {:?}",
        coverage.per_decision
    );

    let cbn = CausalBayesNet::fit(
        &trace,
        &CbnConfig {
            decision_axes: Some(vec![2, 2]),
            numeric_bins: 4,
            max_parents: 4,
        },
    );
    let newp = world.new_policy();
    let truth = world.true_value(&pop, &newp);
    let wise = DirectMethod::new(cbn.clone())
        .estimate(&trace, &newp)
        .unwrap()
        .value;
    let dr = DoublyRobust::new(cbn)
        .estimate(&trace, &newp)
        .unwrap()
        .value;
    assert!(
        (dr - truth).abs() <= (wise - truth).abs() + 30.0,
        "DR ({dr}) should not be much worse than WISE ({wise}); truth {truth}"
    );
}

/// Decision-space mismatches are rejected uniformly across estimators.
#[test]
fn space_mismatch_rejected_everywhere() {
    let world = CfaWorld::new(CfaConfig::default(), 13);
    let mut rng = Xoshiro256::seed_from(14);
    let clients = world.sample_clients(50, &mut rng);
    let old = UniformRandomPolicy::new(world.space().clone());
    let trace = world.log_trace(&clients, &old, 15);
    let wrong = UniformRandomPolicy::new(ddn::trace::DecisionSpace::of(&["just-one"]));

    assert!(Ips::new().estimate(&trace, &wrong).is_err());
    assert!(SelfNormalizedIps::new().estimate(&trace, &wrong).is_err());
    assert!(MatchingEstimator::new().estimate(&trace, &wrong).is_err());
    let knn = KnnRegressor::fit(&trace, KnnConfig::default());
    assert!(DirectMethod::new(&knn).estimate(&trace, &wrong).is_err());
    assert!(DoublyRobust::new(&knn).estimate(&trace, &wrong).is_err());
}
