//! Golden-file tests pinning the JSONL wire format of `Trace::save` /
//! `Trace::load` against what the pre-hermetic serde implementation wrote.
//!
//! The in-repo JSON writer must stay byte-compatible: traces persisted by
//! older builds (serde_json with `float_roundtrip`) load unchanged, and
//! newly written files are byte-identical to what serde would have
//! produced. Each line below was captured from the old serializer.

use ddn::trace::{
    Context, ContextSchema, Decision, DecisionSpace, StateTag, Trace, TraceRecord,
};

/// Exactly what the serde-era writer produced for a two-feature schema, a
/// three-decision space, and three records exercising every optional-field
/// combination (all set / none set / some set).
const GOLDEN: &str = concat!(
    r#"{"schema":{"inner":{"names":["isp","rtt"],"kinds":[{"Categorical":{"cardinality":2}},"Numeric"]}},"space":{"names":["a","b","c"]}}"#,
    "\n",
    r#"{"context":{"values":[0,10.0]},"decision":0,"reward":1.0,"propensity":0.5,"state":1,"timestamp":0.25}"#,
    "\n",
    r#"{"context":{"values":[1,20.5]},"decision":1,"reward":-0.5}"#,
    "\n",
    r#"{"context":{"values":[1,30.0]},"decision":2,"reward":0.0,"propensity":0.125}"#,
    "\n",
);

fn golden_trace() -> Trace {
    let schema = ContextSchema::builder()
        .categorical("isp", 2)
        .numeric("rtt")
        .build();
    let space = DecisionSpace::of(&["a", "b", "c"]);
    let rec = |isp: u32, rtt: f64, d: usize, r: f64| {
        let c = Context::build(&schema)
            .set_cat("isp", isp)
            .set_numeric("rtt", rtt)
            .finish();
        TraceRecord::new(c, Decision::from_index(d), r)
    };
    Trace::from_records(
        schema.clone(),
        space,
        vec![
            rec(0, 10.0, 0, 1.0)
                .with_propensity(0.5)
                .with_state(StateTag::HIGH_LOAD)
                .with_timestamp(0.25),
            rec(1, 20.5, 1, -0.5),
            rec(1, 30.0, 2, 0.0).with_propensity(0.125),
        ],
    )
    .unwrap()
}

#[test]
fn golden_file_loads() {
    let t = Trace::read_jsonl(GOLDEN.as_bytes()).unwrap();
    assert_eq!(t.len(), 3);
    assert_eq!(t.schema().position("rtt"), Some(1));
    assert_eq!(t.space().names(), &["a", "b", "c"]);
    let r0 = &t.records()[0];
    assert_eq!(r0.context.cat(0), 0);
    assert_eq!(r0.context.num(1), 10.0);
    assert_eq!(r0.decision.index(), 0);
    assert_eq!(r0.propensity, Some(0.5));
    assert_eq!(r0.state, Some(StateTag::HIGH_LOAD));
    assert_eq!(r0.timestamp, Some(0.25));
    let r1 = &t.records()[1];
    assert_eq!(r1.propensity, None);
    assert_eq!(r1.state, None);
    assert_eq!(r1.timestamp, None);
    assert_eq!(t.records(), golden_trace().records());
}

#[test]
fn writer_is_byte_identical_to_golden() {
    let mut buf = Vec::new();
    golden_trace().write_jsonl(&mut buf).unwrap();
    assert_eq!(
        std::str::from_utf8(&buf).unwrap(),
        GOLDEN,
        "writer output drifted from the pinned serde wire format"
    );
}

#[test]
fn golden_roundtrips_byte_identical() {
    // load → save reproduces the input byte-for-byte (float formatting
    // included), so repeated load/save cycles never churn trace files.
    let t = Trace::read_jsonl(GOLDEN.as_bytes()).unwrap();
    let mut buf = Vec::new();
    t.write_jsonl(&mut buf).unwrap();
    assert_eq!(std::str::from_utf8(&buf).unwrap(), GOLDEN);
}

#[test]
fn unknown_fields_are_ignored() {
    // serde's default deserialization ignored unknown fields; loaders must
    // keep doing so (forward compatibility with annotated traces).
    let with_extra = GOLDEN.replace(
        r#""reward":1.0"#,
        r#""reward":1.0,"annotator":"v2","weights":[1,2]"#,
    );
    let t = Trace::read_jsonl(with_extra.as_bytes()).unwrap();
    assert_eq!(t.records(), golden_trace().records());
}

#[test]
fn save_load_file_roundtrip() {
    let t = golden_trace();
    let path = std::env::temp_dir().join(format!("ddn_golden_{}.jsonl", std::process::id()));
    t.save(&path).unwrap();
    let back = Trace::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back.records(), t.records());
    assert_eq!(back.space(), t.space());
    assert_eq!(back.schema().position("isp"), Some(0));
}

#[test]
fn load_reports_missing_file_as_io_error() {
    let e = Trace::load("/nonexistent/ddn/definitely_missing.jsonl").unwrap_err();
    assert!(matches!(e, ddn::trace::TraceError::Io(_)), "{e}");
}
