//! Offline bandit bake-off via the §4.2 replay evaluator: a global
//! ε-greedy learner, a Pytheas-style grouped learner, and LinUCB are all
//! replayed over the *same* uniformly randomized log, and the replay
//! estimates are checked against each policy's simulated deployment value.
//! This is the workflow the paper's reference list sketches (refs [18],
//! [27]) and the reproduction makes executable.

use ddn::cdn::cfa::{CfaConfig, CfaWorld};
use ddn::estimators::ReplayEvaluator;
use ddn::models::{KnnConfig, KnnRegressor};
use ddn::policy::{GroupedBandit, HistoryPolicy, UniformRandomPolicy};
use ddn::scenarios::ablations::nonstationary::EpsilonGreedyBandit;
use ddn::stats::dist::{Distribution, Normal};
use ddn::stats::Xoshiro256;

fn world() -> CfaWorld {
    CfaWorld::new(
        CfaConfig {
            cities: 4,
            devices: 2,
            connections: 2,
            noise_std: 0.3,
            ..Default::default()
        },
        808,
    )
}

/// Deploys `policy` online for `n` clients, `reps` times; returns the mean
/// reward (the policy's true streaming value).
fn deploy(
    world: &CfaWorld,
    policy: &mut dyn HistoryPolicy,
    n: usize,
    reps: usize,
    rng: &mut Xoshiro256,
) -> f64 {
    let noise = Normal::new(0.0, world.config().noise_std);
    let mut total = 0.0;
    for _ in 0..reps {
        policy.reset();
        let mut sim = rng.fork();
        let clients = world.sample_clients(n, &mut sim);
        let mut sum = 0.0;
        for ctx in &clients {
            let (d, _) = policy.sample_with_prob(ctx, &mut sim);
            let r = world.mean_quality(ctx, d) + noise.sample(&mut sim);
            policy.observe(ctx, d, r);
            sum += r;
        }
        total += sum / n as f64;
    }
    total / reps as f64
}

#[test]
fn replay_ranks_the_bandits_like_deployment_does() {
    let world = world();
    let old = UniformRandomPolicy::new(world.space().clone());
    let n_clients = 24_000;
    let horizon = n_clients / world.space().len(); // replay's effective stream

    let mut rng = Xoshiro256::seed_from(42);

    // Deployment (ground-truth) values over the replay-equivalent horizon.
    let mut global = EpsilonGreedyBandit::new(world.space().clone(), 0.1);
    let mut grouped = GroupedBandit::new(world.space().clone(), 0.1, |c: &ddn::trace::Context| {
        vec![c.cat(0), c.cat(2)] // city × connection: the features that matter
    });
    let truth_global = deploy(&world, &mut global, horizon, 6, &mut rng);
    let truth_grouped = deploy(&world, &mut grouped, horizon, 6, &mut rng);
    assert!(
        truth_grouped > truth_global + 0.05,
        "grouping should genuinely help: grouped {truth_grouped} vs global {truth_global}"
    );

    // Offline replay over one shared log.
    let clients = world.sample_clients(n_clients, &mut rng);
    let trace = world.log_trace(&clients, &old, 777);
    let knn = KnnRegressor::fit(&trace, KnnConfig::default());
    let evaluator = ReplayEvaluator::new(&knn);

    let mut replay_rng = rng.fork();
    let est_global = evaluator
        .evaluate(&trace, &old, &mut global, &mut replay_rng)
        .unwrap();
    let mut replay_rng2 = rng.fork();
    let est_grouped = evaluator
        .evaluate(&trace, &old, &mut grouped, &mut replay_rng2)
        .unwrap();

    // Each estimate tracks its own deployment truth...
    let err_global = (est_global.estimate.value - truth_global).abs() / truth_global;
    let err_grouped = (est_grouped.estimate.value - truth_grouped).abs() / truth_grouped;
    assert!(err_global < 0.1, "global replay error {err_global}");
    assert!(err_grouped < 0.1, "grouped replay error {err_grouped}");

    // ...and the offline ranking matches the online one: the whole point
    // of trace-driven evaluation.
    assert!(
        est_grouped.estimate.value > est_global.estimate.value,
        "replay should rank grouped ({}) above global ({})",
        est_grouped.estimate.value,
        est_global.estimate.value
    );
}
