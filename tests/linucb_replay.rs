//! LinUCB (the paper's ref [27] policy family) replayed through the §4.2
//! evaluator: the classic "evaluate a contextual bandit offline from a
//! uniformly randomized log" pipeline, end to end across crates.

use ddn::cdn::cfa::{CfaConfig, CfaWorld};
use ddn::estimators::ReplayEvaluator;
use ddn::models::{KnnConfig, KnnRegressor};
use ddn::policy::{HistoryPolicy, LinUcb, UniformRandomPolicy};
use ddn::stats::dist::{Distribution, Normal};
use ddn::stats::Xoshiro256;

fn world() -> CfaWorld {
    CfaWorld::new(
        CfaConfig {
            cities: 4,
            devices: 2,
            connections: 2,
            noise_std: 0.3,
            ..Default::default()
        },
        616,
    )
}

/// Simulates LinUCB interacting with the real world for `n` clients and
/// returns its mean reward — the ground truth the replay should track.
fn linucb_truth(world: &CfaWorld, n: usize, reps: usize, rng: &mut Xoshiro256) -> f64 {
    let noise = Normal::new(0.0, world.config().noise_std);
    let mut total = 0.0;
    for _ in 0..reps {
        let mut bandit = LinUcb::new(world.space().clone(), world.schema().len(), 0.8, 1.0);
        bandit.reset();
        let mut sim = rng.fork();
        let clients = world.sample_clients(n, &mut sim);
        let mut sum = 0.0;
        for ctx in &clients {
            let (d, _) = bandit.sample_with_prob(ctx, &mut sim);
            let r = world.mean_quality(ctx, d) + noise.sample(&mut sim);
            bandit.observe(ctx, d, r);
            sum += r;
        }
        total += sum / n as f64;
    }
    total / reps as f64
}

#[test]
fn replay_tracks_linucb_learning() {
    let world = world();
    let old = UniformRandomPolicy::new(world.space().clone());
    let n_clients = 6_000;
    let expected_accepted = n_clients / world.space().len();

    let mut errors = Vec::new();
    for seed in 0..4u64 {
        let mut rng = Xoshiro256::seed_from(3_000 + seed);
        let truth = linucb_truth(&world, expected_accepted, 6, &mut rng);

        let clients = world.sample_clients(n_clients, &mut rng);
        let trace = world.log_trace(&clients, &old, 4_000 + seed);
        let knn = KnnRegressor::fit(&trace, KnnConfig::default());

        let mut bandit = LinUcb::new(world.space().clone(), world.schema().len(), 0.8, 1.0);
        let mut replay_rng = rng.fork();
        let out = ReplayEvaluator::new(&knn)
            .evaluate(&trace, &old, &mut bandit, &mut replay_rng)
            .expect("uniform logging guarantees acceptances");

        // Acceptance ≈ 1/|D| for a deterministic policy vs uniform logging.
        assert!(
            (out.acceptance_rate() - 1.0 / 12.0).abs() < 0.03,
            "acceptance {}",
            out.acceptance_rate()
        );
        errors.push((truth - out.estimate.value).abs() / truth.abs());
    }
    let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(
        mean_err < 0.1,
        "replay should track LinUCB's learning within 10%: errors {errors:?}"
    );
}

#[test]
fn linucb_beats_uniform_in_the_real_world() {
    let world = world();
    let mut rng = Xoshiro256::seed_from(9);
    let bandit_value = linucb_truth(&world, 800, 4, &mut rng);
    let clients = world.sample_clients(4_000, &mut rng);
    let uniform_value =
        world.true_value(&clients, &UniformRandomPolicy::new(world.space().clone()));
    // Raw categorical codes are a crude featurization for a linear model,
    // so the margin is modest — but learning must beat not learning.
    assert!(
        bandit_value > uniform_value + 0.1,
        "LinUCB ({bandit_value}) should beat uniform ({uniform_value})"
    );
}
