//! Property-based tests (ddn-testkit) for the streaming-estimator
//! contract: replaying a trace record-by-record through each `Online*`
//! estimator yields estimates that are **bit-identical** to the batch
//! engine over the same records in the same order — values, weight
//! diagnostics, and errors alike. This is the invariant the ddn-serve
//! ingest path leans on: a served session must never drift from what
//! `ddn evaluate` would print for the same trace.
//!
//! Every property runs 64 cases (ddn-testkit's default) drawn from a fixed
//! per-property seed; `DDN_TESTKIT_CASES` / `DDN_TESTKIT_SEED` crank the
//! volume or reseed.

use ddn::estimators::{
    ActionEmbedding, AdaptiveDr, AdaptiveIps, AdaptiveWeights, BatchEstimator, ClippedIps,
    DirectMethod, DoublyRobust, Estimate, Estimator, EstimatorError, EvalBatch, Ips,
    MarginalizedDr, OnlineAdaptiveDr, OnlineAdaptiveIps, OnlineClippedIps, OnlineDm, OnlineDr,
    OnlineEstimate, OnlineEstimator, OnlineIps, OnlineMarginalizedDr, OnlineSeqDr, OnlineSnips,
    SelfNormalizedIps, SeqDr, SlidingWindow,
};
use ddn::models::FnModel;
use ddn::policy::{EpsilonSmoothedPolicy, LookupPolicy, Policy, UniformRandomPolicy};
use ddn::trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};
use ddn_testkit::{prop, prop_assert, prop_assert_eq, vecs, Gen};

fn schema() -> ContextSchema {
    ContextSchema::builder()
        .categorical("g", 3)
        .numeric("x")
        .build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b", "c"])
}

fn ctx(g: u32, x: f64) -> Context {
    Context::build(&schema())
        .set_cat("g", g)
        .set_numeric("x", x)
        .finish()
}

/// Generator: a random logged record as (g, x, decision, reward, propensity).
fn record_gen() -> impl Gen<Value = (u32, f64, usize, f64, f64)> {
    (
        0u32..3,
        -100.0..100.0f64,
        0usize..3,
        -50.0..50.0f64,
        0.05..1.0f64,
    )
}

fn build_records(rows: &[(u32, f64, usize, f64, f64)]) -> Vec<TraceRecord> {
    rows.iter()
        .map(|&(g, x, d, r, p)| {
            TraceRecord::new(ctx(g, x), Decision::from_index(d), r).with_propensity(p)
        })
        .collect()
}

fn build_trace(rows: &[(u32, f64, usize, f64, f64)]) -> Trace {
    Trace::from_records(schema(), space(), build_records(rows)).expect("valid random trace")
}

/// Shared reward model: depends on both context fields and the decision,
/// so DM/DR contributions genuinely vary per record.
fn parity_score(c: &Context, d: Decision) -> f64 {
    c.cat(0) as f64 * 1.3 + 0.7 * d.index() as f64 - 0.01 * c.num(1)
}

fn parity_model() -> FnModel<fn(&Context, Decision) -> f64> {
    FnModel::new(parity_score as fn(&Context, Decision) -> f64)
}

/// A mildly stochastic target policy: mostly-constant with an ε of
/// exploration, so importance weights vary without ever being undefined.
fn target_policy(base: usize, eps: f64) -> EpsilonSmoothedPolicy {
    EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), base)), eps)
}

/// Streams the whole trace through `online`, then checks the result
/// against the batch outcome: Ok/Ok must agree bit-for-bit on the value,
/// the record count, and every weight diagnostic; Err/Err must be the
/// same error (including the record index it carries).
fn check_stream_parity(
    online: &mut dyn OnlineEstimator,
    batch: Result<Estimate, EstimatorError>,
    trace: &Trace,
) -> Result<(), String> {
    let name = online.name().to_string();
    let streamed: Result<OnlineEstimate, EstimatorError> = (|| {
        for rec in trace.records() {
            online.push(rec)?;
        }
        online.estimate()
    })();
    match (streamed, batch) {
        (Ok(o), Ok(b)) => {
            if o.value.to_bits() != b.value.to_bits() {
                return Err(format!("{name}: value {} (batch {}) differ", o.value, b.value));
            }
            if o.n != b.per_record.len() {
                return Err(format!(
                    "{name}: n {} != batch record count {}",
                    o.n,
                    b.per_record.len()
                ));
            }
            let (od, bd) = (&o.diagnostics, &b.diagnostics);
            for (field, x, y) in [
                ("mean_weight", od.mean_weight, bd.mean_weight),
                ("max_weight", od.max_weight, bd.max_weight),
                ("ess", od.effective_sample_size, bd.effective_sample_size),
                (
                    "zero_weight_fraction",
                    od.zero_weight_fraction,
                    bd.zero_weight_fraction,
                ),
            ] {
                if x.to_bits() != y.to_bits() {
                    return Err(format!("{name}: diagnostics.{field} {x} (batch {y}) differ"));
                }
            }
            if od.n != bd.n {
                return Err(format!("{name}: diagnostics.n {} != {}", od.n, bd.n));
            }
            Ok(())
        }
        (Err(a), Err(b)) => {
            let (a, b) = (format!("{a:?}"), format!("{b:?}"));
            if a == b {
                Ok(())
            } else {
                Err(format!("{name}: errors differ: online {a} vs batch {b}"))
            }
        }
        (Ok(_), Err(e)) => Err(format!("{name}: online Ok, batch Err {e:?}")),
        (Err(e), Ok(_)) => Err(format!("{name}: online Err {e:?}, batch Ok")),
    }
}

/// Checks that two offline engines (scalar vs columnar) produced the
/// same outcome bit-for-bit: value, per-record contributions, and weight
/// diagnostics on success; the same error otherwise.
fn check_engine_agreement(
    name: &str,
    scalar: &Result<Estimate, EstimatorError>,
    batch: &Result<Estimate, EstimatorError>,
) -> Result<(), String> {
    match (scalar, batch) {
        (Ok(s), Ok(b)) => {
            if s.value.to_bits() != b.value.to_bits() {
                return Err(format!(
                    "{name}: scalar value {} != columnar {}",
                    s.value, b.value
                ));
            }
            if s.per_record.len() != b.per_record.len() {
                return Err(format!(
                    "{name}: contribution counts differ: {} vs {}",
                    s.per_record.len(),
                    b.per_record.len()
                ));
            }
            for (k, (x, y)) in s.per_record.iter().zip(&b.per_record).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Err(format!("{name}: contribution {k}: {x} vs {y}"));
                }
            }
            if s.diagnostics.max_weight.to_bits() != b.diagnostics.max_weight.to_bits() {
                return Err(format!("{name}: max_weight diverged"));
            }
            Ok(())
        }
        (Err(a), Err(b)) => {
            let (a, b) = (format!("{a:?}"), format!("{b:?}"));
            if a == b {
                Ok(())
            } else {
                Err(format!("{name}: scalar err {a} vs columnar err {b}"))
            }
        }
        (Ok(_), Err(e)) => Err(format!("{name}: scalar Ok, columnar Err {e:?}")),
        (Err(e), Ok(_)) => Err(format!("{name}: scalar Err {e:?}, columnar Ok")),
    }
}

/// A 3-arm embedding that genuinely marginalizes: arms a and b share
/// group 0, arm c is group 1 by itself.
fn grouped_embedding() -> ActionEmbedding {
    ActionEmbedding::from_groups(vec![0, 0, 1])
}

prop! {
    // ---- Tentpole invariant: online ≡ batch, bit for bit ---------------

    fn online_menu_matches_batch(rows in vecs(record_gen(), 1..40), base in 0usize..3, eps in 0.0..1.0f64) {
        let trace = build_trace(&rows);
        let policy = target_policy(base, eps);
        let model = parity_model();
        let batch = EvalBatch::with_model(&trace, &policy, &model).unwrap();
        let newp = || -> Box<dyn Policy + Send + Sync> { Box::new(target_policy(base, eps)) };
        let newm = || -> Box<dyn ddn::models::RewardModel + Send + Sync> { Box::new(parity_model()) };

        let mut menu: Vec<(Box<dyn OnlineEstimator>, Result<Estimate, EstimatorError>)> = vec![
            (
                Box::new(OnlineIps::new(space(), newp()).unwrap()),
                Ips::new().estimate_batch(&trace, &batch),
            ),
            (
                Box::new(OnlineSnips::new(space(), newp()).unwrap()),
                SelfNormalizedIps::new().estimate_batch(&trace, &batch),
            ),
            (
                Box::new(OnlineClippedIps::new(space(), newp(), 2.0).unwrap()),
                ClippedIps::new(2.0).estimate_batch(&trace, &batch),
            ),
            (
                Box::new(OnlineDm::new(space(), newp(), newm()).unwrap()),
                DirectMethod::new(parity_model()).estimate_batch(&trace, &batch),
            ),
            (
                Box::new(OnlineDr::new(space(), newp(), newm()).unwrap()),
                DoublyRobust::new(parity_model()).estimate_batch(&trace, &batch),
            ),
        ];
        for (mut online, batch_result) in menu.drain(..) {
            if let Err(msg) = check_stream_parity(online.as_mut(), batch_result, &trace) {
                prop_assert!(false, "{}", msg);
            }
        }
    }

    // ---- Menu trio: scalar ≡ columnar ≡ online, bit for bit ------------

    fn menu_trio_matches_all_engines(rows in vecs(record_gen(), 1..40), base in 0usize..3, eps in 0.0..1.0f64, horizon in 1usize..5) {
        let trace = build_trace(&rows);
        let policy = target_policy(base, eps);
        let model = parity_model();
        let batch = EvalBatch::with_model(&trace, &policy, &model).unwrap();
        let newp = || -> Box<dyn Policy + Send + Sync> { Box::new(target_policy(base, eps)) };
        let newm = || -> Box<dyn ddn::models::RewardModel + Send + Sync> { Box::new(parity_model()) };
        let logging = || -> Box<dyn Policy + Send + Sync> { Box::new(UniformRandomPolicy::new(space())) };

        // When the trace is shorter than the horizon, SeqDr has zero
        // complete trajectories and all three engines must reject it with
        // the same NoUsableRecords — the Err/Err arms below cover that.
        let mut menu: Vec<(
            Box<dyn OnlineEstimator>,
            Result<Estimate, EstimatorError>,
            Result<Estimate, EstimatorError>,
        )> = vec![
            (
                Box::new(OnlineAdaptiveIps::new(space(), newp(), AdaptiveWeights::Stabilized).unwrap()),
                AdaptiveIps::new(AdaptiveWeights::Stabilized).estimate(&trace, &policy),
                AdaptiveIps::new(AdaptiveWeights::Stabilized).estimate_batch(&trace, &batch),
            ),
            (
                Box::new(OnlineAdaptiveDr::new(space(), newp(), newm(), AdaptiveWeights::Stabilized).unwrap()),
                AdaptiveDr::new(parity_model(), AdaptiveWeights::Stabilized).estimate(&trace, &policy),
                AdaptiveDr::new(parity_model(), AdaptiveWeights::Stabilized).estimate_batch(&trace, &batch),
            ),
            (
                Box::new(OnlineMarginalizedDr::new(space(), newp(), logging(), newm(), grouped_embedding()).unwrap()),
                MarginalizedDr::new(parity_model(), grouped_embedding(), logging()).estimate(&trace, &policy),
                MarginalizedDr::new(parity_model(), grouped_embedding(), logging()).estimate_batch(&trace, &batch),
            ),
            (
                Box::new(OnlineSeqDr::new(space(), newp(), newm(), horizon).unwrap()),
                SeqDr::new(parity_model(), horizon).estimate(&trace, &policy),
                SeqDr::new(parity_model(), horizon).estimate_batch(&trace, &batch),
            ),
        ];
        for (mut online, scalar, batch_result) in menu.drain(..) {
            let name = online.name().to_string();
            if let Err(msg) = check_engine_agreement(&name, &scalar, &batch_result) {
                prop_assert!(false, "{}", msg);
            }
            if let Err(msg) = check_stream_parity(online.as_mut(), batch_result, &trace) {
                prop_assert!(false, "{}", msg);
            }
        }
    }

    // ---- Menu trio behind a sliding window ≡ batch over the tail -------

    fn windowed_trio_equals_batch_over_tail(rows in vecs(record_gen(), 1..60), cap in 1usize..50, horizon in 1usize..4) {
        let policy = target_policy(2, 0.4);
        let newp = || -> Box<dyn Policy + Send + Sync> { Box::new(target_policy(2, 0.4)) };
        let newm = || -> Box<dyn ddn::models::RewardModel + Send + Sync> { Box::new(parity_model()) };
        let logging = || -> Box<dyn Policy + Send + Sync> { Box::new(UniformRandomPolicy::new(space())) };
        let tail_start = rows.len().saturating_sub(cap);
        let tail = build_trace(&rows[tail_start..]);

        let mut adaptive = SlidingWindow::new(
            OnlineAdaptiveIps::new(space(), newp(), AdaptiveWeights::Stabilized).unwrap(),
            cap,
        );
        let mut mdr = SlidingWindow::new(
            OnlineMarginalizedDr::new(space(), newp(), logging(), newm(), grouped_embedding()).unwrap(),
            cap,
        );
        let mut seq = SlidingWindow::new(
            OnlineSeqDr::new(space(), newp(), newm(), horizon).unwrap(),
            cap,
        );
        for rec in build_trace(&rows).records() {
            adaptive.push(rec);
            mdr.push(rec);
            seq.push(rec);
        }

        let batch = AdaptiveIps::new(AdaptiveWeights::Stabilized).estimate(&tail, &policy).unwrap();
        let online = adaptive.estimate().unwrap();
        prop_assert_eq!(online.value.to_bits(), batch.value.to_bits());
        prop_assert_eq!(online.n, rows.len() - tail_start);

        let batch = MarginalizedDr::new(parity_model(), grouped_embedding(), logging())
            .estimate(&tail, &policy)
            .unwrap();
        let online = mdr.estimate().unwrap();
        prop_assert_eq!(online.value.to_bits(), batch.value.to_bits());

        // The window can be shorter than the horizon; replay and batch
        // must then agree on NoUsableRecords rather than a value.
        match (seq.estimate(), SeqDr::new(parity_model(), horizon).estimate(&tail, &policy)) {
            (Ok(o), Ok(b)) => {
                prop_assert_eq!(o.value.to_bits(), b.value.to_bits());
                prop_assert_eq!(o.n, b.per_record.len());
            }
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (o, b) => prop_assert!(false, "SeqDR windowed/batch split: {:?} vs {:?}", o.is_ok(), b.is_ok()),
        }
    }

    // ---- Edge: a missing propensity fails identically ------------------

    fn missing_propensity_error_parity(rows in vecs(record_gen(), 2..40), hole_seed in 0usize..1_000) {
        let hole = hole_seed % rows.len();
        let records: Vec<TraceRecord> = rows
            .iter()
            .enumerate()
            .map(|(k, &(g, x, d, r, p))| {
                let rec = TraceRecord::new(ctx(g, x), Decision::from_index(d), r);
                if k == hole { rec } else { rec.with_propensity(p) }
            })
            .collect();
        let trace = Trace::from_records(schema(), space(), records).unwrap();
        let policy = target_policy(1, 0.3);
        let newp = || -> Box<dyn Policy + Send + Sync> { Box::new(target_policy(1, 0.3)) };

        // Every weight-based family: the online push must fail at exactly
        // the hole, with the batch twin's exact error.
        let mut online = OnlineIps::new(space(), newp()).unwrap();
        if let Err(msg) =
            check_stream_parity(&mut online, Ips::new().estimate(&trace, &policy), &trace)
        {
            prop_assert!(false, "{}", msg);
        }
        // A failed push rejects the record without corrupting state: the
        // records before the hole are still in, nothing after got pushed.
        prop_assert_eq!(online.len(), hole);

        let mut snips = OnlineSnips::new(space(), newp()).unwrap();
        if let Err(msg) = check_stream_parity(
            &mut snips,
            SelfNormalizedIps::new().estimate(&trace, &policy),
            &trace,
        ) {
            prop_assert!(false, "{}", msg);
        }

        // DM never needs propensities: both sides succeed on the same trace.
        let mut dm = OnlineDm::new(space(), newp(), Box::new(parity_model())).unwrap();
        if let Err(msg) = check_stream_parity(
            &mut dm,
            DirectMethod::new(parity_model()).estimate(&trace, &policy),
            &trace,
        ) {
            prop_assert!(false, "{}", msg);
        }
        prop_assert_eq!(dm.len(), rows.len());

        // AdaptiveIPS and SeqDR weight every record, so the push rejects
        // the hole exactly like IPS does — same error, same survivors.
        let mut adaptive =
            OnlineAdaptiveIps::new(space(), newp(), AdaptiveWeights::Stabilized).unwrap();
        if let Err(msg) = check_stream_parity(
            &mut adaptive,
            AdaptiveIps::new(AdaptiveWeights::Stabilized).estimate(&trace, &policy),
            &trace,
        ) {
            prop_assert!(false, "{}", msg);
        }
        prop_assert_eq!(adaptive.len(), hole);

        let mut seq = OnlineSeqDr::new(space(), newp(), Box::new(parity_model()), 2).unwrap();
        if let Err(msg) = check_stream_parity(
            &mut seq,
            SeqDr::new(parity_model(), 2).estimate(&trace, &policy),
            &trace,
        ) {
            prop_assert!(false, "{}", msg);
        }
        prop_assert_eq!(seq.len(), hole);

        // MarginalizedDR's denominators come from the logging *policy*,
        // never the recorded propensity — like DM it ingests the hole.
        let mut mdr = OnlineMarginalizedDr::new(
            space(),
            newp(),
            Box::new(UniformRandomPolicy::new(space())),
            Box::new(parity_model()),
            grouped_embedding(),
        )
        .unwrap();
        if let Err(msg) = check_stream_parity(
            &mut mdr,
            MarginalizedDr::new(
                parity_model(),
                grouped_embedding(),
                Box::new(UniformRandomPolicy::new(space())),
            )
            .estimate(&trace, &policy),
            &trace,
        ) {
            prop_assert!(false, "{}", msg);
        }
        prop_assert_eq!(mdr.len(), rows.len());

        // And if the hole is not at the front, the surviving prefix still
        // estimates — bit-identical to the batch over just that prefix.
        if hole > 0 {
            let prefix = build_trace(&rows[..hole]);
            let batch_prefix = Ips::new().estimate(&prefix, &policy).unwrap();
            let o = online.estimate().unwrap();
            prop_assert_eq!(o.value.to_bits(), batch_prefix.value.to_bits());
            prop_assert_eq!(o.n, hole);
        }
    }

    // ---- Edge: zero overlap (every importance weight is zero) ----------

    fn zero_overlap_parity(rows in vecs((0u32..3, -100.0..100.0f64, 0usize..2, -50.0..50.0f64, 0.05..1.0f64), 1..40)) {
        // Logged decisions only ever hit {a, b}; the target policy always
        // plays c. Every weight is zero: IPS degenerates to exactly 0.0,
        // SNIPS has no weight mass and must error — identically online
        // and offline.
        let trace = build_trace(&rows);
        let policy = LookupPolicy::constant(space(), 2);
        let newp = || -> Box<dyn Policy + Send + Sync> { Box::new(LookupPolicy::constant(space(), 2)) };

        let mut ips = OnlineIps::new(space(), newp()).unwrap();
        if let Err(msg) =
            check_stream_parity(&mut ips, Ips::new().estimate(&trace, &policy), &trace)
        {
            prop_assert!(false, "{}", msg);
        }
        let est = ips.estimate().unwrap();
        // Exactly zero (the sign of the zero tracks the contribution
        // signs and is already pinned by the bit-parity check above).
        prop_assert_eq!(est.value, 0.0);
        prop_assert_eq!(est.diagnostics.zero_weight_fraction.to_bits(), 1.0f64.to_bits());

        let mut snips = OnlineSnips::new(space(), newp()).unwrap();
        if let Err(msg) = check_stream_parity(
            &mut snips,
            SelfNormalizedIps::new().estimate(&trace, &policy),
            &trace,
        ) {
            prop_assert!(false, "{}", msg);
        }
        for rec in trace.records() {
            snips.push(rec).unwrap();
        }
        let err = match snips.estimate() {
            Err(e) => format!("{e:?}"),
            Ok(e) => panic!("SNIPS must reject zero weight mass, got {e:?}"),
        };
        prop_assert!(err.contains("NoUsableRecords"), "unexpected error {}", err);

        // AdaptiveIPS: the stabilizers are weight-independent, so the
        // weighted average of all-zero contributions is exactly zero —
        // and bit-identical across the engines.
        let mut adaptive =
            OnlineAdaptiveIps::new(space(), newp(), AdaptiveWeights::Stabilized).unwrap();
        if let Err(msg) = check_stream_parity(
            &mut adaptive,
            AdaptiveIps::new(AdaptiveWeights::Stabilized).estimate(&trace, &policy),
            &trace,
        ) {
            prop_assert!(false, "{}", msg);
        }
        let est = adaptive.estimate().unwrap();
        prop_assert_eq!(est.value, 0.0);
        prop_assert_eq!(est.diagnostics.zero_weight_fraction.to_bits(), 1.0f64.to_bits());

        // SeqDR: every per-step correction is killed by the zero weight,
        // so each trajectory collapses to its first step's direct-method
        // term — still bit-identical online vs offline.
        let mut seq = OnlineSeqDr::new(space(), newp(), Box::new(parity_model()), 1).unwrap();
        if let Err(msg) = check_stream_parity(
            &mut seq,
            SeqDr::new(parity_model(), 1).estimate(&trace, &policy),
            &trace,
        ) {
            prop_assert!(false, "{}", msg);
        }

        // MarginalizedDR with the identity embedding: the target group
        // mass sits entirely on `c`, which is never logged, so marginal
        // weights are all zero and the estimate is the pure DM term.
        let mut mdr = OnlineMarginalizedDr::new(
            space(),
            newp(),
            Box::new(UniformRandomPolicy::new(space())),
            Box::new(parity_model()),
            ActionEmbedding::identity(3),
        )
        .unwrap();
        if let Err(msg) = check_stream_parity(
            &mut mdr,
            MarginalizedDr::new(
                parity_model(),
                ActionEmbedding::identity(3),
                Box::new(UniformRandomPolicy::new(space())),
            )
            .estimate(&trace, &policy),
            &trace,
        ) {
            prop_assert!(false, "{}", msg);
        }
        let est = mdr.estimate().unwrap();
        prop_assert_eq!(est.diagnostics.zero_weight_fraction.to_bits(), 1.0f64.to_bits());
    }

    // ---- Sliding window ≡ batch over the window's records --------------

    fn sliding_window_equals_batch_over_tail(rows in vecs(record_gen(), 1..60), cap in 1usize..50) {
        let policy = target_policy(0, 0.5);
        let mut windowed = SlidingWindow::new(
            OnlineIps::new(space(), Box::new(target_policy(0, 0.5))).unwrap(),
            cap,
        );
        for rec in build_trace(&rows).records() {
            windowed.push(rec);
        }
        let tail_start = rows.len().saturating_sub(cap);
        let tail = build_trace(&rows[tail_start..]);
        let batch = Ips::new().estimate(&tail, &policy).unwrap();
        let online = windowed.estimate().unwrap();
        prop_assert_eq!(online.value.to_bits(), batch.value.to_bits());
        prop_assert_eq!(online.n, rows.len() - tail_start);
        prop_assert_eq!(windowed.evicted(), tail_start as u64);
    }
}
