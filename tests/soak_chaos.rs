//! Soak test: repeated chaos rounds against ddn-serve must leak nothing.
//!
//! This binary holds a single `#[test]` on purpose: with no sibling
//! tests running, the process thread count is a meaningful invariant,
//! so the Linux-gated `/proc/self/task` check can assert that every
//! server round — faulted, degraded, or clean — joins all of its
//! threads on shutdown.

use ddn_estimators::Estimator;
use ddn_policy::LookupPolicy;
use ddn_serve::{
    serve, ClientConfig, FaultState, FaultyTransport, ServeClient, ServeConfig, TcpTransport,
    Transport,
};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_testkit::{FaultPlan, FaultPlanConfig};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};
use std::time::Duration;

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn records(n: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            let g = rng.index(2) as u32;
            let c = Context::build(&schema()).set_cat("g", g).finish();
            let d = rng.index(2);
            let p = if d == 0 { 0.75 } else { 0.25 };
            let r = 2.0 + g as f64 + 3.0 * d as f64;
            TraceRecord::new(c, Decision::from_index(d), r).with_propensity(p)
        })
        .collect()
}

fn faulty_client(addr: &str, plan: &FaultPlan) -> (ServeClient, FaultState) {
    let state = FaultState::new(plan.cursor());
    let connector_state = state.clone();
    let addr = addr.to_string();
    let client = ServeClient::from_connector(
        Box::new(move || {
            let inner = Box::new(TcpTransport::connect(&addr)?) as Box<dyn Transport>;
            Ok(Box::new(FaultyTransport::new(inner, connector_state.clone()))
                as Box<dyn Transport>)
        }),
        ClientConfig {
            read_timeout: Duration::from_secs(5),
            max_retries: plan.len() as u32 + 2,
            backoff_base: Duration::from_millis(1),
        },
    )
    .expect("initial connect");
    (client, state)
}

fn offline_ips(records: &[TraceRecord]) -> f64 {
    let trace = Trace::from_records(schema(), space(), records.to_vec()).unwrap();
    let policy = LookupPolicy::constant(space(), 1);
    ddn_estimators::Ips::new()
        .estimate(&trace, &policy)
        .unwrap()
        .value
}

fn online_ips(est: &Json) -> f64 {
    est.get("estimates")
        .and_then(|e| e.get("ips"))
        .and_then(|e| e.get("value"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("no ips value in {est:?}"))
}

/// Number of OS threads in this process (Linux); `None` elsewhere.
fn thread_count() -> Option<usize> {
    #[cfg(target_os = "linux")]
    {
        std::fs::read_dir("/proc/self/task")
            .ok()
            .map(|d| d.count())
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Number of open file descriptors in this process (Linux); `None`
/// elsewhere. The durable rounds hold WAL and snapshot handles — a
/// shutdown that forgot to drop them shows up here.
fn fd_count() -> Option<usize> {
    #[cfg(target_os = "linux")]
    {
        std::fs::read_dir("/proc/self/fd").ok().map(|d| d.count())
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// One faulted round: a server, a faulted client, `n` records streamed
/// in batches, parity against the offline estimator, clean shutdown.
fn chaos_round(seed: u64, n: usize) -> (u64, u64, u64) {
    let plan = FaultPlan::generate(
        seed,
        &FaultPlanConfig {
            faults: 8,
            write_horizon: 64 << 10,
            read_horizon: 2 << 10,
            max_delay_micros: 100,
            max_partial_bytes: 24,
        },
    );
    let handle = serve(&ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr().to_string();
    let (mut client, _state) = faulty_client(&addr, &plan);

    client
        .init("soak", &schema(), &space(), &["ips"], "b", 0.0, None)
        .expect("init outlasts the plan");
    let recs = records(n, seed.wrapping_mul(0x9e37_79b9));
    for chunk in recs.chunks(64) {
        let resp = client.ingest("soak", chunk).expect("ingest outlasts the plan");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    }

    assert_eq!(
        handle.stats().ingest_records(),
        recs.len() as u64,
        "seed {seed}: exactly-once tally drifted"
    );
    let est = client.estimate("soak").expect("estimate outlasts the plan");
    assert_eq!(est.get("n").and_then(Json::as_i64), Some(recs.len() as i64));
    assert_eq!(
        online_ips(&est).to_bits(),
        offline_ips(&recs).to_bits(),
        "seed {seed}: streamed estimate diverged from offline"
    );

    let retries = client.stats().retry_attempts();
    let replays = handle.stats().dedup_replays();
    let injected = client.stats().reconnects();
    drop(client);
    handle.shutdown();
    (retries, replays, injected)
}

/// One degraded round: a failpoint panics a shard worker; the session is
/// quarantined, the rest of the server keeps working, shutdown is clean.
fn degraded_round(seed: u64) {
    let handle = serve(&ServeConfig {
        shards: 1,
        failpoint: Some("poison".to_string()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).unwrap();
    client
        .init("ok", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    client
        .init("poison", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    client
        .ingest("poison", &records(5, seed))
        .expect_err("failpoint degrades the session");
    let recs = records(100, seed);
    client.ingest("ok", &recs).unwrap();
    let est = client.estimate("ok").unwrap();
    assert_eq!(
        online_ips(&est).to_bits(),
        offline_ips(&recs).to_bits(),
        "a shard-mate's panic must not touch this session's estimate"
    );
    assert_eq!(handle.stats().fault_worker_restarts(), 1);
    drop(client);
    handle.shutdown();
}

/// One durable round: a WAL-backed server is killed and restarted on the
/// same data directory mid-stream; every handle it held (WAL file,
/// snapshot temp files, sockets) must be gone when the round ends.
fn durable_round(seed: u64) {
    let dir = std::env::temp_dir().join(format!(
        "ddn-soak-durable-{}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        shards: 2,
        data_dir: Some(dir.clone()),
        snapshot_every: 8,
        ..ServeConfig::default()
    };
    let handle = serve(&config).expect("bind durable");
    // The client survives the restart (its per-session sequence numbers
    // must continue where the recovered server expects them), so its
    // connector re-reads the address of whichever incarnation is live.
    let addr = std::sync::Arc::new(std::sync::Mutex::new(
        handle.local_addr().to_string(),
    ));
    let connector_addr = std::sync::Arc::clone(&addr);
    let mut client = ServeClient::from_connector(
        Box::new(move || {
            let a = connector_addr.lock().unwrap().clone();
            Ok(Box::new(TcpTransport::connect(&a)?) as Box<dyn Transport>)
        }),
        ClientConfig {
            read_timeout: Duration::from_secs(5),
            max_retries: 6,
            backoff_base: Duration::from_millis(1),
        },
    )
    .unwrap();
    client
        .init("durable", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    let recs = records(200, seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
    let (first, rest) = recs.split_at(100);
    for chunk in first.chunks(25) {
        client.ingest("durable", chunk).unwrap();
    }
    handle.shutdown();

    let handle = serve(&config).expect("rebind durable");
    *addr.lock().unwrap() = handle.local_addr().to_string();
    for chunk in rest.chunks(25) {
        client.ingest("durable", chunk).unwrap();
    }
    let est = client.estimate("durable").unwrap();
    assert_eq!(est.get("n").and_then(Json::as_i64), Some(recs.len() as i64));
    assert_eq!(
        online_ips(&est).to_bits(),
        offline_ips(&recs).to_bits(),
        "seed {seed}: estimate diverged across the durable restart"
    );
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn soak_many_faulted_rounds_leak_no_threads_and_lose_no_records() {
    // Warm up once so lazily-spawned runtime threads (if any) exist
    // before the baseline is taken.
    chaos_round(0, 256);
    durable_round(0);
    let baseline = thread_count();
    let fd_baseline = fd_count();

    let mut total_retries = 0u64;
    let mut total_replays = 0u64;
    for seed in 1..=10u64 {
        let (retries, replays, _) = chaos_round(seed, 2_000);
        total_retries += retries;
        total_replays += replays;
        degraded_round(seed);
        durable_round(seed);
    }

    // The fault plans are drawn over the full byte stream of each round,
    // so across 10 rounds at least some must have fired mid-flight.
    assert!(
        total_retries >= 1,
        "soak exercised no retries — plans never fired"
    );
    assert!(
        total_replays <= total_retries,
        "{total_replays} replays but only {total_retries} retries"
    );

    if let (Some(before), Some(after)) = (baseline, thread_count()) {
        assert_eq!(
            before, after,
            "thread leak: {before} OS threads before the soak, {after} after"
        );
    }
    if let (Some(before), Some(after)) = (fd_baseline, fd_count()) {
        assert_eq!(
            before, after,
            "fd leak: {before} open descriptors before the soak, {after} after \
             (unclosed WAL handles or sockets)"
        );
    }
}
