//! Golden test pinning the telemetry JSON *schema* — the key set and
//! nesting, not the values. `--telemetry` files are consumed by outside
//! tooling (`reproduce.sh ci` runs `ddn telemetry-check`, dashboards parse
//! `BENCH_*.json`), so renaming a health metric or restructuring an
//! aggregate is a breaking change that must be made deliberately, here.
//!
//! The document under test comes from the health suite, which exercises
//! every estimator family and therefore every health key the workspace
//! can emit.

use ddn::scenarios::health::{health_suite_with, HealthConfig};
use ddn::stats::Json;

/// Pinned schema: every health source the suite emits, with its exact
/// metric key set (sorted).
const GOLDEN_HEALTH: &[(&str, &[&str])] = &[
    (
        "AdaptiveDR",
        &[
            "ess",
            "hsum",
            "max_weight",
            "mean_abs_residual",
            "mean_weight",
            "n",
            "zero_weight_fraction",
        ],
    ),
    (
        "AdaptiveIPS",
        &["ess", "hsum", "max_weight", "mean_weight", "n", "zero_weight_fraction"],
    ),
    (
        "CFA",
        &[
            "coverage",
            "ess",
            "match_count",
            "max_weight",
            "mean_weight",
            "n",
            "zero_weight_fraction",
        ],
    ),
    (
        "ClippedIPS",
        &[
            "clip_rate",
            "ess",
            "max_weight",
            "mean_weight",
            "n",
            "zero_weight_fraction",
        ],
    ),
    ("CouplingDetector", &["changepoints", "coupled", "segments"]),
    (
        "CrossFitDR",
        &[
            "ess",
            "folds",
            "max_weight",
            "mean_weight",
            "n",
            "zero_weight_fraction",
        ],
    ),
    (
        "DM",
        &["ess", "max_weight", "mean_weight", "n", "zero_weight_fraction"],
    ),
    (
        "DR",
        &[
            "ess",
            "max_weight",
            "mean_abs_residual",
            "mean_weight",
            "n",
            "zero_weight_fraction",
        ],
    ),
    (
        "IPS",
        &["ess", "max_weight", "mean_weight", "n", "zero_weight_fraction"],
    ),
    (
        "MarginalizedDR",
        &[
            "embedding_groups",
            "ess",
            "max_weight",
            "mean_abs_residual",
            "mean_weight",
            "n",
            "zero_weight_fraction",
        ],
    ),
    (
        "Replay",
        &[
            "acceptance_rate",
            "accepted",
            "ess",
            "max_weight",
            "mean_weight",
            "n",
            "rejected",
            "zero_weight_fraction",
        ],
    ),
    (
        "SNIPS",
        &["ess", "max_weight", "mean_weight", "n", "zero_weight_fraction"],
    ),
    (
        "SeqDR",
        &[
            "ess",
            "horizon",
            "max_weight",
            "mean_abs_residual",
            "mean_weight",
            "n",
            "trajectories",
            "zero_weight_fraction",
        ],
    ),
    (
        "StateAwareDR",
        &[
            "coverage",
            "ess",
            "match_count",
            "max_weight",
            "mean_weight",
            "n",
            "zero_weight_fraction",
        ],
    ),
    (
        "SwitchDR",
        &[
            "clip_rate",
            "ess",
            "max_weight",
            "mean_abs_residual",
            "mean_weight",
            "n",
            "zero_weight_fraction",
        ],
    ),
];

/// Pinned aggregate shapes.
const METRIC_AGG_KEYS: &[&str] = &["runs", "mean", "min", "max"];
const TIMING_AGG_KEYS: &[&str] = &["count", "total_ns", "mean_ns", "min_ns", "max_ns"];

/// Pinned span paths the instrumented runner produces for this suite.
/// `run/estimate/batch_build` is the shared-score [`EvalBatch`]
/// construction (two per run: target-policy and logger-policy batches);
/// it disappears when the suite runs with `use_batch: false`.
const GOLDEN_TIMINGS: &[&str] = &[
    "experiment",
    "run",
    "run/estimate",
    "run/estimate/batch_build",
    "run/log",
];

fn keys(obj: &Json) -> Vec<String> {
    obj.as_object()
        .expect("expected a JSON object")
        .iter()
        .map(|(k, _)| k.clone())
        .collect()
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

#[test]
fn telemetry_json_schema_is_pinned() {
    let (_, snap) = health_suite_with(&HealthConfig {
        runs: 2,
        ..Default::default()
    });
    let doc = snap.to_json();
    // Round-trip through the wire form, since that is what consumers see.
    let doc = Json::parse(&doc.to_string()).expect("telemetry JSON parses");

    assert_eq!(
        keys(&doc),
        ["version", "runs", "threads", "health", "counters", "timings"],
        "top-level key set/order changed"
    );
    assert_eq!(doc.get("version").unwrap().as_i64(), Some(1));

    let health = doc.get("health").unwrap();
    assert_eq!(
        sorted(keys(health)),
        GOLDEN_HEALTH.iter().map(|(s, _)| s.to_string()).collect::<Vec<_>>(),
        "health source set changed"
    );
    for (source, metrics) in GOLDEN_HEALTH {
        let got = health.get(source).unwrap();
        assert_eq!(
            sorted(keys(got)),
            metrics.iter().map(|m| m.to_string()).collect::<Vec<_>>(),
            "metric key set changed for {source}"
        );
        for (metric, agg) in got.as_object().unwrap() {
            assert_eq!(
                keys(agg),
                METRIC_AGG_KEYS,
                "aggregate shape changed for {source}/{metric}"
            );
        }
    }

    let timings = doc.get("timings").unwrap();
    assert_eq!(
        sorted(keys(timings)),
        GOLDEN_TIMINGS,
        "span path set changed"
    );
    for (path, agg) in timings.as_object().unwrap() {
        assert_eq!(keys(agg), TIMING_AGG_KEYS, "timing shape changed for {path}");
    }
}

/// Pinned counter key set the serve `health` verb must expose (sorted).
/// Dashboards watch these names; renaming one is a breaking change.
const GOLDEN_SERVE_COUNTERS: &[&str] = &[
    "serve.backpressure.stalls",
    "serve.conn.active",
    "serve.dedup.replays",
    "serve.fault.conn_errors",
    "serve.fault.worker_restarts",
    "serve.ingest.records",
    "serve.queue.depth",
    "serve.recover.frames_replayed",
    "serve.recover.sessions",
    "serve.recover.truncated_frames",
    "serve.snapshot.writes",
    "serve.wal.bytes",
    "serve.wal.frames",
];

/// Pinned counter key set of the client-side retry telemetry (sorted).
const GOLDEN_RETRY_COUNTERS: &[&str] = &[
    "serve.retry.attempts",
    "serve.retry.giveups",
    "serve.retry.reconnects",
    "serve.retry.timeouts",
];

/// Pinned metric key set of a streaming estimator's health source
/// (sorted) once records have flowed.
const GOLDEN_ONLINE_HEALTH: &[&str] = &[
    "contribution_mean",
    "contribution_variance",
    "ess",
    "max_weight",
    "mean_weight",
    "n",
    "standard_error",
    "zero_weight_fraction",
];

/// Pinned health source set of the figure7 `menu` panel (sorted). The
/// panel runs the incumbents next to the three menu extensions, so its
/// telemetry is the external contract for the "challenger wins" claim:
/// `TrajIPS` is an inline product-weight fold, not an estimator, hence
/// no source of its own.
const GOLDEN_MENU_SOURCES: &[&str] = &[
    "AdaptiveDR",
    "AdaptiveIPS",
    "DR",
    "IPS",
    "MarginalizedDR",
    "SNIPS",
    "SeqDR",
];

/// Pinned span paths of the instrumented menu panel.
const GOLDEN_MENU_TIMINGS: &[&str] = &[
    "experiment",
    "run",
    "run/estimate",
    "run/log",
];

#[test]
fn menu_panel_telemetry_schema_is_pinned() {
    use ddn::scenarios::ablations::{ablation_menu_instrumented, MenuConfig};

    let (scenarios, snap) = ablation_menu_instrumented(&MenuConfig {
        runs: 2,
        scales: vec![0.5],
        ..MenuConfig::default()
    });
    assert_eq!(scenarios.len(), 3, "menu panel scenario count changed");
    let doc = Json::parse(&snap.to_json().to_string()).unwrap();

    assert_eq!(
        sorted(keys(doc.get("health").unwrap())),
        GOLDEN_MENU_SOURCES,
        "menu panel health source set changed"
    );
    assert_eq!(
        sorted(keys(doc.get("timings").unwrap())),
        GOLDEN_MENU_TIMINGS,
        "menu panel span path set changed"
    );
}

#[test]
fn serve_health_verb_schema_is_pinned() {
    use ddn::prelude::*;
    use ddn::serve::{serve, ServeClient, ServeConfig};

    let handle = serve(&ServeConfig::default()).expect("bind ephemeral port");
    let addr = handle.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).unwrap();

    let schema = ContextSchema::builder().categorical("g", 2).build();
    let space = DecisionSpace::of(&["a", "b"]);
    client
        .init("golden", &schema, &space, &["ips"], "b", 0.0, None)
        .unwrap();
    let old = UniformRandomPolicy::new(space.clone());
    let mut rng = Xoshiro256::seed_from(11);
    let records: Vec<TraceRecord> = (0..40)
        .map(|_| {
            let c = Context::build(&schema).set_cat("g", rng.index(2) as u32).finish();
            let (d, p) = old.sample_with_prob(&c, &mut rng);
            TraceRecord::new(c, d, d.index() as f64).with_propensity(p)
        })
        .collect();
    client.ingest("golden", &records).unwrap();

    let resp = client.health().unwrap();
    // Round-trip through the wire form, as consumers see it.
    let resp = Json::parse(&resp.to_string()).unwrap();
    let telemetry = resp.get("telemetry").expect("health carries telemetry");
    assert_eq!(
        keys(telemetry),
        ["version", "runs", "threads", "health", "counters", "timings"],
        "serve telemetry envelope changed"
    );

    let counters = telemetry.get("counters").unwrap();
    assert_eq!(
        sorted(keys(counters)),
        GOLDEN_SERVE_COUNTERS,
        "serve counter key set changed"
    );
    assert_eq!(
        counters.get("serve.ingest.records").unwrap().as_u64(),
        Some(40)
    );

    let health = telemetry.get("health").unwrap();
    let source = health
        .get("serve/golden/ips")
        .expect("per-session estimator health source");
    assert_eq!(
        sorted(keys(source)),
        GOLDEN_ONLINE_HEALTH,
        "online estimator health key set changed"
    );
    for (metric, agg) in source.as_object().unwrap() {
        assert_eq!(
            keys(agg),
            METRIC_AGG_KEYS,
            "aggregate shape changed for serve/golden/ips/{metric}"
        );
    }
    handle.shutdown();
}

/// Pinned counter key set the serve `stats` verb must expose (sorted)
/// for a two-shard server. This is the long-lived metrics registry the
/// `ddn top` CLI and monitoring pipelines read; every name is
/// registered at `serve()` time, so the set is workload-independent.
const GOLDEN_STATS_COUNTERS: &[&str] = &[
    "serve.backpressure.stalls",
    "serve.dedup.replays",
    "serve.fault.conn_errors",
    "serve.fault.worker_restarts",
    "serve.ingest.records",
    "serve.recover.frames_replayed",
    "serve.recover.sessions",
    "serve.recover.truncated_frames",
    "serve.req.estimate",
    "serve.req.health",
    "serve.req.ingest",
    "serve.req.init",
    "serve.req.shutdown",
    "serve.req.stats",
    "serve.snapshot.writes",
    "serve.wal.bytes",
    "serve.wal.frames",
];

/// Pinned gauge key set (sorted, two shards).
const GOLDEN_STATS_GAUGES: &[&str] = &[
    "serve.conn.active",
    "serve.queue.depth",
    "serve.sessions.live.s0",
    "serve.sessions.live.s1",
    "serve.wal.lag_frames.s0",
    "serve.wal.lag_frames.s1",
];

/// Pinned histogram key set (sorted, two shards): shard verbs get
/// queue-wait and handler-time per shard; connection-thread verbs get
/// handler time only, with no shard suffix.
const GOLDEN_STATS_HISTOGRAMS: &[&str] = &[
    "serve.req.estimate.handle_ns.s0",
    "serve.req.estimate.handle_ns.s1",
    "serve.req.estimate.queue_ns.s0",
    "serve.req.estimate.queue_ns.s1",
    "serve.req.health.handle_ns",
    "serve.req.ingest.handle_ns.s0",
    "serve.req.ingest.handle_ns.s1",
    "serve.req.ingest.queue_ns.s0",
    "serve.req.ingest.queue_ns.s1",
    "serve.req.init.handle_ns.s0",
    "serve.req.init.handle_ns.s1",
    "serve.req.init.queue_ns.s0",
    "serve.req.init.queue_ns.s1",
    "serve.req.shutdown.handle_ns",
    "serve.req.stats.handle_ns",
];

#[test]
fn serve_stats_verb_schema_is_pinned() {
    use ddn::prelude::*;
    use ddn::serve::{serve, ServeClient, ServeConfig};

    let handle = serve(&ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).unwrap();

    // Drive one request through a shard so at least one histogram has a
    // populated bucket whose entry shape we can pin.
    let schema = ContextSchema::builder().categorical("g", 2).build();
    let space = DecisionSpace::of(&["a", "b"]);
    client
        .init("golden", &schema, &space, &["ips"], "b", 0.0, None)
        .unwrap();

    let resp = client.server_stats(false).unwrap();
    // Round-trip through the wire form, as consumers see it.
    let resp = Json::parse(&resp.to_string()).unwrap();
    let snap = resp.get("stats").expect("stats verb returns a snapshot");
    assert_eq!(
        keys(snap),
        ["counters", "gauges", "histograms"],
        "stats snapshot envelope changed"
    );
    assert_eq!(
        keys(snap.get("counters").unwrap()),
        GOLDEN_STATS_COUNTERS,
        "stats counter key set changed"
    );
    assert_eq!(
        keys(snap.get("gauges").unwrap()),
        GOLDEN_STATS_GAUGES,
        "stats gauge key set changed"
    );
    assert_eq!(
        keys(snap.get("histograms").unwrap()),
        GOLDEN_STATS_HISTOGRAMS,
        "stats histogram key set changed"
    );

    // Every histogram entry has the pinned shape, and populated buckets
    // carry exactly {le, count}.
    for (name, hist) in snap.get("histograms").unwrap().as_object().unwrap() {
        assert_eq!(keys(hist), ["count", "sum", "buckets"], "shape of {name}");
        for bucket in hist.get("buckets").unwrap().as_array().unwrap() {
            assert_eq!(keys(bucket), ["le", "count"], "bucket shape of {name}");
        }
    }
    let init_total: u64 = (0..2)
        .filter_map(|s| {
            snap.get("histograms")
                .unwrap()
                .get(&format!("serve.req.init.handle_ns.s{s}"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64)
        })
        .sum();
    assert_eq!(init_total, 1, "the init request landed in one shard");
    handle.shutdown();
}

#[test]
fn client_retry_counter_schema_is_pinned() {
    use ddn::prelude::*;
    use ddn::serve::{serve, ServeClient, ServeConfig};
    use ddn::telemetry::TelemetrySnapshot;

    let handle = serve(&ServeConfig::default()).expect("bind ephemeral port");
    let addr = handle.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).unwrap();
    let schema = ContextSchema::builder().categorical("g", 2).build();
    let space = DecisionSpace::of(&["a", "b"]);
    client
        .init("retry", &schema, &space, &["ips"], "b", 0.0, None)
        .unwrap();

    let collector = client.stats().collector();
    let snap = TelemetrySnapshot::from_runs(std::slice::from_ref(&collector));
    let doc = Json::parse(&snap.to_json().to_string()).unwrap();
    assert_eq!(
        sorted(keys(doc.get("counters").unwrap())),
        GOLDEN_RETRY_COUNTERS,
        "client retry counter key set changed"
    );
    handle.shutdown();
}

#[test]
fn deterministic_form_differs_only_by_threads_and_zeroed_times() {
    let (_, snap) = health_suite_with(&HealthConfig {
        runs: 2,
        ..Default::default()
    });
    let det = Json::parse(&snap.to_json_deterministic().to_string()).unwrap();
    assert_eq!(
        keys(&det),
        ["version", "runs", "health", "counters", "timings"],
        "deterministic form must drop exactly the threads field"
    );
    for (path, agg) in det.get("timings").unwrap().as_object().unwrap() {
        assert_eq!(keys(agg), TIMING_AGG_KEYS);
        for ns_key in ["total_ns", "mean_ns", "min_ns", "max_ns"] {
            assert_eq!(
                agg.get(ns_key).unwrap().as_f64(),
                Some(0.0),
                "{path}/{ns_key} must be zeroed in the deterministic form"
            );
        }
        assert!(
            agg.get("count").unwrap().as_i64().unwrap() > 0,
            "{path} span count must survive"
        );
    }
}
