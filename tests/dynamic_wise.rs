//! The WISE pipeline over the *dynamic* two-tier world: instead of the
//! paper's static response-time table, the (ISP, FE, BE) latencies emerge
//! from real queueing in `ddn-netsim::topology`. The Figure 7a shape —
//! a structure-learned CBN Direct Method beaten by DR — must survive the
//! move from a synthetic table to an actual simulator, and the coupling
//! detector must remain silent when the system is stable.

use ddn::estimators::{CouplingDetector, CrossFitDr, DirectMethod, DoublyRobust, Estimator};
use ddn::models::cbn::{CausalBayesNet, CbnConfig};
use ddn::models::TabularMeanModel;
use ddn::netsim::{wise_like_tiered, RateProfile, TieredWorld};
use ddn::policy::{Policy, UniformRandomPolicy};
use ddn::trace::{Context, Decision, DecisionSpace};

/// A per-ISP categorical policy over the 4 FE×BE decisions (mirrors the
/// skewed WISE logging pattern, but over the dynamic world).
struct SkewedRouter {
    space: DecisionSpace,
    per_isp: Vec<Vec<f64>>,
}

impl Policy for SkewedRouter {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }
    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        self.per_isp[ctx.cat(0) as usize][d.index()]
    }
}

fn skewed_old_policy(world: &TieredWorld) -> SkewedRouter {
    // 500/5-style mass on the diagonal cells, per ISP.
    let probs = vec![500.0 / 1010.0, 5.0 / 1010.0, 5.0 / 1010.0, 500.0 / 1010.0];
    SkewedRouter {
        space: world.space().clone(),
        per_isp: vec![probs.clone(), probs],
    }
}

fn new_policy(world: &TieredWorld) -> SkewedRouter {
    // Move half of ISP-0's mass to fe1/be2 (index 1).
    let old = skewed_old_policy(world);
    let mut isp0: Vec<f64> = old.per_isp[0].iter().map(|p| 0.5 * p).collect();
    isp0[1] += 0.5;
    SkewedRouter {
        space: world.space().clone(),
        per_isp: vec![isp0, old.per_isp[1].clone()],
    }
}

#[test]
fn dr_survives_the_move_to_a_real_simulator() {
    // Moderate load so be1 (12 req/s) hurts when the diagonal pins it.
    let world = wise_like_tiered(RateProfile::Constant(8.0), 1500.0);
    let old = skewed_old_policy(&world);
    let newp = new_policy(&world);
    let truth = world.true_value(&newp, 900, 3);

    let mut wise_err = 0.0;
    let mut dr_err = 0.0;
    let runs = 6;
    for seed in 0..runs {
        let out = world.run(&old, 100 + seed);
        let cbn = CausalBayesNet::fit(
            &out.trace,
            &CbnConfig {
                decision_axes: Some(vec![2, 2]),
                numeric_bins: 4,
                max_parents: 4,
            },
        );
        let wise = DirectMethod::new(cbn.clone())
            .estimate(&out.trace, &newp)
            .unwrap()
            .value;
        let dr = DoublyRobust::new(cbn)
            .estimate(&out.trace, &newp)
            .unwrap()
            .value;
        wise_err += (wise - truth).abs() / truth.abs();
        dr_err += (dr - truth).abs() / truth.abs();
    }
    wise_err /= runs as f64;
    dr_err /= runs as f64;
    assert!(
        dr_err <= wise_err * 1.05,
        "dynamic world: DR ({dr_err}) should not trail the CBN DM ({wise_err})"
    );
    assert!(dr_err < 0.5, "DR should be in the right ballpark: {dr_err}");
}

#[test]
fn coupling_detector_is_silent_on_a_stable_tiered_system() {
    let world = wise_like_tiered(RateProfile::Constant(6.0), 600.0);
    let uniform = UniformRandomPolicy::new(world.space().clone());
    let out = world.run(&uniform, 7);
    let report = CouplingDetector::new(200).analyze(&out.trace, &out.load_proxy);
    assert!(
        report.segments.len() <= 2,
        "stable system should not fragment into regimes: {:?}",
        report.changepoints
    );
}

#[test]
fn crossfit_dr_agrees_with_plain_dr_on_the_tiered_world() {
    let world = wise_like_tiered(RateProfile::Constant(8.0), 800.0);
    let old = skewed_old_policy(&world);
    let newp = new_policy(&world);
    let out = world.run(&old, 11);
    let plain = DoublyRobust::new(TabularMeanModel::fit_trace(&out.trace, 1.0))
        .estimate(&out.trace, &newp)
        .unwrap()
        .value;
    let crossfit = CrossFitDr::new(5, |tr: &ddn::trace::Trace| {
        TabularMeanModel::fit_trace(tr, 1.0)
    })
    .estimate(&out.trace, &newp)
    .unwrap()
    .value;
    let truth = world.true_value(&newp, 500, 3);
    for (name, v) in [("plain", plain), ("crossfit", crossfit)] {
        let rel = (v - truth).abs() / truth.abs();
        assert!(
            rel < 0.6,
            "{name} DR estimate {v} vs truth {truth} (rel {rel})"
        );
    }
}
