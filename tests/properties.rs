//! Property-based tests (ddn-testkit) for the DESIGN.md invariant list:
//! policy normalization, the DR special cases, serialization stability,
//! simulator determinism, and statistics-substrate identities — all over
//! randomized inputs.
//!
//! Every property runs 64 cases (ddn-testkit's default) drawn from a fixed
//! per-property seed, so the whole suite is reproducible bit-for-bit;
//! `DDN_TESTKIT_CASES` / `DDN_TESTKIT_SEED` crank the volume or reseed.

use ddn::abr::throughput::{Bandwidth, ThroughputDiscount};
use ddn::abr::{BitrateLadder, QoeModel, Session, SessionConfig};
use ddn::estimators::state_aware::MatchOnly;
use ddn::estimators::{
    BatchEstimator, ClippedIps, CrossFitDr, DirectMethod, DoublyRobust, Estimator, EvalBatch,
    Ips, MatchingEstimator, OverlapReport, ReplayEvaluator, SelfNormalizedIps, StateAwareDr,
    SwitchDr,
};
use ddn::models::{ConstantModel, FnModel, TabularMeanModel};
use ddn::netsim::{small_world, RateProfile};
use ddn::policy::{
    EpsilonSmoothedPolicy, GreedyPolicy, LookupPolicy, MixturePolicy, Policy, SoftmaxPolicy,
    StationaryAsHistory, UniformRandomPolicy,
};
use ddn::relay::{emodel_mos, PathMetrics};
use ddn::stats::changepoint::{pelt, segments, CostModel, Penalty};
use ddn::stats::summary::{quantile, Summary, Welford};
use ddn::stats::ttest::{paired_t_test, t_two_sided_p, welch_t_test};
use ddn::stats::{Categorical, Distribution, Rng, Xoshiro256};
use ddn::trace::{
    Context, ContextSchema, Decision, DecisionSpace, EmpiricalPropensity, StateTag, Trace,
    TraceError, TraceRecord,
};
use ddn_testkit::{prop, prop_assert, prop_assert_eq, prop_assume, strings_from, vecs, Gen};

fn schema() -> ContextSchema {
    ContextSchema::builder()
        .categorical("g", 3)
        .numeric("x")
        .build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b", "c"])
}

fn ctx(g: u32, x: f64) -> Context {
    Context::build(&schema())
        .set_cat("g", g)
        .set_numeric("x", x)
        .finish()
}

/// Generator: a random logged record as (g, x, decision, reward, propensity).
fn record_gen() -> impl Gen<Value = (u32, f64, usize, f64, f64)> {
    (
        0u32..3,
        -100.0..100.0f64,
        0usize..3,
        -50.0..50.0f64,
        0.05..1.0f64,
    )
}

/// The printable-ASCII-plus-newline alphabet the garbage-input properties
/// draw from (the old proptest regex class `[ -~\n]`).
fn printable() -> String {
    let mut a: String = (' '..='~').collect();
    a.push('\n');
    a
}

fn build_trace(rows: &[(u32, f64, usize, f64, f64)]) -> Trace {
    let records = rows
        .iter()
        .map(|&(g, x, d, r, p)| {
            TraceRecord::new(ctx(g, x), Decision::from_index(d), r).with_propensity(p)
        })
        .collect();
    Trace::from_records(schema(), space(), records).expect("valid random trace")
}

/// Shared reward model for the batch-parity properties: depends on both
/// context fields and the decision, so cached scores genuinely vary.
fn parity_score(c: &Context, d: Decision) -> f64 {
    c.cat(0) as f64 * 1.3 + 0.7 * d.index() as f64 - 0.01 * c.num(1)
}

fn parity_model() -> FnModel<fn(&Context, Decision) -> f64> {
    FnModel::new(parity_score as fn(&Context, Decision) -> f64)
}

/// Checks that `estimate` and `estimate_batch` agree bit-for-bit — same
/// value bits, same per-record bits, or the same error.
fn check_batch_parity(
    est: &dyn BatchEstimator,
    trace: &Trace,
    policy: &dyn Policy,
    batch: &EvalBatch,
) -> Result<(), String> {
    let plain = est.estimate(trace, policy);
    let batched = est.estimate_batch(trace, batch);
    match (plain, batched) {
        (Ok(a), Ok(b)) => {
            if a.value.to_bits() != b.value.to_bits() {
                return Err(format!(
                    "{}: value {} (batched {}) differ",
                    est.name(),
                    a.value,
                    b.value
                ));
            }
            if a.per_record.len() != b.per_record.len() {
                return Err(format!("{}: per_record lengths differ", est.name()));
            }
            for (i, (x, y)) in a.per_record.iter().zip(&b.per_record).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Err(format!(
                        "{}: per_record[{i}] {x} (batched {y}) differ",
                        est.name()
                    ));
                }
            }
            Ok(())
        }
        (Err(a), Err(b)) => {
            let (a, b) = (format!("{a:?}"), format!("{b:?}"));
            if a == b {
                Ok(())
            } else {
                Err(format!("{}: errors differ: {a} vs {b}", est.name()))
            }
        }
        (Ok(_), Err(e)) => Err(format!("{}: plain Ok, batched Err {e:?}", est.name())),
        (Err(e), Ok(_)) => Err(format!("{}: plain Err {e:?}, batched Ok", est.name())),
    }
}

/// Runs the whole stationary estimator menu through [`check_batch_parity`]
/// against one shared batch.
fn menu_batch_parity(trace: &Trace, policy: &dyn Policy) -> Result<(), String> {
    let model = parity_model();
    let batch = EvalBatch::with_model(trace, policy, &model)
        .map_err(|e| format!("batch build failed: {e:?}"))?;
    let fit = |tr: &Trace| TabularMeanModel::fit_trace(tr, 1.0);
    let menu: Vec<Box<dyn BatchEstimator>> = vec![
        Box::new(Ips::new()),
        Box::new(SelfNormalizedIps::new()),
        Box::new(ClippedIps::new(2.0)),
        Box::new(DirectMethod::new(&model)),
        Box::new(DoublyRobust::new(&model)),
        Box::new(SwitchDr::new(&model, 2.0)),
        Box::new(MatchingEstimator::new()),
        Box::new(CrossFitDr::new(3, fit)),
    ];
    for est in &menu {
        check_batch_parity(est.as_ref(), trace, policy, &batch)?;
    }
    Ok(())
}

prop! {
    // ---- Invariant 1: policies are probability distributions ----------

    fn softmax_probabilities_normalized(tau in 0.05..10.0f64, s1 in -5.0..5.0f64, s2 in -5.0..5.0f64, s3 in -5.0..5.0f64) {
        let scores = [s1, s2, s3];
        let p = SoftmaxPolicy::new(space(), tau, move |_c: &Context, d: Decision| scores[d.index()]);
        let probs = p.probabilities(&ctx(0, 0.0));
        let total: f64 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(probs.iter().all(|&q| (0.0..=1.0).contains(&q)));
    }

    fn epsilon_smoothing_normalized_and_floored(eps in 0.0..1.0f64, base in 0usize..3) {
        let p = EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), base)), eps);
        let c = ctx(1, 3.0);
        let probs = p.probabilities(&c);
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for &q in &probs {
            prop_assert!(q + 1e-12 >= p.propensity_floor());
        }
    }

    fn mixture_normalized(w1 in 0.01..10.0f64, w2 in 0.01..10.0f64) {
        let m = MixturePolicy::new(vec![
            (w1, Box::new(LookupPolicy::constant(space(), 0)) as Box<dyn Policy + Send + Sync>),
            (w2, Box::new(UniformRandomPolicy::new(space()))),
        ]);
        let probs = m.probabilities(&ctx(2, -1.0));
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    fn sampling_follows_probabilities(seed in 0u64..1_000) {
        let p = SoftmaxPolicy::new(space(), 1.0, |_c: &Context, d: Decision| d.index() as f64);
        let c = ctx(0, 0.0);
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..50 {
            let (d, q) = p.sample_with_prob(&c, &mut rng);
            prop_assert!((q - p.prob(&c, d)).abs() < 1e-12);
            prop_assert!(q > 0.0);
        }
    }

    // ---- Invariants 2-4: estimator identities --------------------------

    fn dr_with_zero_model_is_ips(rows in vecs(record_gen(), 1..40)) {
        let trace = build_trace(&rows);
        let newp = LookupPolicy::constant(space(), 1);
        let dr = DoublyRobust::new(ConstantModel::zero()).estimate(&trace, &newp).unwrap();
        let ips = Ips::new().estimate(&trace, &newp).unwrap();
        prop_assert!((dr.value - ips.value).abs() < 1e-9);
    }

    fn dr_with_perfect_model_is_dm(rows in vecs(record_gen(), 1..40)) {
        // Build a trace whose rewards follow a known function exactly,
        // then hand DR that exact function as its model.
        let records: Vec<TraceRecord> = rows
            .iter()
            .map(|&(g, x, d, _, p)| {
                let reward = g as f64 * 2.0 + d as f64 - 0.01 * x;
                TraceRecord::new(ctx(g, x), Decision::from_index(d), reward).with_propensity(p)
            })
            .collect();
        let trace = Trace::from_records(schema(), space(), records).unwrap();
        let model = FnModel::new(|c: &Context, d: Decision| {
            c.cat(0) as f64 * 2.0 + d.index() as f64 - 0.01 * c.num(1)
        });
        let newp = UniformRandomPolicy::new(space());
        let dr = DoublyRobust::new(&model).estimate(&trace, &newp).unwrap();
        let dm = DirectMethod::new(&model).estimate(&trace, &newp).unwrap();
        prop_assert!((dr.value - dm.value).abs() < 1e-9);
    }

    fn on_policy_ips_is_trace_mean(rows in vecs(record_gen(), 1..40), seed in 0u64..100) {
        // Log under a uniform policy with correct propensities: IPS of the
        // same uniform policy equals the empirical mean exactly.
        let mut rng = Xoshiro256::seed_from(seed);
        let old = UniformRandomPolicy::new(space());
        let records: Vec<TraceRecord> = rows
            .iter()
            .map(|&(g, x, _, r, _)| {
                let c = ctx(g, x);
                let (d, p) = old.sample_with_prob(&c, &mut rng);
                TraceRecord::new(c, d, r).with_propensity(p)
            })
            .collect();
        let trace = Trace::from_records(schema(), space(), records).unwrap();
        let v = Ips::new().estimate(&trace, &old).unwrap().value;
        prop_assert!((v - trace.mean_reward()).abs() < 1e-9);
    }

    // ---- Invariant: serialization stability ----------------------------

    fn jsonl_roundtrip_is_identity(rows in vecs(record_gen(), 1..30)) {
        let trace = build_trace(&rows);
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(&buf[..]).unwrap();
        prop_assert_eq!(trace.records(), back.records());
        prop_assert_eq!(trace.space(), back.space());
    }

    // ---- Invariant: empirical propensities are distributions -----------

    fn empirical_propensity_normalized(rows in vecs(record_gen(), 1..40), smoothing in 0.0..2.0f64) {
        let trace = build_trace(&rows);
        let fitted = EmpiricalPropensity::fit(&trace, smoothing);
        for r in trace.records() {
            let total: f64 = (0..3)
                .map(|d| fitted.prob(&r.context, Decision::from_index(d)))
                .sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    // ---- Invariant 6: simulator determinism -----------------------------

    fn netsim_deterministic_in_seed(seed in 0u64..50) {
        let world = small_world(RateProfile::Constant(5.0), 60.0);
        let policy = UniformRandomPolicy::new(world.space().clone());
        let a = world.run(&policy, seed);
        let b = world.run(&policy, seed);
        prop_assert_eq!(a.trace.records(), b.trace.records());
        prop_assert_eq!(a.load_proxy, b.load_proxy);
    }

    // ---- Invariant 7: ABR buffer dynamics -------------------------------

    fn abr_buffer_bounded(bandwidth in 300.0..5_000.0f64, level in 0usize..5, seed in 0u64..50) {
        let mut session = Session::new(
            BitrateLadder::five_level(),
            SessionConfig { chunks: 30, ..Default::default() },
            QoeModel::default(),
            Bandwidth::Constant(bandwidth),
            ThroughputDiscount::paper_default(),
        );
        let mut rng = Xoshiro256::seed_from(seed);
        while !session.finished() {
            let st = session.state();
            prop_assert!(st.buffer_secs >= 0.0);
            prop_assert!(st.buffer_secs <= 30.0 + 1e-9);
            let out = session.download(level, &mut rng);
            prop_assert!(out.rebuffer_secs >= 0.0);
            prop_assert!(out.observed_kbps <= bandwidth + 1e-9);
            prop_assert!(out.observed_kbps > 0.0);
        }
    }

    // ---- Invariant 9: change-point structure ----------------------------

    fn pelt_changepoints_well_formed(xs in vecs(-10.0..10.0f64, 20..120)) {
        let cps = pelt(&xs, CostModel::NormalMean, Penalty::Bic, 5);
        // Sorted, in range, respecting min_seg.
        let mut prev = 0usize;
        for &cp in &cps {
            prop_assert!(cp > prev);
            prop_assert!(cp < xs.len());
            prop_assert!(cp - prev >= 5);
            prev = cp;
        }
        if !cps.is_empty() {
            prop_assert!(xs.len() - prev >= 5);
        }
        // segments() partitions the series.
        let segs = segments(xs.len(), &cps);
        prop_assert_eq!(segs.first().unwrap().0, 0);
        prop_assert_eq!(segs.last().unwrap().1, xs.len());
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0);
        }
    }

    // ---- Statistics substrate identities --------------------------------

    fn welford_matches_two_pass(xs in vecs(-1e4..1e4f64, 2..200)) {
        let mut w = Welford::new();
        w.extend(xs.iter().copied());
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-6 * (1.0 + var));
        let s = Summary::of(&xs);
        prop_assert_eq!(s.count, xs.len() as u64);
    }

    fn quantile_bounded_and_monotone(xs in vecs(-1e3..1e3f64, 1..100), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v1 = quantile(&xs, q1);
        prop_assert!(v1 >= lo - 1e-12 && v1 <= hi + 1e-12);
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, qa) <= quantile(&xs, qb) + 1e-12);
    }

    fn categorical_pmf_normalized(weights in vecs(0.0..10.0f64, 1..20)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let c = Categorical::new(&weights);
        prop_assert!((c.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mut rng = Xoshiro256::seed_from(1);
        for _ in 0..20 {
            let i = c.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(c.pmf(i) > 0.0, "sampled a zero-probability category");
        }
    }

    fn rng_streams_reproducible(seed in 0u64..10_000) {
        let mut a = Xoshiro256::seed_from(seed);
        let mut b = Xoshiro256::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    // ---- New-module invariants ------------------------------------------

    fn t_test_p_values_are_probabilities(t in -50.0..50.0f64, df in 1.0..500.0f64) {
        let p = t_two_sided_p(t, df);
        prop_assert!((0.0..=1.0).contains(&p));
        // Symmetry in |t| and monotone decrease in |t|.
        prop_assert!((t_two_sided_p(-t, df) - p).abs() < 1e-12);
        prop_assert!(t_two_sided_p(t.abs() + 1.0, df) <= p + 1e-12);
    }

    fn paired_and_welch_agree_on_direction(shift in -5.0..5.0f64, seed in 0u64..100) {
        let mut g = Xoshiro256::seed_from(seed);
        let a: Vec<f64> = (0..30).map(|_| g.range_f64(-1.0, 1.0)).collect();
        let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let pt = paired_t_test(&a, &b);
        let wt = welch_t_test(&a, &b);
        prop_assert!((pt.mean_diff + shift).abs() < 1e-9);
        prop_assert!((wt.mean_diff + shift).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&pt.p_two_sided));
        prop_assert!((0.0..=1.0).contains(&wt.p_two_sided));
    }

    fn emodel_mos_bounded_and_monotone(lat in 0.0..1_000.0f64, jit in 0.0..50.0f64, loss in 0.0..30.0f64) {
        let m = PathMetrics { latency_ms: lat, jitter_ms: jit, loss_pct: loss };
        let mos = emodel_mos(&m);
        prop_assert!((1.0..=5.0).contains(&mos));
        // More loss can never help; more latency can never help.
        let worse_loss = emodel_mos(&PathMetrics { loss_pct: loss + 5.0, ..m });
        let worse_lat = emodel_mos(&PathMetrics { latency_ms: lat + 100.0, ..m });
        prop_assert!(worse_loss <= mos + 1e-9);
        prop_assert!(worse_lat <= mos + 1e-9);
    }

    fn overlap_report_consistent(rows in vecs(record_gen(), 2..40)) {
        let trace = build_trace(&rows);
        let policy = UniformRandomPolicy::new(space());
        let r = OverlapReport::analyze(&trace, &policy).unwrap();
        prop_assert_eq!(r.n, trace.len());
        prop_assert!(r.effective_sample_size >= 0.0);
        prop_assert!(r.effective_sample_size <= trace.len() as f64 + 1e-9);
        prop_assert!(r.max_weight >= r.median_weight - 1e-12);
        prop_assert!(r.p99_weight <= r.max_weight + 1e-12);
        prop_assert!((0.0..=1.0).contains(&r.zero_weight_fraction));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.unsupported_mass));
    }

    fn crossfit_equals_plain_dr_for_data_independent_model(rows in vecs(record_gen(), 6..40)) {
        let trace = build_trace(&rows);
        let policy = LookupPolicy::constant(space(), 2);
        let cf = CrossFitDr::new(3, |_: &ddn::trace::Trace| ddn::models::ConstantModel::new(1.5));
        let plain = DoublyRobust::new(ddn::models::ConstantModel::new(1.5));
        let a = cf.estimate(&trace, &policy).unwrap().value;
        let b = plain.estimate(&trace, &policy).unwrap().value;
        prop_assert!((a - b).abs() < 1e-9);
    }

    // ---- Robustness: hostile inputs never panic --------------------------

    fn jsonl_reader_never_panics_on_garbage(garbage in strings_from(&printable(), 0..401)) {
        // Arbitrary printable bytes: the reader must return Ok or Err,
        // never panic.
        let _ = Trace::read_jsonl(garbage.as_bytes());
    }

    fn jsonl_reader_rejects_truncated_valid_traces(rows in vecs(record_gen(), 2..10), cut in 1usize..200) {
        let trace = build_trace(&rows);
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1)).max(1);
        let truncated = &buf[..buf.len() - cut];
        // Must not panic; may parse a prefix or error.
        let _ = Trace::read_jsonl(truncated);
    }

    // ---- Greedy policy determinism over arbitrary scores ----------------

    fn greedy_is_deterministic_distribution(s1 in -10.0..10.0f64, s2 in -10.0..10.0f64, s3 in -10.0..10.0f64) {
        let scores = [s1, s2, s3];
        let p = GreedyPolicy::new(space(), move |_c: &Context, d: Decision| scores[d.index()]);
        let c = ctx(0, 0.0);
        let probs = p.probabilities(&c);
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        prop_assert_eq!(probs.iter().filter(|&&q| q == 1.0).count(), 1);
        prop_assert!(p.is_deterministic_at(&c));
    }

    // ---- Shared-score batching: batched ≡ unbatched, bit for bit --------

    fn batched_menu_matches_unbatched_bit_for_bit(rows in vecs(record_gen(), 1..50), target in 0usize..3, eps in 0.0..1.0f64) {
        // Random trace, randomized target policy: every stationary
        // estimator must produce the same bits through the shared batch
        // as through its own scoring loop.
        let trace = build_trace(&rows);
        let policy =
            EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), target)), eps);
        let r = menu_batch_parity(&trace, &policy);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    fn batched_menu_parity_under_zero_overlap(rows in vecs(record_gen(), 1..30), target in 0usize..3) {
        // Degenerate case: a deterministic policy that disagrees with
        // every logged decision → all importance weights are zero. IPS
        // returns 0, SNIPS and matching error with NoUsableRecords —
        // batched and unbatched must agree on all of it.
        let logged = (target + 1) % 3;
        let records: Vec<TraceRecord> = rows
            .iter()
            .map(|&(g, x, _, r, p)| {
                TraceRecord::new(ctx(g, x), Decision::from_index(logged), r).with_propensity(p)
            })
            .collect();
        let trace = Trace::from_records(schema(), space(), records).unwrap();
        let policy = LookupPolicy::constant(space(), target);
        let r = menu_batch_parity(&trace, &policy);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    fn batched_menu_parity_with_missing_propensity(rows in vecs(record_gen(), 2..30), hole in 0usize..100) {
        // One record lacks its propensity: weight-based estimators must
        // report MissingPropensity with the same record index both ways,
        // and DM must keep estimating both ways.
        let hole = hole % rows.len();
        let records: Vec<TraceRecord> = rows
            .iter()
            .enumerate()
            .map(|(i, &(g, x, d, r, p))| {
                let rec = TraceRecord::new(ctx(g, x), Decision::from_index(d), r);
                if i == hole { rec } else { rec.with_propensity(p) }
            })
            .collect();
        let trace = Trace::from_records(schema(), space(), records).unwrap();
        let policy =
            EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), 0)), 0.3);
        let r = menu_batch_parity(&trace, &policy);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    fn state_aware_batched_parity(rows in vecs(record_gen(), 1..40), target in 0usize..3) {
        // StateAwareDR's inherent estimate/estimate_batch pair over a
        // trace whose records alternate between the two load states.
        let records: Vec<TraceRecord> = rows
            .iter()
            .enumerate()
            .map(|(i, &(g, x, d, r, p))| {
                TraceRecord::new(ctx(g, x), Decision::from_index(d), r)
                    .with_propensity(p)
                    .with_state(if i % 2 == 0 { StateTag::LOW_LOAD } else { StateTag::HIGH_LOAD })
            })
            .collect();
        let trace = Trace::from_records(schema(), space(), records).unwrap();
        let policy = LookupPolicy::constant(space(), target);
        let model = parity_model();
        let batch = EvalBatch::with_model(&trace, &policy, &model).unwrap();
        let est = StateAwareDr::new(&model, MatchOnly, StateTag::HIGH_LOAD);
        let plain = est.estimate(&trace, &policy);
        let batched = est.estimate_batch(&trace, &batch);
        match (plain, batched) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
                prop_assert_eq!(a.per_record.len(), b.per_record.len());
                for (x, y) in a.per_record.iter().zip(&b.per_record) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (a, b) => prop_assert!(false, "Ok/Err disagree: {a:?} vs {b:?}"),
        }
    }

    fn replay_batched_parity(rows in vecs(record_gen(), 1..40), target in 0usize..3, seed in 0u64..500) {
        // Replay consumes RNG draws record-by-record; the batched path
        // must accept/reject the same tuples and produce the same bits.
        let trace = build_trace(&rows);
        let old = EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), 0)), 0.5);
        let model = parity_model();
        let batch = EvalBatch::with_model(&trace, &old, &model).unwrap();
        let evaluator = ReplayEvaluator::new(&model);
        let mut h_plain = StationaryAsHistory::new(LookupPolicy::constant(space(), target));
        let mut rng_plain = Xoshiro256::seed_from(seed);
        let plain = evaluator.evaluate(&trace, &old, &mut h_plain, &mut rng_plain);
        let mut h_batch = StationaryAsHistory::new(LookupPolicy::constant(space(), target));
        let mut rng_batch = Xoshiro256::seed_from(seed);
        let batched = evaluator.evaluate_batch(&trace, &batch, &mut h_batch, &mut rng_batch);
        match (plain, batched) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.accepted, b.accepted);
                prop_assert_eq!(a.rejected, b.rejected);
                prop_assert_eq!(a.estimate.value.to_bits(), b.estimate.value.to_bits());
                for (x, y) in a.estimate.per_record.iter().zip(&b.estimate.per_record) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (a, b) => prop_assert!(false, "Ok/Err disagree: {a:?} vs {b:?}"),
        }
    }
}

// ---- Pinned degenerate-input behavior (not property-sized) -------------

/// A trace can never be empty, so `EvalBatch` (and every estimator) is
/// guaranteed at least one record: the constructor rejects emptiness.
#[test]
fn empty_trace_is_rejected_before_batching() {
    let err = Trace::from_records(schema(), space(), Vec::new());
    assert!(matches!(err, Err(TraceError::Empty)), "{err:?}");
}

/// Zero (and out-of-range) propensities are rejected when the record is
/// built, so "all-zero propensities" cannot reach the estimators; the
/// reachable degenerate case is all-zero *weights*, covered by
/// `batched_menu_parity_under_zero_overlap`.
#[test]
fn zero_propensity_is_rejected_before_batching() {
    for bad in [0.0, -0.25, 1.5, f64::NAN] {
        let attach = std::panic::catch_unwind(|| {
            TraceRecord::new(ctx(0, 0.0), Decision::from_index(0), 1.0).with_propensity(bad)
        });
        assert!(attach.is_err(), "propensity {bad} should be rejected");
    }
}
