//! Figure 7b — model bias in the ABR world.
//!
//! Protocol (paper §4.2): "We create a video session with 100 chunks and
//! five bitrate levels, and the available bandwidth is a constant b. To
//! evaluate the video quality of the new ABR policy \[MPC\], we first use
//! the old ABR policy (a buffer-based ABR policy) to collect throughput
//! traces, where the observed throughput is b·p(r), p ≤ 1 and
//! monotonically increases with the chosen bitrate."
//!
//! The **FastMPC evaluator** (the baseline) replays the new policy against
//! the logged throughput assuming observed throughput is independent of
//! bitrate — the Figure 2 pitfall. **DR** corrects it "by using the
//! unbiased quality measurement on chunks that use the same bitrate as in
//! the observed trace": with both policies deterministic, the paper's
//! Eq. 2 reduces per tuple to *observed reward when the replayed decision
//! matches the logged one, model prediction otherwise* (the
//! "deterministically take the same action → DR equals IPS" special case
//! of §3).
//!
//! Rewards here are **chunk-local** (bitrate utility minus a stall
//! penalty for downloading slower than real time), matching the paper's
//! §2.1 framework where the reward is a function of the (client,
//! decision) pair — a chunk and its bitrate — rather than of the whole
//! trajectory. The ABR *policies* remain stateful (buffer- and
//! history-driven); only the per-chunk quality metric is local.
//!
//! **Shared-score batching:** this scenario replays bespoke
//! [`SessionTrace`]s chunk-by-chunk (both policies are stateful), so the
//! columnar [`ddn_estimators::EvalBatch`] does not apply; there is
//! nothing scored twice to share. `figure7 --no-batch` is therefore a
//! documented no-op for 7b — it still benefits from the worker-pool
//! parallel runner like every other panel.

use ddn_abr::policies::AbrPolicy;
use ddn_abr::session::ChunkState;
use ddn_abr::throughput::{Bandwidth, ThroughputDiscount};
use ddn_abr::{
    decode_state, log_session, run_session, BitrateLadder, BufferBased, ExploringAbr, Mpc,
    QoeModel, Session, SessionConfig, SessionTrace,
};
use ddn_estimators::{ErrorTable, ExperimentRunner};
use ddn_models::{FnModel, RewardModel};
use ddn_telemetry::TelemetrySnapshot;
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_trace::{Context, Decision};

/// Configuration knobs for the experiment.
#[derive(Debug, Clone)]
pub struct Figure7bConfig {
    /// Chunks per session (paper: 100).
    pub chunks: usize,
    /// Bitrate ladder (paper: five levels).
    pub ladder: BitrateLadder,
    /// Throughput discount `p(r)` (the pitfall dial; `none()` disables it).
    pub discount: ThroughputDiscount,
    /// Range the constant per-run bandwidth is drawn from (kbps).
    pub bandwidth_range: (f64, f64),
    /// Exploration rate of the BBA logger. The paper's logger is the
    /// plain deterministic BBA (`0.0`); raising it exercises the §4.1
    /// randomized-logging variant.
    pub epsilon: f64,
    /// MPC lookahead.
    pub mpc_horizon: usize,
    /// Number of runs (paper: 50).
    pub runs: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for Figure7bConfig {
    fn default() -> Self {
        Self {
            chunks: 100,
            ladder: BitrateLadder::five_level(),
            discount: ThroughputDiscount::paper_default(),
            bandwidth_range: (1300.0, 3200.0),
            epsilon: 0.0,
            mpc_horizon: 5,
            runs: 50,
            base_seed: 70_002,
        }
    }
}

fn make_session(cfg: &Figure7bConfig, bandwidth: f64) -> Session {
    Session::new(
        cfg.ladder.clone(),
        SessionConfig {
            chunks: cfg.chunks,
            ..Default::default()
        },
        QoeModel::default(),
        Bandwidth::Constant(bandwidth),
        cfg.discount.clone(),
    )
}

/// Chunk-local QoE: bitrate utility (Mbps) minus a stall penalty for
/// downloading slower than real time at the throughput this bitrate
/// actually observes. Depends only on the chunk's bandwidth and the
/// chosen bitrate — the well-defined `r(c, d)` of the paper's §2.1.
/// (The penalty weight 2/s keeps typical session values away from zero so
/// the relative-error metric stays stable.)
fn chunk_local_reward(ladder: &BitrateLadder, level: usize, observed_kbps: f64) -> f64 {
    let utility = ladder.kbps(level) / 1000.0;
    let download_secs = ladder.chunk_kbits(level) / observed_kbps;
    let stall = (download_secs - ladder.chunk_secs()).max(0.0);
    utility - 2.0 * stall
}

/// Output of one counterfactual replay over a logged session.
struct ReplayResult {
    /// The FastMPC evaluator's estimate: mean simulated QoE.
    fastmpc: f64,
    /// The DR estimate: observed QoE on matched chunks, simulated QoE on
    /// the rest.
    dr: f64,
    /// Fraction of chunks where the replayed decision matched the log —
    /// the coverage diagnostic reported as DR health telemetry.
    match_rate: f64,
}

/// Replays the MPC policy over the logged session using FastMPC's
/// evaluation recipe: estimate the bandwidth as the **session-mean
/// observed throughput** of the old trace — a quantity depressed by the
/// old policy's low bitrates (the Figure 2 pitfall: "the throughput
/// estimator may implicitly assume that the observed throughput is
/// independent of the chunk's bitrate") — and score every replayed chunk
/// with the model reward at that estimate. The DR pass additionally
/// replaces the model term with the observed chunk reward wherever the
/// replayed bitrate matches the logged one (Eq. 2, deterministic case).
fn replay_counterfactual(cfg: &Figure7bConfig, logged: &SessionTrace, mpc: &Mpc) -> ReplayResult {
    let ladder = &cfg.ladder;
    let session_cfg = SessionConfig {
        chunks: cfg.chunks,
        ..Default::default()
    };
    // The biased session-level throughput estimate.
    let t_hat: f64 =
        logged.outcomes.iter().map(|o| o.observed_kbps).sum::<f64>() / logged.outcomes.len() as f64;
    let mut buffer = session_cfg.startup_buffer_secs;
    let mut prev_level: Option<usize> = None;
    let mut total_sim = 0.0;
    let mut total_dr = 0.0;
    let mut matched = 0usize;
    for outcome in &logged.outcomes {
        let state = ChunkState {
            index: outcome.state.index,
            buffer_secs: buffer,
            prev_level,
            prev_observed_kbps: Some(t_hat),
        };
        let level = mpc.choose(&state, ladder);
        let download = ladder.chunk_kbits(level) / t_hat;
        buffer = (buffer - download).max(0.0) + ladder.chunk_secs();
        buffer = buffer.min(session_cfg.buffer_max_secs);
        // Model (DM) term: reward predicted at the biased estimate.
        let model_qoe = chunk_local_reward(ladder, level, t_hat);
        total_sim += model_qoe;
        // The DR correction (Eq. 2 with deterministic policies): when the
        // replayed bitrate equals the logged one, the observed reward is
        // an unbiased measurement of exactly this decision — use it in
        // place of the model prediction.
        if level == outcome.level {
            matched += 1;
            total_dr += chunk_local_reward(ladder, level, outcome.observed_kbps);
        } else {
            total_dr += model_qoe;
        }
        prev_level = Some(level);
    }
    let n = logged.outcomes.len() as f64;
    ReplayResult {
        fastmpc: total_sim / n,
        dr: total_dr / n,
        match_rate: matched as f64 / n,
    }
}

/// Per-seed work shared by the plain and instrumented runners. The phase
/// spans and the replay's coverage health record are inert unless a
/// telemetry collector is installed.
fn run_seed(cfg: &Figure7bConfig, seed: u64) -> (f64, Vec<(String, f64)>) {
    let mut rng = Xoshiro256::seed_from(seed);
    let bandwidth = rng.range_f64(cfg.bandwidth_range.0, cfg.bandwidth_range.1);

    let (truth, logged) = {
        let _span = ddn_telemetry::span("simulate");
        // Ground truth: the new policy (MPC) run on the real world.
        let mpc = Mpc::new(cfg.mpc_horizon, QoeModel::default());
        let mut truth_rng = rng.fork();
        let truth_outcomes = run_session(make_session(cfg, bandwidth), &mpc, &mut truth_rng);
        let truth: f64 = truth_outcomes
            .iter()
            .map(|c| chunk_local_reward(&cfg.ladder, c.level, c.observed_kbps))
            .sum::<f64>()
            / truth_outcomes.len() as f64;

        // Log a trace with the BBA old policy.
        let logger = ExploringAbr::new(BufferBased::default(), cfg.epsilon);
        let mut log_rng = rng.fork();
        let logged = log_session(make_session(cfg, bandwidth), &logger, &mut log_rng);
        (truth, logged)
    };

    let _span = ddn_telemetry::span("estimate");
    let mpc = Mpc::new(cfg.mpc_horizon, QoeModel::default());
    let replay = replay_counterfactual(cfg, &logged, &mpc);
    if ddn_telemetry::enabled() {
        // The manual Eq. 2 replay bypasses the Estimator trait, so it
        // reports its coverage diagnostic here: the fraction of chunks
        // where DR could use an unbiased empirical measurement.
        ddn_telemetry::record_health("DR", &[("coverage", replay.match_rate)]);
    }

    (
        truth,
        vec![
            ("FastMPC".to_string(), replay.fastmpc),
            ("DR".to_string(), replay.dr),
        ],
    )
}

/// Runs the Figure 7b experiment with custom configuration.
pub fn figure7b_with(cfg: &Figure7bConfig) -> ErrorTable {
    ExperimentRunner::new(cfg.runs, cfg.base_seed)
        .run_parallel(ExperimentRunner::default_threads(), |seed| {
            run_seed(cfg, seed)
        })
}

/// Runs Figure 7b with telemetry: same numbers as [`figure7b_with`]
/// (bit-identical, regardless of thread count) plus per-run spans and the
/// replay's coverage diagnostic.
pub fn figure7b_instrumented(cfg: &Figure7bConfig) -> (ErrorTable, TelemetrySnapshot) {
    ExperimentRunner::new(cfg.runs, cfg.base_seed)
        .run_parallel_instrumented(ExperimentRunner::default_threads(), |seed| {
            run_seed(cfg, seed)
        })
}

/// Runs Figure 7b with the paper's protocol (50 runs).
pub fn figure7b() -> ErrorTable {
    figure7b_with(&Figure7bConfig::default())
}

/// The per-chunk FastMPC-style reward model (assumed-independent
/// throughput) exposed for tests: the QoE predicted for choosing level `d`
/// in a logged chunk state under the Figure 2 independence assumption.
pub fn assumed_independence_qoe(cfg: &Figure7bConfig, ctx: &Context, d: Decision) -> f64 {
    let ladder = cfg.ladder.clone();
    let qoe = QoeModel::default();
    let model = FnModel::new(move |ctx: &Context, d: Decision| {
        let state = decode_state(ctx);
        let assumed_kbps = state.prev_observed_kbps.unwrap_or(ladder.kbps(0));
        let download = ladder.chunk_kbits(d.index()) / assumed_kbps;
        let rebuffer = (download - state.buffer_secs).max(0.0);
        qoe.chunk_qoe(&ladder, d.index(), state.prev_level, rebuffer)
    });
    model.predict(ctx, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_abr::{abr_schema, encode_state};

    #[test]
    fn fastmpc_model_overestimates_download_time_for_high_bitrates() {
        // Logged under a low bitrate: observed ≈ b·p(low) < b. The model
        // therefore predicts a longer download for the top level than the
        // truth, creating rebuffer pessimism.
        let cfg = Figure7bConfig::default();
        let b = 2000.0;
        let observed_low = cfg.discount.observed(b, 0, 5);
        let state = ChunkState {
            index: 5,
            buffer_secs: 6.0,
            prev_level: Some(0),
            prev_observed_kbps: Some(observed_low),
        };
        let ctx = encode_state(&abr_schema(), &state);
        let pessimistic = assumed_independence_qoe(&cfg, &ctx, Decision::from_index(4));
        // Truth: downloading level 4 would see the full bandwidth.
        let true_download = cfg.ladder.chunk_kbits(4) / cfg.discount.observed(b, 4, 5);
        let true_rebuffer = (true_download - 6.0).max(0.0);
        let truth = QoeModel::default().chunk_qoe(&cfg.ladder, 4, Some(0), true_rebuffer);
        assert!(
            pessimistic < truth,
            "biased model {pessimistic} should be below truth {truth}"
        );
    }

    #[test]
    fn dr_beats_fastmpc_in_small_replication() {
        let cfg = Figure7bConfig {
            runs: 10,
            ..Default::default()
        };
        let table = figure7b_with(&cfg);
        let dr = table.get("DR").unwrap();
        let fastmpc = table.get("FastMPC").unwrap();
        assert!(
            dr.mean < fastmpc.mean,
            "DR {} should beat FastMPC {}",
            dr.mean,
            fastmpc.mean
        );
    }

    #[test]
    fn replay_matches_a_meaningful_chunk_fraction() {
        let cfg = Figure7bConfig::default();
        let mut rng = Xoshiro256::seed_from(4);
        let bandwidth = 2000.0;
        let logger = ExploringAbr::new(BufferBased::default(), cfg.epsilon);
        let mut log_rng = rng.fork();
        let logged = log_session(make_session(&cfg, bandwidth), &logger, &mut log_rng);
        let mpc = Mpc::new(cfg.mpc_horizon, QoeModel::default());
        let replay = replay_counterfactual(&cfg, &logged, &mpc);
        assert!(
            replay.match_rate > 0.1 && replay.match_rate < 1.0,
            "match rate {} should be a non-trivial fraction",
            replay.match_rate
        );
    }

    #[test]
    fn pitfall_disappears_without_discount() {
        // Control: with p(r) ≡ 1 the independence assumption is TRUE, so
        // the FastMPC evaluator should be quite accurate.
        let cfg = Figure7bConfig {
            runs: 10,
            discount: ThroughputDiscount::none(),
            ..Default::default()
        };
        let table = figure7b_with(&cfg);
        let fastmpc = table.get("FastMPC").unwrap();
        let with_pitfall = figure7b_with(&Figure7bConfig {
            runs: 10,
            ..Default::default()
        });
        assert!(
            fastmpc.mean < with_pitfall.get("FastMPC").unwrap().mean,
            "removing the discount should shrink FastMPC's error ({} vs {})",
            fastmpc.mean,
            with_pitfall.get("FastMPC").unwrap().mean
        );
    }
}
