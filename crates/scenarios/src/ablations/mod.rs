//! Ablation studies for every design dimension the paper discusses
//! qualitatively (§2.2, §3, §4.1, §4.3) — see the crate docs for the
//! index. Each ablation returns structured rows and a text rendering so
//! the `figures` binary can print the same series the analysis describes.

pub mod calibration;
pub mod coupling;
pub mod dimensionality;
pub mod menu;
pub mod nonstationary;
pub mod randomness;
pub mod second_order;
pub mod selection;
pub mod state;
pub mod trace_size;

pub use calibration::{ablation_calibration, CalibrationRow};
pub use coupling::{ablation_coupling, CouplingRow};
pub use dimensionality::{ablation_dimensionality, DimensionalityRow};
pub use menu::{
    ablation_menu, ablation_menu_instrumented, MenuConfig, MenuRow, MenuScenario,
};
pub use nonstationary::{ablation_nonstationary, NonstationaryResult};
pub use randomness::{ablation_randomness, RandomnessRow};
pub use second_order::{ablation_second_order, SecondOrderRow};
pub use selection::{ablation_selection, SelectionRow};
pub use state::{ablation_state, StateResult};
pub use trace_size::{ablation_trace_size, TraceSizeRow};
