//! Ablation G — second-order bias (§3).
//!
//! "Under certain assumptions the DR estimator is well-understood to
//! possess 'second-order bias', i.e. roughly its error is upper bounded by
//! the product of the error of the DM and IPS estimators."
//!
//! We build a fully analytic world with two independent error dials:
//!
//! - `model_bias` — a constant offset added to the (otherwise perfect)
//!   reward model, controlling the DM error directly;
//! - `propensity_distortion` δ — the evaluator is handed propensities
//!   `(1−δ)·p_true + δ·(1/|D|)` instead of the truth, controlling the IPS
//!   error.
//!
//! Sweeping the grid, DR's error should (a) vanish along both axes where
//! either dial is zero, and (b) grow with the *product* of the dials in
//! the interior — the signature of second-order bias.

use ddn_estimators::{DirectMethod, DoublyRobust, Estimator, Ips};
use ddn_models::FnModel;
use ddn_policy::{LookupPolicy, UniformRandomPolicy};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::summary::ErrorReport;
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};

/// One grid cell of the sweep.
#[derive(Debug, Clone)]
pub struct SecondOrderRow {
    /// The model-bias dial.
    pub model_bias: f64,
    /// The propensity-distortion dial.
    pub propensity_distortion: f64,
    /// DM relative error at this cell.
    pub dm: ErrorReport,
    /// IPS relative error at this cell.
    pub ips: ErrorReport,
    /// DR relative error at this cell.
    pub dr: ErrorReport,
}

const TRUTH_SCALE: f64 = 10.0;

fn truth(g: u32, d: usize) -> f64 {
    TRUTH_SCALE + 2.0 * g as f64 + 3.0 * d as f64
}

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

/// Logs a trace under a known stochastic policy, recording *distorted*
/// propensities.
fn log_trace(n: usize, distortion: f64, seed: u64) -> Trace {
    let s = schema();
    let sp = space();
    let old = UniformRandomPolicy::new(sp.clone());
    // True logging policy: softly prefers d0 in group 0 and d1 in group 1.
    let true_prob = |g: u32, d: usize| -> f64 {
        if (g as usize) == d {
            0.8
        } else {
            0.2
        }
    };
    let mut rng = Xoshiro256::seed_from(seed);
    let k = sp.len() as f64;
    let records = (0..n)
        .map(|_| {
            let g = rng.index(2) as u32;
            let d = if rng.chance(true_prob(g, 0)) { 0 } else { 1 };
            let recorded = (1.0 - distortion) * true_prob(g, d) + distortion / k;
            let c = Context::build(&s).set_cat("g", g).finish();
            TraceRecord::new(c, Decision::from_index(d), truth(g, d)).with_propensity(recorded)
        })
        .collect();
    let _ = old;
    Trace::from_records(s, sp, records).expect("valid synthetic trace")
}

/// Runs the grid sweep.
///
/// # Panics
/// Panics if either dial list is empty or `runs == 0`.
pub fn ablation_second_order(
    model_biases: &[f64],
    distortions: &[f64],
    runs: usize,
    base_seed: u64,
) -> Vec<SecondOrderRow> {
    assert!(
        !model_biases.is_empty() && !distortions.is_empty(),
        "need dial values"
    );
    assert!(runs > 0, "need at least one run");
    let newp = LookupPolicy::constant(space(), 1);
    let s = schema();
    // True value of "always d1": E_g[truth(g, 1)] with g ~ Uniform{0,1}.
    let c0 = Context::build(&s).set_cat("g", 0).finish();
    let c1 = Context::build(&s).set_cat("g", 1).finish();
    let _ = (&c0, &c1);
    let true_v = 0.5 * (truth(0, 1) + truth(1, 1));

    let mut rows = Vec::new();
    for &mb in model_biases {
        for &pd in distortions {
            let model =
                FnModel::new(move |c: &Context, d: Decision| truth(c.cat(0), d.index()) + mb);
            let mut dm_e = Vec::with_capacity(runs);
            let mut ips_e = Vec::with_capacity(runs);
            let mut dr_e = Vec::with_capacity(runs);
            for i in 0..runs {
                let seed = base_seed + i as u64;
                let trace = log_trace(2000, pd, seed);
                let dm = DirectMethod::new(&model)
                    .estimate(&trace, &newp)
                    .unwrap()
                    .value;
                let ips = Ips::new().estimate(&trace, &newp).unwrap().value;
                let dr = DoublyRobust::new(&model)
                    .estimate(&trace, &newp)
                    .unwrap()
                    .value;
                dm_e.push((true_v - dm).abs() / true_v);
                ips_e.push((true_v - ips).abs() / true_v);
                dr_e.push((true_v - dr).abs() / true_v);
            }
            rows.push(SecondOrderRow {
                model_bias: mb,
                propensity_distortion: pd,
                dm: ErrorReport::from_errors(&dm_e),
                ips: ErrorReport::from_errors(&ips_e),
                dr: ErrorReport::from_errors(&dr_e),
            });
        }
    }
    rows
}

/// Renders the grid as aligned text.
pub fn render(rows: &[SecondOrderRow]) -> String {
    let mut out =
        String::from("Ablation G - second-order bias (model-bias x propensity-distortion grid)\n");
    out.push_str(&format!(
        "{:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
        "model bias", "distortion", "DM err", "IPS err", "DR err"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10.2}  {:>10.2}  {:>10.4}  {:>10.4}  {:>10.4}\n",
            r.model_bias, r.propensity_distortion, r.dm.mean, r.ips.mean, r.dr.mean
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(rows: &[SecondOrderRow], mb: f64, pd: f64) -> &SecondOrderRow {
        rows.iter()
            .find(|r| r.model_bias == mb && r.propensity_distortion == pd)
            .unwrap()
    }

    #[test]
    fn dr_error_vanishes_on_both_axes() {
        let rows = ablation_second_order(&[0.0, 3.0], &[0.0, 0.8], 6, 960);
        // Perfect model, distorted propensities: DR ≈ exact.
        let good_model = cell(&rows, 0.0, 0.8);
        assert!(
            good_model.dr.mean < 0.01,
            "DR with exact model: {}",
            good_model.dr.mean
        );
        // Biased model, exact propensities: DR ≈ unbiased (small error).
        let good_props = cell(&rows, 3.0, 0.0);
        assert!(
            good_props.dr.mean < 0.5 * good_props.dm.mean,
            "DR {} should strongly correct the biased DM {}",
            good_props.dr.mean,
            good_props.dm.mean
        );
    }

    #[test]
    fn dr_error_grows_with_the_product() {
        let rows = ablation_second_order(&[0.0, 1.5, 3.0], &[0.0, 0.4, 0.8], 6, 961);
        let corner = cell(&rows, 3.0, 0.8);
        let mild = cell(&rows, 1.5, 0.4);
        let edge = cell(&rows, 3.0, 0.0);
        assert!(
            corner.dr.mean > mild.dr.mean,
            "corner {} should exceed the milder interior {}",
            corner.dr.mean,
            mild.dr.mean
        );
        assert!(
            corner.dr.mean > edge.dr.mean,
            "corner {} should exceed the good-propensity edge {}",
            corner.dr.mean,
            edge.dr.mean
        );
        // And even in the corner, DR stays at or below the worse of DM/IPS.
        assert!(corner.dr.mean <= corner.dm.mean.max(corner.ips.mean) + 0.02);
    }
}
