//! Ablation A — coverage and randomness (§4.1).
//!
//! "If not enough randomness is present, decisions that occur with low
//! probability will generate high variance as the term in the denominator
//! μ_old(d_k|c_k) will be very small."
//!
//! We sweep the exploration rate ε of an ε-smoothed *production* logging
//! policy (pinned to one CDN/bitrate, as deterministic cost-optimizing
//! policies are) in the CFA world, evaluating the greedy new policy. As
//! ε → 0 the IPS weights blow up (max weight `|D|/ε`) and its error
//! explodes; DR degrades far more gracefully because the model term
//! absorbs most of the value and only residuals ride the weights.

use ddn_cdn::cfa::{CfaConfig, CfaWorld};
use ddn_estimators::{DoublyRobust, Estimator, Ips, SelfNormalizedIps};
use ddn_models::{KnnConfig, KnnRegressor};
use ddn_policy::{EpsilonSmoothedPolicy, LookupPolicy};
use ddn_stats::rng::Xoshiro256;
use ddn_stats::summary::ErrorReport;

/// One row of the sweep.
#[derive(Debug, Clone)]
pub struct RandomnessRow {
    /// Exploration rate of the logging policy.
    pub epsilon: f64,
    /// IPS relative error.
    pub ips: ErrorReport,
    /// Self-normalized IPS relative error.
    pub snips: ErrorReport,
    /// DR relative error.
    pub dr: ErrorReport,
    /// Mean (over runs) of the largest importance weight — the variance
    /// early-warning signal.
    pub mean_max_weight: f64,
}

/// Runs the randomness sweep.
///
/// # Panics
/// Panics if `epsilons` is empty or `runs == 0`.
pub fn ablation_randomness(epsilons: &[f64], runs: usize, base_seed: u64) -> Vec<RandomnessRow> {
    assert!(!epsilons.is_empty(), "need at least one epsilon");
    assert!(runs > 0, "need at least one run");
    let world = CfaWorld::new(CfaConfig::default(), 2121);
    let new_policy = world.greedy_policy();
    let clients_n = 800;

    epsilons
        .iter()
        .map(|&eps| {
            let mut ips_err = Vec::with_capacity(runs);
            let mut snips_err = Vec::with_capacity(runs);
            let mut dr_err = Vec::with_capacity(runs);
            let mut max_w = 0.0;
            for i in 0..runs {
                let seed = base_seed + i as u64;
                let mut rng = Xoshiro256::seed_from(seed);
                let clients = world.sample_clients(clients_n, &mut rng);
                let truth = world.true_value(&clients, &new_policy);
                let old = EpsilonSmoothedPolicy::new(
                    Box::new(LookupPolicy::constant(world.space().clone(), 0)),
                    eps,
                );
                let trace = world.log_trace(&clients, &old, seed ^ 0xABCD);
                let knn = KnnRegressor::fit(&trace, KnnConfig::default());

                let ips = Ips::new().estimate(&trace, &new_policy).unwrap();
                let snips = SelfNormalizedIps::new()
                    .estimate(&trace, &new_policy)
                    .map(|e| e.value)
                    .unwrap_or(trace.mean_reward());
                let dr = DoublyRobust::new(&knn)
                    .estimate(&trace, &new_policy)
                    .unwrap();

                ips_err.push((truth - ips.value).abs() / truth.abs());
                snips_err.push((truth - snips).abs() / truth.abs());
                dr_err.push((truth - dr.value).abs() / truth.abs());
                max_w += ips.diagnostics.max_weight;
            }
            RandomnessRow {
                epsilon: eps,
                ips: ErrorReport::from_errors(&ips_err),
                snips: ErrorReport::from_errors(&snips_err),
                dr: ErrorReport::from_errors(&dr_err),
                mean_max_weight: max_w / runs as f64,
            }
        })
        .collect()
}

/// Renders the sweep as aligned text.
pub fn render(rows: &[RandomnessRow]) -> String {
    let mut out = String::from(
        "Ablation A - coverage & randomness (CFA world, pinned logger + eps exploration)\n",
    );
    out.push_str(&format!(
        "{:>8}  {:>10}  {:>10}  {:>10}  {:>12}\n",
        "epsilon", "IPS err", "SNIPS err", "DR err", "max weight"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8.3}  {:>10.4}  {:>10.4}  {:>10.4}  {:>12.1}\n",
            r.epsilon, r.ips.mean, r.snips.mean, r.dr.mean, r.mean_max_weight
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ips_error_explodes_as_epsilon_shrinks_dr_does_not() {
        let rows = ablation_randomness(&[0.02, 0.5], 8, 900);
        let tight = &rows[0];
        let loose = &rows[1];
        assert!(
            tight.ips.mean > 2.0 * loose.ips.mean,
            "IPS at eps=0.02 ({}) should far exceed eps=0.5 ({})",
            tight.ips.mean,
            loose.ips.mean
        );
        assert!(
            tight.dr.mean < tight.ips.mean,
            "DR ({}) should beat IPS ({}) in the low-randomness regime",
            tight.dr.mean,
            tight.ips.mean
        );
        assert!(tight.mean_max_weight > loose.mean_max_weight);
    }

    #[test]
    fn render_mentions_all_epsilons() {
        let rows = ablation_randomness(&[0.1, 0.3], 3, 901);
        let text = render(&rows);
        assert!(text.contains("0.100") && text.contains("0.300"));
    }
}
