//! Ablation M — the estimator-menu expansion (ROADMAP item 3), one
//! breaking scenario per new estimator, swept over trace size.
//!
//! The paper's Figure 7 worlds are stationary, small-action, single-step —
//! precisely the regime where the basic menu (IPS/SNIPS/DR) is at its
//! best. Each scenario here is engineered to *break* the incumbents the
//! way production logs do, and to show the matching menu extension
//! repairing the damage:
//!
//! - **adaptive** — a LinUCB logger learns while it logs, decaying the
//!   abandoned arm's propensity toward a floor; late records carry large
//!   importance weights and plain IPS/SNIPS error explodes. [`AdaptiveDr`]
//!   pairs model residuals with variance-stabilizing adaptive weights
//!   (à la Zhan et al. 2021); [`AdaptiveIps`] shows stabilization alone.
//! - **marginalized** — a composite CDN × bitrate × relay space with
//!   1080 arms; the deterministic target is logged ~once per thousand
//!   records, per-arm weights hit 1080 and the ESS collapses to a
//!   handful. [`MarginalizedDr`] marginalizes the weights over the CDN
//!   embedding (the reward only depends on the arm through its CDN).
//! - **sequential** — multi-step ABR sessions; weighting a whole session
//!   by the product of its per-chunk ratios (trajectory IPS) has
//!   exponentially heavy tails, while single-step DR is biased by the
//!   logger-induced buffer-state distribution. [`SeqDr`] threads the
//!   correction backward per decision (Jiang & Li 2016).
//!
//! Every cell is an [`ErrorTable`] over seeded runs; the panel's claim —
//! asserted by the tests and reported by `ddn figure7 menu` — is that at
//! the largest trace size each challenger's mean error is below every
//! incumbent's.

use ddn_abr::{
    abr_schema, abr_space, decode_state, log_session, Bandwidth, BitrateLadder, BufferBased,
    ExploringAbr, Mpc, QoeModel, Session, SessionConfig, ThroughputDiscount,
};
use ddn_estimators::{
    ActionEmbedding, AdaptiveDr, AdaptiveIps, AdaptiveWeights, DoublyRobust, ErrorTable,
    Estimator, ExperimentRunner, Ips, MarginalizedDr, SelfNormalizedIps, SeqDr,
};
use ddn_models::{ConstantModel, FnModel, TabularMeanModel};
use ddn_policy::{HistoryPolicy, LinUcb, LookupPolicy, Policy, UniformRandomPolicy};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_telemetry::TelemetrySnapshot;
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};

/// Configuration knobs for the menu panel.
#[derive(Debug, Clone)]
pub struct MenuConfig {
    /// Seeded runs per (scenario, size) cell.
    pub runs: usize,
    /// Base seed; each cell offsets it so no two cells share seeds.
    pub base_seed: u64,
    /// Trace-size multipliers (the sweep's x axis) applied to each
    /// scenario's base size.
    pub scales: Vec<f64>,
}

impl Default for MenuConfig {
    fn default() -> Self {
        Self {
            runs: 20,
            base_seed: 77_001,
            scales: vec![0.5, 1.0, 2.0],
        }
    }
}

/// One swept cell: the trace length and the full error table at it.
#[derive(Debug, Clone)]
pub struct MenuRow {
    /// Records per trace at this cell.
    pub trace_len: usize,
    /// Relative-error table (incumbents first, challenger last).
    pub table: ErrorTable,
}

/// One breaking scenario's sweep.
#[derive(Debug, Clone)]
pub struct MenuScenario {
    /// Scenario id: `"adaptive"`, `"marginalized"` or `"sequential"`.
    pub name: &'static str,
    /// The menu extension under test (last column).
    pub challenger: &'static str,
    /// The incumbent estimators it must beat.
    pub incumbents: Vec<&'static str>,
    /// One row per swept trace size, ascending.
    pub rows: Vec<MenuRow>,
}

impl MenuScenario {
    /// Whether the challenger's mean error at the largest trace size is
    /// strictly below every incumbent's — the panel's headline claim.
    pub fn challenger_wins(&self) -> bool {
        let last = self.rows.last().expect("sweep has at least one size");
        let ch = last.table.get(self.challenger).expect("challenger row").mean;
        self.incumbents
            .iter()
            .all(|inc| ch < last.table.get(inc).expect("incumbent row").mean)
    }
}

// ---- scenario 1: adaptively collected logs ------------------------------

/// Base record count for the adaptive sweep at scale 1.
const ADAPTIVE_BASE: usize = 1200;
/// Exploration floor: the abandoned arm keeps propensity ε/2 = 0.05 —
/// weight 20 under the target, and hit often enough that the stabilizer's
/// EMA of squared weights can track the decaying propensity.
const ADAPTIVE_EPS_FLOOR: f64 = 0.1;

fn adaptive_schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn adaptive_space() -> DecisionSpace {
    DecisionSpace::of(&["d0", "d1"])
}

/// Logs `n` records under a LinUCB bandit with decaying ε-exploration:
/// the bandit learns arm `d1` pays 3 more, so the evaluated arm `d0`'s
/// propensity decays from ~0.5 to the 0.05 floor — an adaptively
/// collected log whose late records carry weight 20 under the target.
fn adaptive_trace(n: usize, rng: &mut Xoshiro256) -> Trace {
    let s = adaptive_schema();
    let space = adaptive_space();
    let mut bandit = LinUcb::new(space.clone(), 1, 1.0, 1.0);
    let recs = (0..n)
        .map(|k| {
            let g = rng.index(2) as u32;
            let c = Context::build(&s).set_cat("g", g).finish();
            let eps = (0.8 * (1.0 - k as f64 / n as f64)).max(ADAPTIVE_EPS_FLOOR);
            let probs = bandit.probabilities(&c);
            let greedy = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
                .expect("non-empty space")
                .0;
            let d = if rng.chance(eps) { rng.index(2) } else { greedy };
            let p = eps / 2.0 + if d == greedy { 1.0 - eps } else { 0.0 };
            let reward = 2.0 + g as f64 + 3.0 * d as f64 + rng.range_f64(-0.25, 0.25);
            bandit.observe(&c, Decision::from_index(d), reward);
            TraceRecord::new(c, Decision::from_index(d), reward).with_propensity(p)
        })
        .collect();
    Trace::from_records(s, space, recs).expect("adaptive trace is well-formed")
}

fn adaptive_work(n: usize) -> impl Fn(u64) -> (f64, Vec<(String, f64)>) + Sync {
    move |seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        let trace = {
            let _span = ddn_telemetry::span("log");
            adaptive_trace(n, &mut rng)
        };
        let target = LookupPolicy::constant(adaptive_space(), 0);
        // The bandit abandons d0, so truth is the d0 column: 2 + E[g].
        let truth = 2.5;
        let _span = ddn_telemetry::span("estimate");
        let ips = Ips::new().estimate(&trace, &target).expect("IPS").value;
        let snips = SelfNormalizedIps::new()
            .estimate(&trace, &target)
            .expect("SNIPS")
            .value;
        let adaptive_ips = AdaptiveIps::new(AdaptiveWeights::Stabilized)
            .estimate(&trace, &target)
            .expect("AdaptiveIPS")
            .value;
        let model = TabularMeanModel::fit_trace(&trace, 1.0);
        let adaptive_dr = AdaptiveDr::new(model, AdaptiveWeights::Stabilized)
            .estimate(&trace, &target)
            .expect("AdaptiveDR")
            .value;
        (
            truth,
            vec![
                ("IPS".to_string(), ips),
                ("SNIPS".to_string(), snips),
                ("AdaptiveIPS".to_string(), adaptive_ips),
                ("AdaptiveDR".to_string(), adaptive_dr),
            ],
        )
    }
}

// ---- scenario 2: composite action space ---------------------------------

/// 12 CDNs × 10 bitrates × 9 relays = 1080 composite arms.
const CDNS: usize = 12;
const BITRATES: usize = 10;
const RELAYS: usize = 9;
/// Arms per CDN group.
const GROUP: usize = BITRATES * RELAYS;
/// Base record count for the composite sweep at scale 1.
const COMPOSITE_BASE: usize = 1500;

fn composite_space() -> DecisionSpace {
    DecisionSpace::new(
        (0..CDNS * GROUP)
            .map(|a| format!("c{}_b{}_r{}", a / GROUP, (a % GROUP) / RELAYS, a % RELAYS))
            .collect(),
    )
}

/// The CDN embedding: every arm's group is its CDN.
fn cdn_embedding() -> ActionEmbedding {
    ActionEmbedding::from_groups((0..CDNS * GROUP).map(|a| a / GROUP).collect())
}

/// Reward depends on the arm only through its CDN — the structural fact
/// marginalization exploits.
fn cdn_quality(arm: usize) -> f64 {
    1.0 + 0.25 * (arm / GROUP) as f64
}

fn composite_work(n: usize) -> impl Fn(u64) -> (f64, Vec<(String, f64)>) + Sync {
    move |seed| {
        let s = ContextSchema::builder().categorical("g", 2).build();
        let space = composite_space();
        let arms = space.len();
        let mut rng = Xoshiro256::seed_from(seed);
        let trace = {
            let _span = ddn_telemetry::span("log");
            let recs = (0..n)
                .map(|_| {
                    let g = rng.index(2) as u32;
                    let c = Context::build(&s).set_cat("g", g).finish();
                    let a = rng.index(arms);
                    let reward = cdn_quality(a) + 0.5 * g as f64 + rng.range_f64(-0.25, 0.25);
                    TraceRecord::new(c, Decision::from_index(a), reward)
                        .with_propensity(1.0 / arms as f64)
                })
                .collect();
            Trace::from_records(s, space.clone(), recs).expect("composite trace is well-formed")
        };
        // Target: one specific arm of the best CDN (a tuned config rolled
        // out deterministically). Truth = that CDN's quality + 0.5·E[g].
        let best_arm = (CDNS - 1) * GROUP;
        let target = LookupPolicy::constant(space.clone(), best_arm);
        let truth = cdn_quality(best_arm) + 0.25;
        let _span = ddn_telemetry::span("estimate");
        // A deliberately coarse model — the logged grand mean — so DR's
        // accuracy rests on its weights, as it would with a weak model.
        let grand_mean = trace.records().iter().map(|r| r.reward).sum::<f64>() / trace.len() as f64;
        let model = ConstantModel::new(grand_mean);
        let ips = Ips::new().estimate(&trace, &target).expect("IPS").value;
        let dr = DoublyRobust::new(model.clone())
            .estimate(&trace, &target)
            .expect("DR")
            .value;
        let mdr = MarginalizedDr::new(
            model,
            cdn_embedding(),
            Box::new(UniformRandomPolicy::new(space.clone())),
        )
        .estimate(&trace, &target)
        .expect("MarginalizedDR")
        .value;
        (
            truth,
            vec![
                ("IPS".to_string(), ips),
                ("DR".to_string(), dr),
                ("MarginalizedDR".to_string(), mdr),
            ],
        )
    }
}

// ---- scenario 3: multi-step ABR sessions --------------------------------

/// Chunks per session (the SeqDR horizon).
const SEQ_CHUNKS: usize = 4;
/// Sessions per trace at scale 1.
const SEQ_BASE_SESSIONS: usize = 60;
/// Exploration rate of the logging controller (ε-exploring MPC).
const SEQ_LOG_EPSILON: f64 = 0.4;
/// Exploration rate of the evaluated controller (ε-exploring
/// buffer-based) — different enough from the logger that per-chunk
/// ratios swing by 10×.
const SEQ_TARGET_EPSILON: f64 = 0.1;
/// Monte-Carlo rollouts for the per-seed ground truth.
const SEQ_TRUTH_ROLLOUTS: usize = 512;

/// QoE with a stiff smoothness penalty: per-chunk reward then depends
/// hard on `prev_level` — *state* the logger steered, which is exactly
/// what single-step reweighting cannot correct.
fn seq_qoe() -> QoeModel {
    QoeModel {
        smoothness_penalty: 4.0,
        ..QoeModel::default()
    }
}

fn seq_session() -> Session {
    Session::new(
        BitrateLadder::five_level(),
        SessionConfig {
            chunks: SEQ_CHUNKS,
            ..SessionConfig::default()
        },
        seq_qoe(),
        Bandwidth::Constant(SEQ_BANDWIDTH),
        ThroughputDiscount::paper_default(),
    )
}

/// The evaluated controller: lightly-exploring buffer-based ABR, exposed
/// as a stationary [`Policy`] over ABR contexts so the generic estimators
/// can score it. (The *logger* is the aggressive ε-exploring MPC — the
/// realistic direction: a noisy A/B rollout logged the data, and we ask
/// what the safer controller would have scored.)
struct SeqTargetPolicy {
    inner: ExploringAbr<BufferBased>,
    ladder: BitrateLadder,
    space: DecisionSpace,
}

impl SeqTargetPolicy {
    fn new() -> Self {
        let ladder = BitrateLadder::five_level();
        let space = abr_space(&ladder);
        Self {
            inner: ExploringAbr::new(BufferBased::default(), SEQ_TARGET_EPSILON),
            ladder,
            space,
        }
    }
}

impl Policy for SeqTargetPolicy {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn prob(&self, ctx: &Context, d: Decision) -> f64 {
        self.inner.prob(&decode_state(ctx), &self.ladder, d.index())
    }
}

/// The scenario's constant available bandwidth (kbps): chunk dynamics are
/// then a deterministic function of (buffer, level), which lets both
/// reward models below be exact at their own level of ambition.
const SEQ_BANDWIDTH: f64 = 2000.0;

/// One deterministic chunk step: (rebuffer seconds, next buffer).
fn seq_step(ladder: &BitrateLadder, disc: &ThroughputDiscount, buffer: f64, level: usize) -> (f64, f64) {
    let observed = disc.observed(SEQ_BANDWIDTH, level, ladder.levels());
    let download = ladder.chunk_kbits(level) / observed;
    let rebuffer = (download - buffer).max(0.0);
    let cap = SessionConfig::default().buffer_max_secs;
    let next = ((buffer - download).max(0.0) + ladder.chunk_secs()).min(cap);
    (rebuffer, next)
}

/// StepDR's model: the *exact* one-step chunk QoE (utility, switch
/// penalty, rebuffer) read off the encoded state. With a perfect one-step
/// model, StepDR's remaining error is pure state-distribution bias — its
/// direct term averages over the logger's buffer/prev-level states.
fn seq_model() -> FnModel<impl Fn(&Context, Decision) -> f64> {
    let ladder = BitrateLadder::five_level();
    let qoe = seq_qoe();
    let disc = ThroughputDiscount::paper_default();
    FnModel::new(move |ctx: &Context, d: Decision| {
        let st = decode_state(ctx);
        let (rebuffer, _) = seq_step(&ladder, &disc, st.buffer_secs, d.index());
        qoe.chunk_qoe(&ladder, d.index(), st.prev_level, rebuffer)
    })
}

/// Exact expected remaining session QoE of the exploring buffer-based
/// target from `(index, buffer, prev)`: a full expectation over the
/// target's per-step action distribution (≤ `levels^(H−1−index)` paths;
/// H = 4 keeps this tiny). The buffer-based policy prices actions from
/// buffer state alone, so each node costs O(levels).
fn seq_future_value(
    target: &ExploringAbr<BufferBased>,
    ladder: &BitrateLadder,
    qoe: &QoeModel,
    disc: &ThroughputDiscount,
    index: usize,
    buffer: f64,
    prev: Option<usize>,
) -> f64 {
    if index >= SEQ_CHUNKS {
        return 0.0;
    }
    let state = ddn_abr::session::ChunkState {
        index,
        buffer_secs: buffer,
        prev_level: prev,
        prev_observed_kbps: prev.map(|p| disc.observed(SEQ_BANDWIDTH, p, ladder.levels())),
    };
    let mut v = 0.0;
    for level in 0..ladder.levels() {
        let p = target.prob(&state, ladder, level);
        if p == 0.0 {
            continue;
        }
        let (rebuffer, next) = seq_step(ladder, disc, buffer, level);
        v += p
            * (qoe.chunk_qoe(ladder, level, prev, rebuffer)
                + seq_future_value(target, ladder, qoe, disc, index + 1, next, Some(level)));
    }
    v
}

/// SeqDR's model: a Q-style estimate — the exact one-step QoE plus the
/// exact expected value of the target's remaining session. With
/// Q̂ = r + E[V_next], the per-decision corrections `r − Q̂ + V_next`
/// stay centered near zero, which is what tames the weight-product
/// variance that sinks trajectory IPS.
fn seq_q_model() -> FnModel<impl Fn(&Context, Decision) -> f64> {
    let ladder = BitrateLadder::five_level();
    let qoe = seq_qoe();
    let disc = ThroughputDiscount::paper_default();
    let target = ExploringAbr::new(BufferBased::default(), SEQ_TARGET_EPSILON);
    FnModel::new(move |ctx: &Context, d: Decision| {
        let st = decode_state(ctx);
        let (rebuffer, next) = seq_step(&ladder, &disc, st.buffer_secs, d.index());
        qoe.chunk_qoe(&ladder, d.index(), st.prev_level, rebuffer)
            + seq_future_value(&target, &ladder, &qoe, &disc, st.index + 1, next, Some(d.index()))
    })
}

fn seq_work(sessions: usize) -> impl Fn(u64) -> (f64, Vec<(String, f64)>) + Sync {
    move |seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        let logger = ExploringAbr::new(Mpc::new(5, seq_qoe()), SEQ_LOG_EPSILON);
        let trace = {
            let _span = ddn_telemetry::span("log");
            let schema = abr_schema();
            let ladder = BitrateLadder::five_level();
            let space = abr_space(&ladder);
            let mut recs = Vec::with_capacity(sessions * SEQ_CHUNKS);
            for _ in 0..sessions {
                let st = log_session(seq_session(), &logger, &mut rng);
                recs.extend_from_slice(st.trace.records());
            }
            Trace::from_records(schema, space, recs).expect("ABR sessions emit valid traces")
        };
        let target = SeqTargetPolicy::new();
        // Ground truth: Monte-Carlo rollouts of the exploring target —
        // expected *total* session QoE, the sequential estimand.
        let truth = {
            let ladder = BitrateLadder::five_level();
            let mut total = 0.0;
            for _ in 0..SEQ_TRUTH_ROLLOUTS {
                let mut sess = seq_session();
                while !sess.finished() {
                    let state = sess.state();
                    let (level, _) = target.inner.sample(&state, &ladder, &mut rng);
                    total += sess.download(level, &mut rng).qoe;
                }
            }
            total / SEQ_TRUTH_ROLLOUTS as f64
        };
        let _span = ddn_telemetry::span("estimate");
        // Incumbent 1: trajectory-level IPS — whole-session product weight
        // times the session's summed QoE.
        let traj_ips = {
            let recs = trace.records();
            let mut vals = Vec::with_capacity(sessions);
            for chunk in recs.chunks(SEQ_CHUNKS) {
                let mut prod = 1.0;
                let mut total = 0.0;
                for rec in chunk {
                    let p_old = rec.propensity.expect("logged with propensities");
                    prod *= target.prob(&rec.context, rec.decision) / p_old;
                    total += rec.reward;
                }
                vals.push(prod * total);
            }
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        // Incumbent 2: single-step DR scaled to the session total. Both DR
        // variants get the same strong model; StepDR stays biased anyway
        // because its direct term averages over the *logger's* states.
        let step_dr = DoublyRobust::new(seq_model())
            .estimate(&trace, &target)
            .expect("DR")
            .value
            * SEQ_CHUNKS as f64;
        let seq_dr = SeqDr::new(seq_q_model(), SEQ_CHUNKS)
            .estimate(&trace, &target)
            .expect("SeqDR")
            .value;
        (
            truth,
            vec![
                ("TrajIPS".to_string(), traj_ips),
                ("StepDR".to_string(), step_dr),
                ("SeqDR".to_string(), seq_dr),
            ],
        )
    }
}

// ---- the panel ----------------------------------------------------------

fn scenario_sizes(base: usize, scales: &[f64]) -> Vec<usize> {
    scales
        .iter()
        .map(|&s| ((base as f64 * s).round() as usize).max(1))
        .collect()
}

/// Runs one (scenario, size) cell, merging its telemetry into `snap`
/// when the panel is instrumented. The collector only observes, so the
/// instrumented numbers are bit-identical to the plain ones.
fn run_cell<F>(runs: usize, seed: u64, snap: &mut Option<TelemetrySnapshot>, work: F) -> ErrorTable
where
    F: Fn(u64) -> (f64, Vec<(String, f64)>) + Sync,
{
    let runner = ExperimentRunner::new(runs, seed);
    let threads = ExperimentRunner::default_threads();
    match snap {
        Some(acc) => {
            let (table, cell_snap) = runner.run_parallel_instrumented(threads, work);
            acc.merge(&cell_snap);
            table
        }
        None => runner.run_parallel(threads, work),
    }
}

fn build(cfg: &MenuConfig, snap: &mut Option<TelemetrySnapshot>) -> Vec<MenuScenario> {
    assert!(!cfg.scales.is_empty(), "need at least one scale");
    assert!(cfg.runs > 0, "need at least one run");
    let cell_seed = |scenario: u64, size_idx: usize| {
        cfg.base_seed + scenario * 10_000 + size_idx as u64 * 1_000
    };
    let adaptive = MenuScenario {
        name: "adaptive",
        challenger: "AdaptiveDR",
        incumbents: vec!["IPS", "SNIPS"],
        rows: scenario_sizes(ADAPTIVE_BASE, &cfg.scales)
            .into_iter()
            .enumerate()
            .map(|(i, n)| MenuRow {
                trace_len: n,
                table: run_cell(cfg.runs, cell_seed(0, i), snap, adaptive_work(n)),
            })
            .collect(),
    };
    let marginalized = MenuScenario {
        name: "marginalized",
        challenger: "MarginalizedDR",
        incumbents: vec!["IPS", "DR"],
        rows: scenario_sizes(COMPOSITE_BASE, &cfg.scales)
            .into_iter()
            .enumerate()
            .map(|(i, n)| MenuRow {
                trace_len: n,
                table: run_cell(cfg.runs, cell_seed(1, i), snap, composite_work(n)),
            })
            .collect(),
    };
    let sequential = MenuScenario {
        name: "sequential",
        challenger: "SeqDR",
        incumbents: vec!["TrajIPS", "StepDR"],
        rows: scenario_sizes(SEQ_BASE_SESSIONS, &cfg.scales)
            .into_iter()
            .enumerate()
            .map(|(i, sessions)| MenuRow {
                trace_len: sessions * SEQ_CHUNKS,
                table: run_cell(cfg.runs, cell_seed(2, i), snap, seq_work(sessions)),
            })
            .collect(),
    };
    vec![adaptive, marginalized, sequential]
}

/// Runs the menu panel: three breaking scenarios × the configured trace
/// sizes, each cell a seeded [`ErrorTable`].
pub fn ablation_menu(cfg: &MenuConfig) -> Vec<MenuScenario> {
    build(cfg, &mut None)
}

/// Instrumented variant: same numbers (bit-identical — the collector only
/// observes), plus the merged telemetry snapshot covering every cell; the
/// new estimators' health sources (`AdaptiveIPS/hsum`,
/// `MarginalizedDR/embedding_groups`, `SeqDR/trajectories`) all report.
pub fn ablation_menu_instrumented(cfg: &MenuConfig) -> (Vec<MenuScenario>, TelemetrySnapshot) {
    let mut snap = Some(TelemetrySnapshot::from_runs(&[]));
    let scenarios = build(cfg, &mut snap);
    let mut snap = snap.expect("instrumented build fills the snapshot");
    snap.set_threads(ExperimentRunner::default_threads());
    (scenarios, snap)
}

/// Renders the sweep as aligned text, one block per scenario.
pub fn render(scenarios: &[MenuScenario]) -> String {
    let mut out = String::from("Ablation M — estimator menu, error vs trace size\n");
    for sc in scenarios {
        out.push_str(&format!(
            "\nscenario {} ({} vs {})\n",
            sc.name,
            sc.challenger,
            sc.incumbents.join(", ")
        ));
        let names: Vec<&str> = sc
            .rows
            .first()
            .map(|r| r.table.rows().iter().map(|(n, _)| n.as_str()).collect())
            .unwrap_or_default();
        out.push_str(&format!("{:>10}", "records"));
        for n in &names {
            out.push_str(&format!("  {n:>14}"));
        }
        out.push('\n');
        for row in &sc.rows {
            out.push_str(&format!("{:>10}", row.trace_len));
            for n in &names {
                let r = row.table.get(n).expect("consistent names across rows");
                out.push_str(&format!("  {:>14.4}", r.mean));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "challenger {} at n={}: {}\n",
            sc.challenger,
            sc.rows.last().map(|r| r.trace_len).unwrap_or(0),
            if sc.challenger_wins() {
                "beats every incumbent"
            } else {
                "does NOT beat every incumbent"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MenuConfig {
        MenuConfig {
            runs: 6,
            scales: vec![0.5, 1.0],
            ..MenuConfig::default()
        }
    }

    #[test]
    fn every_challenger_beats_its_incumbents() {
        let scenarios = ablation_menu(&small_cfg());
        assert_eq!(scenarios.len(), 3);
        for sc in &scenarios {
            let last = sc.rows.last().unwrap();
            let ch = last.table.get(sc.challenger).unwrap().mean;
            for inc in &sc.incumbents {
                let inc_err = last.table.get(inc).unwrap().mean;
                assert!(
                    ch < inc_err,
                    "{}: challenger {} mean err {ch} must beat {inc} {inc_err}",
                    sc.name,
                    sc.challenger
                );
            }
            assert!(sc.challenger_wins());
        }
    }

    #[test]
    fn instrumented_reports_the_new_health_sources() {
        let cfg = MenuConfig {
            runs: 2,
            scales: vec![0.5],
            ..MenuConfig::default()
        };
        let (scenarios, snap) = ablation_menu_instrumented(&cfg);
        assert_eq!(scenarios.len(), 3);
        for (source, metric) in [
            ("AdaptiveIPS", "hsum"),
            ("MarginalizedDR", "embedding_groups"),
            ("SeqDR", "trajectories"),
            ("IPS", "ess"),
        ] {
            assert!(
                snap.health_metric(source, metric).is_some(),
                "{source}/{metric} missing from the menu panel telemetry"
            );
        }
    }

    #[test]
    #[ignore = "diagnostic: prints the full panel for tuning"]
    fn print_full_panel() {
        println!("{}", render(&ablation_menu(&small_cfg())));
    }

    #[test]
    #[ignore = "diagnostic: per-seed sequential values for tuning"]
    fn print_seq_runs() {
        let work = seq_work(SEQ_BASE_SESSIONS);
        for seed in 1..=8u64 {
            let (truth, rows) = work(seed);
            let line: Vec<String> =
                rows.iter().map(|(n, v)| format!("{n}={v:.3}")).collect();
            println!("seed {seed}: truth={truth:.3} {}", line.join(" "));
        }
    }

    #[test]
    fn render_lists_every_scenario_and_estimator() {
        let cfg = MenuConfig {
            runs: 2,
            scales: vec![0.5],
            ..MenuConfig::default()
        };
        let text = render(&ablation_menu(&cfg));
        for needle in [
            "adaptive",
            "marginalized",
            "sequential",
            "AdaptiveIPS",
            "MarginalizedDR",
            "SeqDR",
            "TrajIPS",
        ] {
            assert!(text.contains(needle), "render missing {needle}:\n{text}");
        }
    }
}
