//! Ablation I — isotonic calibration of a misspecified Direct Method.
//!
//! §2.2.1's model-bias pitfall often has a specific shape: the model gets
//! the *ordering* of rewards right but the *scale* wrong (FastMPC's
//! pessimistic throughput assumption shifts every QoE down; a stale
//! quality model under-rates a CDN uniformly). Isotonic calibration
//! (`ddn_models::CalibratedModel`) learns the best monotone map from
//! predictions to observed rewards on the logged pairs — a propensity-free
//! fix. This ablation measures how much it buys DM and DR in the CFA world
//! with a deliberately scale-distorted model, as a function of distortion.

use ddn_cdn::cfa::{CfaConfig, CfaWorld};
use ddn_estimators::{DirectMethod, DoublyRobust, Estimator};
use ddn_models::{CalibratedModel, FnModel};
use ddn_policy::UniformRandomPolicy;
use ddn_stats::rng::Xoshiro256;
use ddn_stats::summary::ErrorReport;
use ddn_trace::{Context, Decision};

/// One row of the distortion sweep.
#[derive(Debug, Clone)]
pub struct CalibrationRow {
    /// The scale distortion applied to the (otherwise order-correct) model:
    /// predictions are `distortion·truth + shift`.
    pub scale: f64,
    /// Raw DM error.
    pub dm: ErrorReport,
    /// Calibrated DM error.
    pub dm_calibrated: ErrorReport,
    /// Raw DR error.
    pub dr: ErrorReport,
    /// Calibrated DR error.
    pub dr_calibrated: ErrorReport,
}

/// Runs the calibration sweep over model scale distortions.
///
/// # Panics
/// Panics if `scales` is empty or `runs == 0`.
pub fn ablation_calibration(scales: &[f64], runs: usize, base_seed: u64) -> Vec<CalibrationRow> {
    assert!(!scales.is_empty(), "need at least one scale");
    assert!(runs > 0, "need at least one run");
    let world = CfaWorld::new(
        CfaConfig {
            cities: 4,
            devices: 2,
            connections: 2,
            noise_std: 0.25,
            ..Default::default()
        },
        6161,
    );
    let old = UniformRandomPolicy::new(world.space().clone());
    let newp = world.greedy_policy();

    scales
        .iter()
        .map(|&scale| {
            let mut dm_e = Vec::with_capacity(runs);
            let mut dmc_e = Vec::with_capacity(runs);
            let mut dr_e = Vec::with_capacity(runs);
            let mut drc_e = Vec::with_capacity(runs);
            for i in 0..runs {
                let seed = base_seed + i as u64;
                let mut rng = Xoshiro256::seed_from(seed);
                let clients = world.sample_clients(1_000, &mut rng);
                let truth = world.true_value(&clients, &newp);
                let trace = world.log_trace(&clients, &old, seed ^ 0xF1F1);

                // Order-correct, scale-distorted model of the true surface.
                let w2 = world.clone();
                let distorted = FnModel::new(move |c: &Context, d: Decision| {
                    scale * w2.mean_quality(c, d) - 2.0
                });
                let calibrated = CalibratedModel::fit(
                    {
                        let w3 = world.clone();
                        FnModel::new(move |c: &Context, d: Decision| {
                            scale * w3.mean_quality(c, d) - 2.0
                        })
                    },
                    &trace,
                );

                let rel = |v: f64| (truth - v).abs() / truth.abs();
                dm_e.push(rel(DirectMethod::new(&distorted)
                    .estimate(&trace, &newp)
                    .unwrap()
                    .value));
                dmc_e.push(rel(DirectMethod::new(&calibrated)
                    .estimate(&trace, &newp)
                    .unwrap()
                    .value));
                dr_e.push(rel(DoublyRobust::new(&distorted)
                    .estimate(&trace, &newp)
                    .unwrap()
                    .value));
                drc_e.push(rel(DoublyRobust::new(&calibrated)
                    .estimate(&trace, &newp)
                    .unwrap()
                    .value));
            }
            CalibrationRow {
                scale,
                dm: ErrorReport::from_errors(&dm_e),
                dm_calibrated: ErrorReport::from_errors(&dmc_e),
                dr: ErrorReport::from_errors(&dr_e),
                dr_calibrated: ErrorReport::from_errors(&drc_e),
            }
        })
        .collect()
}

/// Renders the sweep as aligned text.
pub fn render(rows: &[CalibrationRow]) -> String {
    let mut out =
        String::from("Ablation I - isotonic calibration of a scale-distorted DM (CFA world)\n");
    out.push_str(&format!(
        "{:>6}  {:>10}  {:>12}  {:>10}  {:>12}\n",
        "scale", "DM err", "DM+cal err", "DR err", "DR+cal err"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>6.2}  {:>10.4}  {:>12.4}  {:>10.4}  {:>12.4}\n",
            r.scale, r.dm.mean, r.dm_calibrated.mean, r.dr.mean, r.dr_calibrated.mean
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_rescues_the_distorted_dm() {
        let rows = ablation_calibration(&[0.3], 8, 980);
        let r = &rows[0];
        assert!(
            r.dm_calibrated.mean < 0.3 * r.dm.mean,
            "calibration should slash the scale-distorted DM error: {} -> {}",
            r.dm.mean,
            r.dm_calibrated.mean
        );
        // DR was already protecting against the distortion (second-order
        // bias); calibration should not hurt it.
        assert!(
            r.dr_calibrated.mean <= r.dr.mean * 1.5,
            "calibrated DR {} should stay comparable to DR {}",
            r.dr_calibrated.mean,
            r.dr.mean
        );
    }

    #[test]
    fn undistorted_model_needs_no_rescue() {
        let rows = ablation_calibration(&[1.0], 6, 981);
        let r = &rows[0];
        // With scale 1 the only error is the constant shift −2, which DR
        // absorbs and calibration largely fixes (the isotonic step
        // function clamps at the prediction range's edge, so a small
        // residual remains on the greedy policy's top cells).
        assert!(r.dm_calibrated.mean < 0.08, "{}", r.dm_calibrated.mean);
        assert!(r.dr.mean < 0.08, "{}", r.dr.mean);
    }
}
