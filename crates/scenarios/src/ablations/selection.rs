//! Ablation H — policy selection accuracy.
//!
//! The paper's Figure 1 workflow exists to answer one question: **"Which
//! policy is the best?"** Estimation error is only a proxy; what decides
//! deployments is whether the evaluator *ranks the candidates correctly*.
//! This ablation measures exactly that: a slate of candidate policies
//! with a known true ranking is scored by each estimator across seeded
//! traces, and we record how often each estimator picks the true winner
//! and how much value a deployment following its choice would forfeit
//! (the regret).
//!
//! The slate is adversarially close: the true best (per-client greedy), an
//! ε-diluted version of it (clearly but not hugely worse), and a decent
//! fixed assignment. Small traces separate the estimators; large traces
//! let everyone win — so the sweep is over trace size.

use ddn_cdn::cfa::{CfaConfig, CfaWorld};
use ddn_estimators::{DirectMethod, DoublyRobust, Estimator, Ips, MatchingEstimator};
use ddn_models::{KnnConfig, KnnRegressor};
use ddn_policy::{EpsilonSmoothedPolicy, LookupPolicy, Policy, UniformRandomPolicy};
use ddn_stats::rng::Xoshiro256;

/// Per-estimator selection quality at one trace size.
#[derive(Debug, Clone)]
pub struct SelectionRow {
    /// Records per trace.
    pub trace_len: usize,
    /// (estimator name, fraction of runs picking the true best, mean
    /// regret of the picked policy in true-value units).
    pub per_estimator: Vec<(String, f64, f64)>,
}

/// Runs the selection sweep.
///
/// # Panics
/// Panics if `trace_sizes` is empty or `runs == 0`.
pub fn ablation_selection(trace_sizes: &[usize], runs: usize, base_seed: u64) -> Vec<SelectionRow> {
    assert!(!trace_sizes.is_empty(), "need at least one trace size");
    assert!(runs > 0, "need at least one run");
    let world = CfaWorld::new(
        CfaConfig {
            cities: 4,
            devices: 2,
            connections: 2,
            noise_std: 0.4,
            ..Default::default()
        },
        5252,
    );
    let old = UniformRandomPolicy::new(world.space().clone());

    // The slate. True ranking (verified below): greedy > diluted > fixed.
    let greedy = world.greedy_policy();
    let diluted = EpsilonSmoothedPolicy::new(Box::new(world.greedy_policy()), 0.2);
    let fixed = LookupPolicy::constant(world.space().clone(), best_fixed(&world));
    let candidates: Vec<(&str, &dyn Policy)> = vec![
        ("greedy", &greedy),
        ("diluted", &diluted),
        ("fixed", &fixed),
    ];

    trace_sizes
        .iter()
        .map(|&n| {
            let mut wins = [0usize; 4];
            let mut regret = [0.0f64; 4];
            for i in 0..runs {
                let seed = base_seed + i as u64;
                let mut rng = Xoshiro256::seed_from(seed);
                let clients = world.sample_clients(n, &mut rng);
                let trace = world.log_trace(&clients, &old, seed ^ 0xC0DE);

                // True values on THIS client sample (the estimand).
                let truths: Vec<f64> = candidates
                    .iter()
                    .map(|(_, p)| world.true_value(&clients, *p))
                    .collect();
                let best_truth = truths.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

                let knn = KnnRegressor::fit(&trace, KnnConfig::default());
                type Scorer<'a> = Box<dyn Fn(&dyn Policy) -> Option<f64> + 'a>;
                let estimators: Vec<(&str, Scorer)> = vec![
                    (
                        "DM",
                        Box::new(|p: &dyn Policy| {
                            DirectMethod::new(&knn)
                                .estimate(&trace, p)
                                .ok()
                                .map(|e| e.value)
                        }),
                    ),
                    (
                        "IPS",
                        Box::new(|p: &dyn Policy| {
                            Ips::new().estimate(&trace, p).ok().map(|e| e.value)
                        }),
                    ),
                    (
                        "DR",
                        Box::new(|p: &dyn Policy| {
                            DoublyRobust::new(&knn)
                                .estimate(&trace, p)
                                .ok()
                                .map(|e| e.value)
                        }),
                    ),
                    (
                        "CFA",
                        Box::new(|p: &dyn Policy| {
                            MatchingEstimator::new()
                                .estimate(&trace, p)
                                .ok()
                                .map(|e| e.value)
                        }),
                    ),
                ];
                for (j, (_, eval)) in estimators.iter().enumerate() {
                    let scores: Vec<Option<f64>> =
                        candidates.iter().map(|(_, p)| eval(*p)).collect();
                    let picked = scores
                        .iter()
                        .enumerate()
                        .filter_map(|(k, s)| s.map(|v| (k, v)))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite estimate"))
                        .map(|(k, _)| k);
                    if let Some(k) = picked {
                        if (truths[k] - best_truth).abs() < 1e-12 {
                            wins[j] += 1;
                        }
                        regret[j] += best_truth - truths[k];
                    }
                }
            }
            SelectionRow {
                trace_len: n,
                per_estimator: ["DM", "IPS", "DR", "CFA"]
                    .iter()
                    .enumerate()
                    .map(|(j, name)| {
                        (
                            name.to_string(),
                            wins[j] as f64 / runs as f64,
                            regret[j] / runs as f64,
                        )
                    })
                    .collect(),
            }
        })
        .collect()
}

/// The single fixed decision with the best population-average quality.
fn best_fixed(world: &CfaWorld) -> usize {
    let mut rng = Xoshiro256::seed_from(999);
    let clients = world.sample_clients(4_000, &mut rng);
    (0..world.space().len())
        .max_by(|&a, &b| {
            let va = world.true_value(&clients, &LookupPolicy::constant(world.space().clone(), a));
            let vb = world.true_value(&clients, &LookupPolicy::constant(world.space().clone(), b));
            va.partial_cmp(&vb).expect("finite values")
        })
        .expect("non-empty space")
}

/// Renders the sweep as aligned text.
pub fn render(rows: &[SelectionRow]) -> String {
    let mut out =
        String::from("Ablation H - policy selection accuracy (CFA world, 3-candidate slate)\n");
    out.push_str(&format!(
        "{:>8}  {:>16}  {:>16}  {:>16}  {:>16}\n",
        "records", "DM acc/regret", "IPS acc/regret", "DR acc/regret", "CFA acc/regret"
    ));
    for r in rows {
        out.push_str(&format!("{:>8}", r.trace_len));
        for (_, acc, reg) in &r.per_estimator {
            out.push_str(&format!("  {:>8.2}/{:>7.4}", acc, reg));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slate_ranking_is_as_designed() {
        let world = CfaWorld::new(
            CfaConfig {
                cities: 4,
                devices: 2,
                connections: 2,
                noise_std: 0.4,
                ..Default::default()
            },
            5252,
        );
        let mut rng = Xoshiro256::seed_from(1);
        let clients = world.sample_clients(3_000, &mut rng);
        let greedy = world.greedy_policy();
        let diluted = EpsilonSmoothedPolicy::new(Box::new(world.greedy_policy()), 0.2);
        let fixed = LookupPolicy::constant(world.space().clone(), best_fixed(&world));
        let vg = world.true_value(&clients, &greedy);
        let vd = world.true_value(&clients, &diluted);
        let vf = world.true_value(&clients, &fixed);
        assert!(
            vg > vd && vd > vf,
            "expected greedy > diluted > fixed, got {vg} {vd} {vf}"
        );
    }

    #[test]
    fn everyone_picks_right_with_enough_data_and_dr_competes_when_scarce() {
        let rows = ablation_selection(&[150, 2_000], 12, 970);
        let small = &rows[0];
        let large = &rows[1];
        let acc = |row: &SelectionRow, name: &str| {
            row.per_estimator
                .iter()
                .find(|(n, _, _)| n == name)
                .unwrap()
                .1
        };
        // Abundant data: DR picks the winner essentially always.
        assert!(
            acc(large, "DR") >= 0.9,
            "DR at n=2000: {}",
            acc(large, "DR")
        );
        // Scarce data: DR at least matches the matching estimator.
        assert!(
            acc(small, "DR") >= acc(small, "CFA"),
            "DR {} vs CFA {} at n=150",
            acc(small, "DR"),
            acc(small, "CFA")
        );
    }
}
