//! Ablation E — system-state mismatch (§4.1 "System state of the world",
//! §4.3 "Modeling world state").
//!
//! "We want to evaluate the performance of a server selection logic during
//! peak hours, but the trace we have was collected during early morning
//! hours. Thus, the DR estimator would produce biased results."
//!
//! Setup: a serving world whose arrival rate is low for the first half of
//! the horizon (morning) and high for the second (peak). A logging policy
//! runs across the whole day; we then evaluate a new policy **for peak
//! (high-load) conditions** — ground truth simulates it under the peak
//! rate and reads off its high-load records. Three evaluators:
//!
//! - **pooled DR** — ignores state, pools morning and peak records and is
//!   dragged toward the (faster) morning regime;
//! - **match-only DR** — only reuses records tagged high-load;
//! - **transition DR** — additionally transports morning records into the
//!   peak state with a multiplicative factor calibrated from the trace
//!   itself (the paper's "degrade the performance in the trace by 20%"
//!   move, with the 20% *estimated* rather than assumed).

use ddn_estimators::state_aware::MatchOnly;
use ddn_estimators::{DoublyRobust, Estimator, ScaleTransition, StateAwareDr};
use ddn_models::TabularMeanModel;
use ddn_netsim::{RateProfile, ServerSpec, World, WorldConfig};
use ddn_policy::{EpsilonSmoothedPolicy, LookupPolicy, Policy, UniformRandomPolicy};
use ddn_stats::summary::ErrorReport;
use ddn_trace::{StateTag, Trace};

/// Results of the state-mismatch ablation.
#[derive(Debug, Clone)]
pub struct StateResult {
    /// Pooled (state-blind) DR relative error.
    pub pooled_dr: ErrorReport,
    /// Match-only state-aware DR relative error.
    pub match_only_dr: ErrorReport,
    /// Transition-transported state-aware DR relative error.
    pub transition_dr: ErrorReport,
    /// Mean fraction of records tagged high-load across runs.
    pub mean_high_load_fraction: f64,
}

/// Two servers sized so that every policy below keeps both queues stable
/// in both regimes (no runaway overload — that is ablation F's job).
fn servers() -> Vec<ServerSpec> {
    vec![
        ServerSpec {
            name: "fast".into(),
            service_rate: 40.0,
        },
        ServerSpec {
            name: "slow".into(),
            service_rate: 25.0,
        },
    ]
}

fn world_with(arrivals: RateProfile, horizon: f64) -> World {
    World::new(WorldConfig {
        isps: 2,
        servers: servers(),
        rtt: vec![vec![0.02, 0.05], vec![0.05, 0.02]],
        arrivals,
        horizon,
        high_load_backlog: 3,
        overload_backlog: 10,
    })
}

/// Collapses OVERLOAD into HIGH_LOAD so the ablation works with two
/// regimes (the world tags three).
fn to_binary(tag: StateTag) -> StateTag {
    if tag == StateTag::LOW_LOAD {
        StateTag::LOW_LOAD
    } else {
        StateTag::HIGH_LOAD
    }
}

fn binary_tagged(trace: &Trace) -> Trace {
    let records = trace
        .records()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.state = r.state.map(to_binary);
            r
        })
        .collect();
    Trace::from_records(trace.schema().clone(), trace.space().clone(), records)
        .expect("retagging preserves validity")
}

/// Runs the ablation.
///
/// # Panics
/// Panics if `runs == 0`.
pub fn ablation_state(runs: usize, base_seed: u64) -> StateResult {
    assert!(runs > 0, "need at least one run");
    // Morning: 6 req/s for 300 s, then peak: 30 req/s for 300 s.
    let day_world = world_with(
        RateProfile::Piecewise(vec![(300.0, 6.0), (600.0, 30.0)]),
        600.0,
    );
    // The evaluation target: pure peak conditions.
    let peak_world = world_with(RateProfile::Constant(30.0), 300.0);

    // Old policy: mostly the fast server (a sane production default),
    // with enough exploration for propensities. Stable everywhere:
    // peak fast load = 0.85·30 = 25.5 < 40, slow = 4.5 < 25.
    let old = EpsilonSmoothedPolicy::new(
        Box::new(LookupPolicy::constant(day_world.space().clone(), 0)),
        0.3,
    );
    // New policy: spread the load (peak: 15 + 15, both stable).
    let newp = UniformRandomPolicy::new(day_world.space().clone());

    let mut pooled_e = Vec::with_capacity(runs);
    let mut match_e = Vec::with_capacity(runs);
    let mut trans_e = Vec::with_capacity(runs);
    let mut high_frac = 0.0;

    for i in 0..runs {
        let seed = base_seed + i as u64;
        let truth = peak_truth(&peak_world, &newp, seed);
        let out = day_world.run(&old, seed ^ 0x1111);
        let trace = binary_tagged(&out.trace);

        let high = trace
            .records()
            .iter()
            .filter(|r| r.state == Some(StateTag::HIGH_LOAD))
            .count();
        high_frac += high as f64 / trace.len() as f64;

        let model = TabularMeanModel::fit_trace(&trace, 1.0);

        let pooled = DoublyRobust::new(model.clone())
            .estimate(&trace, &newp)
            .unwrap()
            .value;

        let match_only = StateAwareDr::new(model.clone(), MatchOnly, StateTag::HIGH_LOAD)
            .estimate(&trace, &newp)
            .expect("peak records exist")
            .value;

        // Calibrate the transition factor from the logging trace itself
        // (the paper's "degrade by 20%" move with the 20% estimated).
        let transition = ScaleTransition::calibrate(&trace, StateTag::LOW_LOAD)
            .expect("both regimes appear in a full-day trace");
        let transported = StateAwareDr::new(model, transition, StateTag::HIGH_LOAD)
            .estimate(&trace, &newp)
            .unwrap()
            .value;

        pooled_e.push((truth - pooled).abs() / truth.abs());
        match_e.push((truth - match_only).abs() / truth.abs());
        trans_e.push((truth - transported).abs() / truth.abs());
    }

    StateResult {
        pooled_dr: ErrorReport::from_errors(&pooled_e),
        match_only_dr: ErrorReport::from_errors(&match_e),
        transition_dr: ErrorReport::from_errors(&trans_e),
        mean_high_load_fraction: high_frac / runs as f64,
    }
}

/// Ground truth: the new policy's mean reward over high-load moments of
/// pure peak conditions, averaged over a few seeds.
fn peak_truth(peak_world: &World, newp: &dyn Policy, seed: u64) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for k in 0..3u64 {
        let out = peak_world.run(newp, seed.wrapping_add(k).wrapping_mul(2_654_435_761));
        for r in out.trace.records() {
            if to_binary(r.state.expect("world tags states")) == StateTag::HIGH_LOAD {
                total += r.reward;
                n += 1;
            }
        }
    }
    assert!(n > 0, "peak world must produce high-load records");
    total / n as f64
}

/// Renders the result as text.
pub fn render(r: &StateResult) -> String {
    format!(
        "Ablation E - system-state mismatch (morning trace -> peak evaluation)\n\
         {:>16}  {:>10}  {:>10}  {:>10}\n\
         {:>16}  {:>10.4}  {:>10.4}  {:>10.4}\n\
         {:>16}  {:>10.4}  {:>10.4}  {:>10.4}\n\
         {:>16}  {:>10.4}  {:>10.4}  {:>10.4}\n\
         mean high-load fraction of trace: {:.3}\n",
        "evaluator",
        "mean err",
        "min err",
        "max err",
        "pooled DR",
        r.pooled_dr.mean,
        r.pooled_dr.min,
        r.pooled_dr.max,
        "match-only DR",
        r.match_only_dr.mean,
        r.match_only_dr.min,
        r.match_only_dr.max,
        "transition DR",
        r.transition_dr.mean,
        r.transition_dr.min,
        r.transition_dr.max,
        r.mean_high_load_fraction,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_aware_variants_beat_pooled_dr() {
        let r = ablation_state(5, 940);
        assert!(
            r.match_only_dr.mean < r.pooled_dr.mean,
            "match-only {} should beat pooled {}",
            r.match_only_dr.mean,
            r.pooled_dr.mean
        );
        assert!(
            r.transition_dr.mean < r.pooled_dr.mean,
            "transition {} should beat pooled {}",
            r.transition_dr.mean,
            r.pooled_dr.mean
        );
        assert!(r.mean_high_load_fraction > 0.02 && r.mean_high_load_fraction < 0.95);
    }
}
