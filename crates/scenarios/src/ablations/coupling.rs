//! Ablation F — self-induced decision-reward coupling (§4.1 "Hidden
//! decision-reward coupling", §4.3 "Tackling reward-decision coupling").
//!
//! "If we assign clients to a specific server … the performance of future
//! clients using that server instance may be degraded due to increased
//! load."
//!
//! Setup: the logging policy pins traffic to the slow server hard enough
//! to push it past its service rate, so the queue — and the response
//! times — drift upward over the trace *because of the policy's own past
//! decisions*. The new policy under evaluation spreads the load and would
//! never be in that state. Evaluators:
//!
//! - **naive DR** over the whole drifting trace: the slow-decision
//!   records it re-weights come mostly from the self-degraded regime and
//!   drag the estimate far below reality;
//! - **gated DR** — run the change-point [`CouplingDetector`] on the
//!   chosen-server backlog proxy (the paper's "monitor the load of each
//!   server as a proxy metric of the system states") and estimate only
//!   within the earliest, least-degraded regime.

use ddn_estimators::{CouplingDetector, DoublyRobust, Estimator};
use ddn_models::TabularMeanModel;
use ddn_netsim::{small_world, RateProfile};
use ddn_policy::{EpsilonSmoothedPolicy, LookupPolicy, UniformRandomPolicy};
use ddn_stats::summary::ErrorReport;

/// One row of results.
#[derive(Debug, Clone)]
pub struct CouplingRow {
    /// Naive (whole-trace) DR relative error.
    pub naive_dr: ErrorReport,
    /// Change-point-gated DR relative error.
    pub gated_dr: ErrorReport,
    /// Fraction of runs where the detector flagged a regime change.
    pub detection_rate: f64,
}

/// Runs the ablation.
///
/// # Panics
/// Panics if `runs == 0`.
pub fn ablation_coupling(runs: usize, base_seed: u64) -> CouplingRow {
    assert!(runs > 0, "need at least one run");
    // Arrival rate 18 req/s. The logger sends 90% to the slow server
    // (rate 15): 16.2 > 15 — a genuine self-induced overload whose queue
    // grows throughout the 300 s trace. The new policy spreads uniformly:
    // slow gets 9 < 15, perfectly stable when actually deployed.
    let world = small_world(RateProfile::Constant(18.0), 300.0);
    let old = EpsilonSmoothedPolicy::new(
        Box::new(LookupPolicy::constant(world.space().clone(), 1)),
        0.2,
    );
    let newp = UniformRandomPolicy::new(world.space().clone());
    let detector = CouplingDetector::new(100);

    let mut naive_e = Vec::with_capacity(runs);
    let mut gated_e = Vec::with_capacity(runs);
    let mut detections = 0usize;

    for i in 0..runs {
        let seed = base_seed + i as u64;
        // Ground truth: the new policy deployed on a fresh world (its own
        // load dynamics, no inherited congestion).
        let truth = world.true_value(&newp, seed ^ 0x7777, 3);

        let out = world.run(&old, seed);
        let trace = &out.trace;

        let model_full = TabularMeanModel::fit_trace(trace, 1.0);
        let naive = DoublyRobust::new(model_full)
            .estimate(trace, &newp)
            .unwrap()
            .value;

        let report = detector.analyze(trace, &out.load_proxy);
        let gated = if report.coupled() {
            detections += 1;
            // Use the earliest regime: the least self-degraded, hence the
            // best stand-in for the new policy's own (uncongested) state.
            let sub = detector
                .gate(trace, &report, 0)
                .expect("segment 0 is non-empty");
            let model = TabularMeanModel::fit_trace(&sub, 1.0);
            DoublyRobust::new(model)
                .estimate(&sub, &newp)
                .unwrap()
                .value
        } else {
            naive
        };

        naive_e.push((truth - naive).abs() / truth.abs());
        gated_e.push((truth - gated).abs() / truth.abs());
    }

    CouplingRow {
        naive_dr: ErrorReport::from_errors(&naive_e),
        gated_dr: ErrorReport::from_errors(&gated_e),
        detection_rate: detections as f64 / runs as f64,
    }
}

/// Renders the result as text.
pub fn render(r: &CouplingRow) -> String {
    format!(
        "Ablation F - decision-reward coupling (self-induced overload, change-point gating)\n\
         {:>10}  {:>10}  {:>10}  {:>10}\n\
         {:>10}  {:>10.4}  {:>10.4}  {:>10.4}\n\
         {:>10}  {:>10.4}  {:>10.4}  {:>10.4}\n\
         detection rate: {:.2}\n",
        "evaluator",
        "mean err",
        "min err",
        "max err",
        "naive DR",
        r.naive_dr.mean,
        r.naive_dr.min,
        r.naive_dr.max,
        "gated DR",
        r.gated_dr.mean,
        r.gated_dr.min,
        r.gated_dr.max,
        r.detection_rate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gating_reduces_error_and_detects_the_shift() {
        let r = ablation_coupling(5, 950);
        assert!(
            r.detection_rate > 0.5,
            "detector missed the drift: {}",
            r.detection_rate
        );
        assert!(
            r.gated_dr.mean < r.naive_dr.mean,
            "gated {} should beat naive {}",
            r.gated_dr.mean,
            r.naive_dr.mean
        );
    }
}
