//! Ablation C — the curse of dimensionality (§2.2.2, §3).
//!
//! "Ideally we need to add in the relevant feature … However, this
//! increases the dimensionality of the feature space, and consequently
//! degrades estimation accuracy … In favorable settings, the
//! 'second-order bias' of DR mitigates the curse of dimensionality to
//! some extent."
//!
//! We add irrelevant categorical features to the CFA world's clients. The
//! k-NN Direct Method degrades (irrelevant dimensions dilute its distance
//! metric); the matching estimator is feature-blind and stays flat; DR
//! tracks well below the DM it is built on.

use ddn_cdn::cfa::{CfaConfig, CfaWorld};
use ddn_estimators::{DirectMethod, DoublyRobust, Estimator, MatchingEstimator};
use ddn_models::{KnnConfig, KnnRegressor};
use ddn_policy::UniformRandomPolicy;
use ddn_stats::rng::Xoshiro256;
use ddn_stats::summary::ErrorReport;

/// One row of the sweep.
#[derive(Debug, Clone)]
pub struct DimensionalityRow {
    /// Number of irrelevant features added.
    pub noise_features: usize,
    /// CFA matching relative error (feature-blind baseline).
    pub cfa: ErrorReport,
    /// k-NN DM relative error.
    pub dm: ErrorReport,
    /// DR relative error.
    pub dr: ErrorReport,
}

/// Runs the dimensionality sweep.
///
/// # Panics
/// Panics if `noise_feature_counts` is empty or `runs == 0`.
pub fn ablation_dimensionality(
    noise_feature_counts: &[usize],
    runs: usize,
    base_seed: u64,
) -> Vec<DimensionalityRow> {
    assert!(!noise_feature_counts.is_empty(), "need at least one count");
    assert!(runs > 0, "need at least one run");
    noise_feature_counts
        .iter()
        .map(|&nf| {
            let world = CfaWorld::new(
                CfaConfig {
                    noise_features: nf,
                    ..Default::default()
                },
                3131,
            );
            let old = UniformRandomPolicy::new(world.space().clone());
            let newp = world.greedy_policy();
            let mut cfa_e = Vec::with_capacity(runs);
            let mut dm_e = Vec::with_capacity(runs);
            let mut dr_e = Vec::with_capacity(runs);
            for i in 0..runs {
                let seed = base_seed + i as u64;
                let mut rng = Xoshiro256::seed_from(seed);
                let clients = world.sample_clients(600, &mut rng);
                let truth = world.true_value(&clients, &newp);
                let trace = world.log_trace(&clients, &old, seed ^ 0x5A5A);
                let knn = KnnRegressor::fit(&trace, KnnConfig::default());
                let cfa = MatchingEstimator::new()
                    .estimate(&trace, &newp)
                    .unwrap()
                    .value;
                let dm = DirectMethod::new(&knn)
                    .estimate(&trace, &newp)
                    .unwrap()
                    .value;
                let dr = DoublyRobust::new(&knn)
                    .estimate(&trace, &newp)
                    .unwrap()
                    .value;
                cfa_e.push((truth - cfa).abs() / truth.abs());
                dm_e.push((truth - dm).abs() / truth.abs());
                dr_e.push((truth - dr).abs() / truth.abs());
            }
            DimensionalityRow {
                noise_features: nf,
                cfa: ErrorReport::from_errors(&cfa_e),
                dm: ErrorReport::from_errors(&dm_e),
                dr: ErrorReport::from_errors(&dr_e),
            }
        })
        .collect()
}

/// Renders the sweep as aligned text.
pub fn render(rows: &[DimensionalityRow]) -> String {
    let mut out =
        String::from("Ablation C - curse of dimensionality (CFA world + irrelevant features)\n");
    out.push_str(&format!(
        "{:>14}  {:>10}  {:>10}  {:>10}\n",
        "noise features", "CFA err", "DM err", "DR err"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>14}  {:>10.4}  {:>10.4}  {:>10.4}\n",
            r.noise_features, r.cfa.mean, r.dm.mean, r.dr.mean
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dm_degrades_with_noise_features_dr_stays_below() {
        let rows = ablation_dimensionality(&[0, 8], 6, 920);
        let clean = &rows[0];
        let noisy = &rows[1];
        assert!(
            noisy.dm.mean > clean.dm.mean,
            "k-NN DM should degrade with irrelevant features: {} -> {}",
            clean.dm.mean,
            noisy.dm.mean
        );
        assert!(
            noisy.dr.mean < noisy.dm.mean,
            "DR ({}) should stay below its DM ({}) in high dimension",
            noisy.dr.mean,
            noisy.dm.mean
        );
    }
}
