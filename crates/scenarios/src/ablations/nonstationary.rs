//! Ablation D — non-stationary (history-based) policies (§4.1/§4.2).
//!
//! "Most networking policies, however, are non-stationary, where a
//! policy's decision on client c_k depends also on the history h_k. …
//! the decision maker adapts its action-selection policy over time based
//! on the observed history of client-action-reward triples."
//!
//! The new policy here is an ε-greedy *learning* controller in the CFA
//! world: it keeps per-decision running mean rewards from its own history
//! and exploits the best-looking decision. We compare two evaluations of
//! it against ground truth (the controller actually run on fresh client
//! streams):
//!
//! - **naive DR** — pretend the policy is stationary by scoring its
//!   cold-start (uniform) snapshot;
//! - **replay DR** — the §4.2 rejection-sampling replay, which advances
//!   the controller's history on exactly the matched tuples.
//!
//! Following Li et al. (paper ref \[27\]), the replayed trajectory is an
//! unbiased run of the controller over a stream whose length is the
//! number of accepted events, so ground truth is the controller's
//! expected mean reward over fresh streams of that length.

use ddn_cdn::cfa::{CfaConfig, CfaWorld};
use ddn_estimators::{DoublyRobust, Estimator, ReplayEvaluator};
use ddn_models::{KnnConfig, KnnRegressor};
use ddn_policy::{HistoryPolicy, UniformRandomPolicy};
use ddn_stats::dist::{Distribution, Normal};
use ddn_stats::rng::Xoshiro256;
use ddn_stats::summary::ErrorReport;
use ddn_trace::{Context, Decision, DecisionSpace};

/// An ε-greedy learning policy: per-decision running mean rewards,
/// exploit-the-best with ε uniform exploration. Genuinely history-based —
/// its distribution changes as it observes outcomes.
pub struct EpsilonGreedyBandit {
    space: DecisionSpace,
    epsilon: f64,
    sums: Vec<f64>,
    counts: Vec<f64>,
}

impl EpsilonGreedyBandit {
    /// Creates a bandit with exploration rate `epsilon`.
    pub fn new(space: DecisionSpace, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        let k = space.len();
        Self {
            space,
            epsilon,
            sums: vec![0.0; k],
            counts: vec![0.0; k],
        }
    }

    fn best(&self) -> Option<usize> {
        // Exploit only once every decision has been tried at least once;
        // before that, stay uniform (optimistic initialization).
        if self.counts.contains(&0.0) {
            return None;
        }
        let mut best = 0;
        let mut best_v = f64::NEG_INFINITY;
        for (i, (&s, &c)) in self.sums.iter().zip(&self.counts).enumerate() {
            let v = s / c;
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        Some(best)
    }
}

impl HistoryPolicy for EpsilonGreedyBandit {
    fn space(&self) -> &DecisionSpace {
        &self.space
    }

    fn reset(&mut self) {
        self.sums.iter_mut().for_each(|s| *s = 0.0);
        self.counts.iter_mut().for_each(|c| *c = 0.0);
    }

    fn probabilities(&self, _ctx: &Context) -> Vec<f64> {
        let k = self.space.len();
        match self.best() {
            None => vec![1.0 / k as f64; k],
            Some(b) => {
                let mut p = vec![self.epsilon / k as f64; k];
                p[b] += 1.0 - self.epsilon;
                p
            }
        }
    }

    fn observe(&mut self, _ctx: &Context, d: Decision, reward: f64) {
        self.sums[d.index()] += reward;
        self.counts[d.index()] += 1.0;
    }
}

/// Results of the non-stationarity ablation.
#[derive(Debug, Clone)]
pub struct NonstationaryResult {
    /// Naive stationary-DR relative error.
    pub naive_dr: ErrorReport,
    /// Replay-DR (§4.2) relative error.
    pub replay_dr: ErrorReport,
    /// Mean replay acceptance rate across runs.
    pub mean_acceptance: f64,
}

/// Ground truth: mean reward of the bandit over a fresh stream of
/// `stream_len` clients, averaged over `reps` noisy simulations.
fn bandit_truth(
    world: &CfaWorld,
    epsilon: f64,
    stream_len: usize,
    reps: usize,
    rng: &mut Xoshiro256,
) -> f64 {
    let noise = Normal::new(0.0, world.config().noise_std);
    let mut total = 0.0;
    for _ in 0..reps {
        let mut bandit = EpsilonGreedyBandit::new(world.space().clone(), epsilon);
        bandit.reset();
        let mut sim_rng = rng.fork();
        let clients = world.sample_clients(stream_len, &mut sim_rng);
        let mut sum = 0.0;
        for ctx in &clients {
            let (d, _) = bandit.sample_with_prob(ctx, &mut sim_rng);
            let r = world.mean_quality(ctx, d) + noise.sample(&mut sim_rng);
            bandit.observe(ctx, d, r);
            sum += r;
        }
        total += sum / stream_len as f64;
    }
    total / reps as f64
}

/// Runs the ablation.
///
/// # Panics
/// Panics if `runs == 0`.
pub fn ablation_nonstationary(runs: usize, base_seed: u64) -> NonstationaryResult {
    assert!(runs > 0, "need at least one run");
    let world = CfaWorld::new(
        CfaConfig {
            cities: 4,
            devices: 2,
            connections: 2,
            noise_std: 0.25,
            ..Default::default()
        },
        4242,
    );
    let epsilon = 0.1;
    let n_clients = 3000;
    let expected_accepted = n_clients / world.space().len();
    let old = UniformRandomPolicy::new(world.space().clone());

    let mut naive_e = Vec::with_capacity(runs);
    let mut replay_e = Vec::with_capacity(runs);
    let mut acceptance = 0.0;

    for i in 0..runs {
        let seed = base_seed + i as u64;
        let mut rng = Xoshiro256::seed_from(seed);

        let truth = bandit_truth(&world, epsilon, expected_accepted, 8, &mut rng);

        let clients = world.sample_clients(n_clients, &mut rng);
        let trace = world.log_trace(&clients, &old, seed ^ 0x9999);
        let knn = KnnRegressor::fit(&trace, KnnConfig::default());

        // Naive: score the cold-start snapshot (uniform) as if stationary.
        let cold = UniformRandomPolicy::new(world.space().clone());
        let naive = DoublyRobust::new(&knn)
            .estimate(&trace, &cold)
            .unwrap()
            .value;

        // Replay the actual learning controller.
        let mut bandit = EpsilonGreedyBandit::new(world.space().clone(), epsilon);
        let mut replay_rng = rng.fork();
        let replay = ReplayEvaluator::new(&knn)
            .evaluate(&trace, &old, &mut bandit, &mut replay_rng)
            .expect("uniform logging guarantees acceptances");
        acceptance += replay.acceptance_rate();

        naive_e.push((truth - naive).abs() / truth.abs());
        replay_e.push((truth - replay.estimate.value).abs() / truth.abs());
    }

    NonstationaryResult {
        naive_dr: ErrorReport::from_errors(&naive_e),
        replay_dr: ErrorReport::from_errors(&replay_e),
        mean_acceptance: acceptance / runs as f64,
    }
}

/// Renders the result as text.
pub fn render(r: &NonstationaryResult) -> String {
    format!(
        "Ablation D - non-stationary policies (learning eps-greedy controller, CFA world)\n\
         {:>12}  {:>10}  {:>10}  {:>10}\n\
         {:>12}  {:>10.4}  {:>10.4}  {:>10.4}\n\
         {:>12}  {:>10.4}  {:>10.4}  {:>10.4}\n\
         mean replay acceptance: {:.3}\n",
        "evaluator",
        "mean err",
        "min err",
        "max err",
        "naive DR",
        r.naive_dr.mean,
        r.naive_dr.min,
        r.naive_dr.max,
        "replay DR",
        r.replay_dr.mean,
        r.replay_dr.min,
        r.replay_dr.max,
        r.mean_acceptance,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_beats_naive_stationary_dr() {
        let r = ablation_nonstationary(6, 930);
        assert!(
            r.replay_dr.mean < r.naive_dr.mean,
            "replay {} should beat naive {}",
            r.replay_dr.mean,
            r.naive_dr.mean
        );
        // Acceptance should sit near 1/|D| for a mostly-exploiting policy
        // replayed against uniform logging.
        assert!(r.mean_acceptance > 0.03 && r.mean_acceptance < 0.3);
    }

    #[test]
    fn bandit_learns_to_exploit() {
        let space = DecisionSpace::of(&["a", "b", "c"]);
        let mut b = EpsilonGreedyBandit::new(space.clone(), 0.1);
        let s = ddn_trace::ContextSchema::builder().numeric("x").build();
        let ctx = Context::build(&s).set_numeric("x", 0.0).finish();
        assert_eq!(b.probabilities(&ctx), vec![1.0 / 3.0; 3]);
        // Feed one observation per decision; decision 1 is the best.
        b.observe(&ctx, Decision::from_index(0), 1.0);
        b.observe(&ctx, Decision::from_index(1), 5.0);
        b.observe(&ctx, Decision::from_index(2), 2.0);
        let p = b.probabilities(&ctx);
        assert!(p[1] > 0.9, "bandit should exploit decision 1: {p:?}");
        b.reset();
        assert_eq!(b.probabilities(&ctx), vec![1.0 / 3.0; 3]);
    }
}
