//! Ablation B — data scarcity (§2.2.1).
//!
//! "The predicted reward may be a poor estimate of the real rewards …
//! because we have insufficient data to estimate a reliable model."
//!
//! We sweep the WISE world's trace size (scaling both the arrow and rare
//! cell counts). The interesting phase transition: below a data threshold
//! BIC cannot justify the full dependency structure, the CBN stays
//! incomplete, and the WISE evaluator is badly biased — while DR is
//! already accurate, because its IPS correction consumes the handful of
//! counterfactual-cell observations directly. With enough data the
//! structure finally resolves and WISE converges to DR. DR never has to
//! wait for the model to become right; that is the operational meaning of
//! double robustness.

use crate::figure7a::{figure7a_with, Figure7aConfig};
use ddn_cdn::wise::WiseConfig;
use ddn_stats::summary::ErrorReport;

/// One row of the sweep.
#[derive(Debug, Clone)]
pub struct TraceSizeRow {
    /// Total records per trace (both ISPs).
    pub trace_len: usize,
    /// WISE (CBN Direct Method) relative error.
    pub wise: ErrorReport,
    /// DR relative error.
    pub dr: ErrorReport,
}

/// Runs the trace-size sweep; `scales` multiplies the paper's 500/5
/// logging pattern.
///
/// # Panics
/// Panics if `scales` is empty or contains a scale that rounds a cell
/// count to zero, or `runs == 0`.
pub fn ablation_trace_size(scales: &[f64], runs: usize, base_seed: u64) -> Vec<TraceSizeRow> {
    assert!(!scales.is_empty(), "need at least one scale");
    assert!(runs > 0, "need at least one run");
    scales
        .iter()
        .map(|&s| {
            let arrow = (500.0 * s).round() as usize;
            let rare = (5.0 * s).round().max(1.0) as usize;
            assert!(arrow > 0, "scale {s} rounds the arrow count to zero");
            let cfg = Figure7aConfig {
                world: WiseConfig {
                    clients_per_arrow: arrow,
                    clients_per_rare_cell: rare,
                    ..Figure7aConfig::default().world
                },
                runs,
                base_seed,
                ..Figure7aConfig::default()
            };
            let table = figure7a_with(&cfg);
            TraceSizeRow {
                trace_len: 2 * (2 * arrow + 2 * rare),
                wise: *table.get("WISE").unwrap(),
                dr: *table.get("DR").unwrap(),
            }
        })
        .collect()
}

/// Renders the sweep as aligned text.
pub fn render(rows: &[TraceSizeRow]) -> String {
    let mut out = String::from("Ablation B - trace size (WISE world, 500/5 pattern scaled)\n");
    out.push_str(&format!(
        "{:>10}  {:>10}  {:>10}\n",
        "records", "WISE err", "DR err"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10}  {:>10.4}  {:>10.4}\n",
            r.trace_len, r.wise.mean, r.dr.mean
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dr_accurate_before_the_cbn_structure_resolves() {
        let rows = ablation_trace_size(&[1.0, 8.0], 6, 910);
        let small = &rows[0];
        let large = &rows[1];
        // In the scarce regime the CBN is incomplete: WISE is biased, DR
        // is already much better.
        assert!(
            small.dr.mean < 0.6 * small.wise.mean,
            "scarce regime: DR {} should be well below WISE {}",
            small.dr.mean,
            small.wise.mean
        );
        // With 8x the data, BIC resolves the structure and WISE's error
        // collapses toward DR's.
        assert!(
            large.wise.mean < 0.5 * small.wise.mean,
            "WISE should improve once the structure resolves: {} -> {}",
            small.wise.mean,
            large.wise.mean
        );
        // DR never does worse than WISE at any scale.
        for row in &rows {
            assert!(
                row.dr.mean <= row.wise.mean * 1.05 + 1e-9,
                "DR {} should never trail WISE {} (n={})",
                row.dr.mean,
                row.wise.mean,
                row.trace_len
            );
        }
    }
}
