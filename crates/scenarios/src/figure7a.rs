//! Figure 7a — trace bias in the WISE world.
//!
//! Protocol (paper §4.2): simulate the Figure 4 world with 500 clients per
//! observed arrow and 5 per remaining (FE, BE) cell; evaluate a new policy
//! that moves 50% of ISP-1 clients to (FE-1, BE-2); compare the WISE-style
//! evaluator (a Direct Method over a structure-learned CBN) against DR
//! (the same CBN plus the IPS correction). Expected: "DR's evaluation
//! error is about 32% lower than WISE" — because "DR avoids the negative
//! impact of the selection bias by using the empirical data of a few ISP-1
//! clients who used FE-1 and BE-2."
//!
//! The mechanism that makes WISE fail here: in the skewed trace, FE and BE
//! are almost perfectly correlated (the arrows are the diagonal cells), so
//! BIC structure learning keeps only one of them — and then predicts the
//! *off-diagonal* counterfactual (FE-1, BE-2) with the wrong conditional
//! mean.

use ddn_cdn::wise::{WiseConfig, WiseWorld};
use ddn_estimators::{
    BatchEstimator, DirectMethod, DoublyRobust, ErrorTable, Estimator, EvalBatch,
    ExperimentRunner, Ips,
};
use ddn_models::cbn::{CausalBayesNet, CbnConfig};
use ddn_telemetry::TelemetrySnapshot;

/// Configuration knobs for the experiment.
#[derive(Debug, Clone)]
pub struct Figure7aConfig {
    /// World parameters.
    pub world: WiseConfig,
    /// Number of seeded runs (paper: 50).
    pub runs: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Share one [`EvalBatch`] of policy/model scores across the
    /// estimator menu (default). Disable (`figure7 --no-batch`) to rerun
    /// the original per-estimator scoring for A/B timing; the estimates
    /// are bit-identical either way.
    pub use_batch: bool,
}

impl Default for Figure7aConfig {
    fn default() -> Self {
        Self {
            // Response-time scale chosen so that, at the paper's 500/5
            // client skew, BIC genuinely prefers the incomplete structure
            // (the WISE pitfall) rather than being forced to: the ~5
            // off-diagonal observations per cell cannot justify the third
            // parent against the noise floor.
            world: WiseConfig {
                long_ms: 900.0,
                short_ms: 300.0,
                noise_std: 350.0,
                clients_per_arrow: 500,
                clients_per_rare_cell: 5,
            },
            runs: 50,
            base_seed: 70_001,
            use_batch: true,
        }
    }
}

/// Builds the shared per-seed work for Figure 7a: the fixed world is
/// constructed once, each seed logs its own skewed trace, fits the CBN,
/// and runs the three estimators. The phase spans are inert unless a
/// telemetry collector is installed.
fn prepared(
    config: &Figure7aConfig,
) -> (
    ExperimentRunner,
    impl Fn(u64) -> (f64, Vec<(String, f64)>) + Sync,
) {
    let world = WiseWorld::new(config.world.clone());
    let population = world.population();
    let old_policy = world.old_policy();
    let new_policy = world.new_policy();
    let truth = world.true_value(&population, &new_policy);

    let cbn_config = CbnConfig {
        decision_axes: Some(vec![2, 2]),
        numeric_bins: 4,
        max_parents: 4,
    };

    let use_batch = config.use_batch;
    let runner = ExperimentRunner::new(config.runs, config.base_seed);
    let work = move |seed: u64| {
        let trace = {
            let _span = ddn_telemetry::span("simulate");
            world.log_trace(&population, &old_policy, seed)
        };
        let cbn = {
            let _span = ddn_telemetry::span("fit");
            CausalBayesNet::fit(&trace, &cbn_config)
        };
        let _span = ddn_telemetry::span("estimate");
        let (wise, ips, dr) = if use_batch {
            // Score the trace once — policy probabilities, importance
            // weights, and CBN predictions — and let all three
            // estimators read the shared columnar batch.
            let batch = EvalBatch::with_model(&trace, &new_policy, &cbn)
                .expect("policy shares the trace's decision space");
            let wise = DirectMethod::new(cbn.clone())
                .estimate_batch(&trace, &batch)
                .expect("WISE DM always estimates")
                .value;
            let ips = Ips::new()
                .estimate_batch(&trace, &batch)
                .expect("trace carries propensities")
                .value;
            let dr = DoublyRobust::new(cbn)
                .estimate_batch(&trace, &batch)
                .expect("trace carries propensities")
                .value;
            (wise, ips, dr)
        } else {
            let wise = DirectMethod::new(cbn.clone())
                .estimate(&trace, &new_policy)
                .expect("WISE DM always estimates")
                .value;
            let ips = Ips::new()
                .estimate(&trace, &new_policy)
                .expect("trace carries propensities")
                .value;
            let dr = DoublyRobust::new(cbn)
                .estimate(&trace, &new_policy)
                .expect("trace carries propensities")
                .value;
            (wise, ips, dr)
        };
        (
            truth,
            vec![
                ("WISE".to_string(), wise),
                ("IPS".to_string(), ips),
                ("DR".to_string(), dr),
            ],
        )
    };
    (runner, work)
}

/// Runs the Figure 7a experiment with custom configuration.
pub fn figure7a_with(config: &Figure7aConfig) -> ErrorTable {
    let (runner, work) = prepared(config);
    runner.run_parallel(ExperimentRunner::default_threads(), work)
}

/// Runs Figure 7a with telemetry: same numbers as [`figure7a_with`]
/// (bit-identical, regardless of thread count) plus per-run spans and the
/// estimators' health diagnostics.
pub fn figure7a_instrumented(config: &Figure7aConfig) -> (ErrorTable, TelemetrySnapshot) {
    let (runner, work) = prepared(config);
    runner.run_parallel_instrumented(ExperimentRunner::default_threads(), work)
}

/// Runs Figure 7a with the paper's protocol (50 runs).
pub fn figure7a() -> ErrorTable {
    figure7a_with(&Figure7aConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_models::cbn::Var;
    use ddn_models::RewardModel;
    use ddn_trace::Decision;

    #[test]
    fn cbn_mislearns_structure_on_skewed_trace() {
        // The pitfall's precondition: on the skewed trace the learned CBN
        // keeps ISP plus only ONE of the two decision axes.
        let cfg = Figure7aConfig::default();
        let world = WiseWorld::new(cfg.world.clone());
        let trace = world.log_trace(&world.population(), &world.old_policy(), 3);
        let cbn = CausalBayesNet::fit(
            &trace,
            &CbnConfig {
                decision_axes: Some(vec![2, 2]),
                numeric_bins: 4,
                max_parents: 4,
            },
        );
        let has_fe = cbn.depends_on(Var::DecisionAxis(0));
        let has_be = cbn.depends_on(Var::DecisionAxis(1));
        assert!(
            has_fe != has_be,
            "expected exactly one decision axis in the structure, got parents {:?}",
            cbn.parents()
        );
    }

    #[test]
    fn mislearned_cbn_mispredicts_the_counterfactual_cell() {
        // When the learned structure keeps FE (not BE), the (FE-1, BE-2)
        // counterfactual inherits the slow conjunction's mean — the
        // "WISE will predict long response time" error of Figure 4.
        let cfg = Figure7aConfig::default();
        let world = WiseWorld::new(cfg.world.clone());
        for seed in 0..20 {
            let trace = world.log_trace(&world.population(), &world.old_policy(), seed);
            let cbn = CausalBayesNet::fit(
                &trace,
                &CbnConfig {
                    decision_axes: Some(vec![2, 2]),
                    numeric_bins: 4,
                    max_parents: 4,
                },
            );
            if cbn.depends_on(Var::DecisionAxis(0)) && !cbn.depends_on(Var::DecisionAxis(1)) {
                let ctx = world.context(0);
                let pred = cbn.predict(&ctx, Decision::from_index(1)); // fe1/be2
                assert!(
                    pred > 600.0,
                    "FE-only CBN should wrongly predict long for (FE-1, BE-2): {pred}"
                );
                return;
            }
        }
        panic!("no seed produced the FE-only structure in 20 tries");
    }

    #[test]
    fn batched_matches_unbatched_bit_for_bit() {
        let batched = figure7a_with(&Figure7aConfig {
            runs: 4,
            ..Default::default()
        });
        let plain = figure7a_with(&Figure7aConfig {
            runs: 4,
            use_batch: false,
            ..Default::default()
        });
        for name in ["WISE", "IPS", "DR"] {
            let a = batched.get(name).unwrap();
            let b = plain.get(name).unwrap();
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{name} mean");
            assert_eq!(a.min.to_bits(), b.min.to_bits(), "{name} min");
            assert_eq!(a.max.to_bits(), b.max.to_bits(), "{name} max");
        }
    }

    #[test]
    fn dr_beats_wise_in_small_replication() {
        // A 12-run miniature of the headline result (full 50 runs in the
        // bench binary): DR's mean error is below WISE's.
        let cfg = Figure7aConfig {
            runs: 12,
            ..Default::default()
        };
        let table = figure7a_with(&cfg);
        let dr = table.get("DR").unwrap();
        let wise = table.get("WISE").unwrap();
        assert!(
            dr.mean < wise.mean,
            "DR mean error {} should beat WISE {}",
            dr.mean,
            wise.mean
        );
    }
}
