//! Figure 7c — variance reduction in the CFA world.
//!
//! Protocol (paper §4.2): "the original evaluator of CFA uses a trace of
//! clients with random CDN and bitrate selection, and focuses on the
//! subset of clients who have the same decision in the new policy. … The
//! DM estimates are based on a k-NN model trained by the trace." Expected:
//! "DR's evaluation error is about 36% lower than that of the original
//! evaluator. … this example illustrates the power of DR to reduce
//! variance of evaluation results by giving each client an estimate using
//! a (possibly biased) DM model."

use ddn_cdn::cfa::{CfaConfig, CfaWorld};
use ddn_estimators::{
    BatchEstimator, DirectMethod, DoublyRobust, ErrorTable, Estimator, EvalBatch,
    ExperimentRunner, MatchingEstimator,
};
use ddn_models::{KnnConfig, KnnRegressor};
use ddn_policy::UniformRandomPolicy;
use ddn_stats::rng::Xoshiro256;
use ddn_telemetry::TelemetrySnapshot;

/// Configuration knobs for the experiment.
#[derive(Debug, Clone)]
pub struct Figure7cConfig {
    /// World parameters.
    pub world: CfaConfig,
    /// Seed the (fixed) world's quality tables are drawn from.
    pub world_seed: u64,
    /// Clients per run.
    pub clients: usize,
    /// k for the k-NN DM.
    pub knn_k: usize,
    /// Number of runs (paper: 50).
    pub runs: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Share one [`EvalBatch`] of policy/model scores across the
    /// estimator menu (default). Disable (`figure7 --no-batch`) to rerun
    /// the original per-estimator scoring for A/B timing; the estimates
    /// are bit-identical either way.
    pub use_batch: bool,
}

impl Default for Figure7cConfig {
    fn default() -> Self {
        Self {
            // Feature cardinalities kept coarse enough (4·2·2 = 16 client
            // kinds) that the k-NN DM generalizes from a uniformly logged
            // trace, while the 12-way decision space still starves the
            // matching estimator (~1/12 of records match) — the Figure 5
            // sparsity that drives its variance.
            world: CfaConfig {
                cities: 4,
                devices: 2,
                connections: 2,
                noise_std: 0.25,
                ..CfaConfig::default()
            },
            world_seed: 1717,
            clients: 1000,
            knn_k: 5,
            runs: 50,
            base_seed: 70_003,
            use_batch: true,
        }
    }
}

/// Builds the shared per-seed work for Figure 7c. The phase spans are
/// inert unless a telemetry collector is installed.
fn prepared(
    cfg: &Figure7cConfig,
) -> (
    ExperimentRunner,
    impl Fn(u64) -> (f64, Vec<(String, f64)>) + Sync + '_,
) {
    let world = CfaWorld::new(cfg.world.clone(), cfg.world_seed);
    let old_policy = UniformRandomPolicy::new(world.space().clone());
    let new_policy = world.greedy_policy();
    let knn_cfg = KnnConfig {
        k: cfg.knn_k,
        standardize: true,
        match_decision: true,
    };

    let runner = ExperimentRunner::new(cfg.runs, cfg.base_seed);
    let work = move |seed: u64| {
        let (truth, trace) = {
            let _span = ddn_telemetry::span("simulate");
            let mut rng = Xoshiro256::seed_from(seed);
            let clients = world.sample_clients(cfg.clients, &mut rng);
            let truth = world.true_value(&clients, &new_policy);
            let trace =
                world.log_trace(&clients, &old_policy, seed.wrapping_mul(31).wrapping_add(7));
            (truth, trace)
        };

        let knn = {
            let _span = ddn_telemetry::span("fit");
            KnnRegressor::fit(&trace, knn_cfg)
        };

        let _span = ddn_telemetry::span("estimate");
        let (cfa, dm, dr) = if cfg.use_batch {
            // One columnar scoring pass — k-NN predictions are the
            // expensive part here — shared by the whole menu.
            let batch = EvalBatch::with_model(&trace, &new_policy, &knn)
                .expect("policy shares the trace's decision space");
            let cfa = MatchingEstimator::new()
                .estimate_batch(&trace, &batch)
                .expect("uniform logging always yields matches at this scale")
                .value;
            let dm = DirectMethod::new(&knn)
                .estimate_batch(&trace, &batch)
                .expect("DM always estimates")
                .value;
            let dr = DoublyRobust::new(&knn)
                .estimate_batch(&trace, &batch)
                .expect("trace has propensities")
                .value;
            (cfa, dm, dr)
        } else {
            let cfa = MatchingEstimator::new()
                .estimate(&trace, &new_policy)
                .expect("uniform logging always yields matches at this scale")
                .value;
            let dm = DirectMethod::new(&knn)
                .estimate(&trace, &new_policy)
                .expect("DM always estimates")
                .value;
            let dr = DoublyRobust::new(&knn)
                .estimate(&trace, &new_policy)
                .expect("trace has propensities")
                .value;
            (cfa, dm, dr)
        };

        (
            truth,
            vec![
                ("CFA".to_string(), cfa),
                ("DM".to_string(), dm),
                ("DR".to_string(), dr),
            ],
        )
    };
    (runner, work)
}

/// Runs the Figure 7c experiment with custom configuration.
pub fn figure7c_with(cfg: &Figure7cConfig) -> ErrorTable {
    let (runner, work) = prepared(cfg);
    runner.run_parallel(ExperimentRunner::default_threads(), work)
}

/// Runs Figure 7c with telemetry: same numbers as [`figure7c_with`]
/// (bit-identical, regardless of thread count) plus per-run spans and the
/// estimators' health diagnostics — including CFA's coverage, the Figure 5
/// sparsity made visible.
pub fn figure7c_instrumented(cfg: &Figure7cConfig) -> (ErrorTable, TelemetrySnapshot) {
    let (runner, work) = prepared(cfg);
    runner.run_parallel_instrumented(ExperimentRunner::default_threads(), work)
}

/// Runs Figure 7c with the paper's protocol (50 runs).
pub fn figure7c() -> ErrorTable {
    figure7c_with(&Figure7cConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dr_beats_cfa_in_small_replication() {
        let cfg = Figure7cConfig {
            runs: 10,
            ..Default::default()
        };
        let table = figure7c_with(&cfg);
        let dr = table.get("DR").unwrap();
        let cfa = table.get("CFA").unwrap();
        assert!(
            dr.mean < cfa.mean,
            "DR {} should beat CFA matching {}",
            dr.mean,
            cfa.mean
        );
    }

    #[test]
    fn batched_matches_unbatched_bit_for_bit() {
        let batched = figure7c_with(&Figure7cConfig {
            runs: 3,
            clients: 400,
            ..Default::default()
        });
        let plain = figure7c_with(&Figure7cConfig {
            runs: 3,
            clients: 400,
            use_batch: false,
            ..Default::default()
        });
        for name in ["CFA", "DM", "DR"] {
            let a = batched.get(name).unwrap();
            let b = plain.get(name).unwrap();
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{name} mean");
            assert_eq!(a.min.to_bits(), b.min.to_bits(), "{name} min");
            assert_eq!(a.max.to_bits(), b.max.to_bits(), "{name} max");
        }
    }

    #[test]
    fn matching_suffers_from_low_coverage() {
        // With 12 decisions and a deterministic new policy, only ~1/12 of
        // a uniformly logged trace matches — the Figure 5 sparsity.
        let cfg = Figure7cConfig {
            runs: 1,
            clients: 600,
            ..Default::default()
        };
        let world = CfaWorld::new(cfg.world.clone(), cfg.world_seed);
        let mut rng = Xoshiro256::seed_from(1);
        let clients = world.sample_clients(cfg.clients, &mut rng);
        let old = UniformRandomPolicy::new(world.space().clone());
        let trace = world.log_trace(&clients, &old, 2);
        let e = MatchingEstimator::new()
            .estimate(&trace, &world.greedy_policy())
            .unwrap();
        let match_fraction = e.per_record.len() as f64 / trace.len() as f64;
        assert!(
            (match_fraction - 1.0 / 12.0).abs() < 0.05,
            "match fraction {match_fraction} should be near 1/12"
        );
    }
}
