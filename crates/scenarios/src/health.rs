//! Estimator-health suite — a synthetic scenario whose purpose is the
//! *telemetry*, not the headline numbers.
//!
//! The paper's §4 recommendations (randomize a little, check coverage,
//! watch for coupling) only work if the pipeline can *see* the relevant
//! diagnostics: effective sample size, clip rates, replay acceptance,
//! match coverage, regime counts. This module runs every estimator in the
//! crate over one deliberately stressed world — skewed logging (weight 4
//! on the target decision), a mid-trace load shift, state-tagged halves —
//! so a single run exercises every health metric the observability layer
//! defines. The CLI's `selftest` subcommand and `reproduce.sh ci` both
//! lean on it as the telemetry smoke test.
//!
//! The world is analytically simple: contexts carry one binary feature
//! `g`, rewards are `2 + g + 3·d` exactly, and the evaluated policy always
//! plays `d = 1`, so the true value is `2 + E[g] + 3 = 5.5`.

use ddn_estimators::state_aware::MatchOnly;
use ddn_estimators::{
    ActionEmbedding, AdaptiveDr, AdaptiveIps, AdaptiveWeights, BatchEstimator, ClippedIps,
    CouplingDetector, CrossFitDr, DirectMethod, DoublyRobust, ErrorTable, Estimator, EvalBatch,
    ExperimentRunner, Ips, MarginalizedDr, MatchingEstimator, OnlineAdaptiveDr, OnlineAdaptiveIps,
    OnlineClippedIps, OnlineDm, OnlineDr, OnlineEstimator, OnlineIps, OnlineMarginalizedDr,
    OnlineSeqDr, OnlineSnips, ReplayEvaluator, SelfNormalizedIps, SeqDr, StateAwareDr, SwitchDr,
};
use ddn_models::TabularMeanModel;
use ddn_policy::{EpsilonSmoothedPolicy, LookupPolicy, Policy, StationaryAsHistory};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_telemetry::TelemetrySnapshot;
use ddn_trace::{Context, ContextSchema, StateTag, Trace, TraceRecord};

/// True value of the always-`d1` policy in the suite's world.
pub const HEALTH_TRUTH: f64 = 5.5;

/// Horizon SeqDR groups the suite's records under. The default record
/// count (and every config the tests use) is a multiple, so the trace
/// splits into whole trajectories; the suite reports SeqDR's estimate
/// per step (÷ horizon) so its row shares [`HEALTH_TRUTH`].
pub const HEALTH_SEQ_HORIZON: usize = 4;

/// Configuration knobs for the health suite.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Records per logged trace. The proxy's load shift sits at the
    /// midpoint; keep this ≥ 2 × the detector's 20-record minimum segment.
    pub records: usize,
    /// Number of seeded runs.
    pub runs: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Share [`EvalBatch`]es of policy/model scores across the menu
    /// (default): one batch scored under the target policy for the
    /// stationary estimators, one under the logging policy for Replay.
    /// Disable to rerun per-estimator scoring; bit-identical either way.
    pub use_batch: bool,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            records: 240,
            runs: 16,
            base_seed: 90_001,
            use_batch: true,
        }
    }
}

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> ddn_trace::DecisionSpace {
    ddn_trace::DecisionSpace::of(&["d0", "d1"])
}

/// Logging policy: ε-smoothed "always d0" with ε = 0.5, so the target
/// decision `d1` is logged with propensity 0.25 — weight 4 under the
/// evaluated policy, enough to trip a clip threshold of 2.
fn logger() -> EpsilonSmoothedPolicy {
    EpsilonSmoothedPolicy::new(Box::new(LookupPolicy::constant(space(), 0)), 0.5)
}

/// Logs one stressed trace: skewed propensities, state tags split at the
/// midpoint (low load first, high load after — the same instant the proxy
/// series shifts).
fn log_trace(cfg: &HealthConfig, rng: &mut Xoshiro256) -> Trace {
    let s = schema();
    let logging = logger();
    let recs = (0..cfg.records)
        .map(|i| {
            let g = rng.index(2) as u32;
            let c = Context::build(&s).set_cat("g", g).finish();
            let (d, p) = logging.sample_with_prob(&c, rng);
            let reward = 2.0 + g as f64 + 3.0 * d.index() as f64;
            TraceRecord::new(c, d, reward).with_propensity(p).with_state(
                if i < cfg.records / 2 {
                    StateTag::LOW_LOAD
                } else {
                    StateTag::HIGH_LOAD
                },
            )
        })
        .collect();
    Trace::from_records(s, space(), recs).expect("suite trace is well-formed")
}

/// Per-seed work: run the full estimator menu over one stressed trace.
fn run_seed(cfg: &HealthConfig, seed: u64) -> (f64, Vec<(String, f64)>) {
    let mut rng = Xoshiro256::seed_from(seed);
    let trace = {
        let _span = ddn_telemetry::span("log");
        log_trace(cfg, &mut rng)
    };
    let target = LookupPolicy::constant(space(), 1);

    let _span = ddn_telemetry::span("estimate");
    let model = TabularMeanModel::fit_trace(&trace, 1.0);
    let fit = |tr: &Trace| TabularMeanModel::fit_trace(tr, 1.0);

    let mut rows: Vec<(String, f64)> = Vec::new();
    let mut push = |name: &str, value: f64| rows.push((name.to_string(), value));

    if cfg.use_batch {
        // Shared-score path: score every record once under the target
        // policy (probabilities, weights, model predictions) and let the
        // nine stationary estimators read the same columnar batch.
        let batch = EvalBatch::with_model(&trace, &target, &model)
            .expect("target shares the trace's decision space");
        push(
            "DM",
            DirectMethod::new(&model)
                .estimate_batch(&trace, &batch)
                .expect("DM always estimates")
                .value,
        );
        push(
            "IPS",
            Ips::new().estimate_batch(&trace, &batch).expect("IPS").value,
        );
        push(
            "SNIPS",
            SelfNormalizedIps::new()
                .estimate_batch(&trace, &batch)
                .expect("SNIPS")
                .value,
        );
        push(
            "ClippedIPS",
            ClippedIps::new(2.0)
                .estimate_batch(&trace, &batch)
                .expect("ClippedIPS")
                .value,
        );
        push(
            "DR",
            DoublyRobust::new(&model)
                .estimate_batch(&trace, &batch)
                .expect("DR")
                .value,
        );
        push(
            "SwitchDR",
            SwitchDr::new(&model, 2.0)
                .estimate_batch(&trace, &batch)
                .expect("SwitchDR")
                .value,
        );
        push(
            "CrossFitDR",
            CrossFitDr::new(3, fit)
                .estimate_batch(&trace, &batch)
                .expect("CrossFitDR")
                .value,
        );
        push(
            "CFA",
            MatchingEstimator::new()
                .estimate_batch(&trace, &batch)
                .expect("ε-smoothed logging always yields matches at this scale")
                .value,
        );
        push(
            "StateAwareDR",
            StateAwareDr::new(&model, MatchOnly, StateTag::HIGH_LOAD)
                .estimate_batch(&trace, &batch)
                .expect("StateAwareDR")
                .value,
        );
        push(
            "AdaptiveIPS",
            AdaptiveIps::new(AdaptiveWeights::Stabilized)
                .estimate_batch(&trace, &batch)
                .expect("AdaptiveIPS")
                .value,
        );
        push(
            "AdaptiveDR",
            AdaptiveDr::new(&model, AdaptiveWeights::Stabilized)
                .estimate_batch(&trace, &batch)
                .expect("AdaptiveDR")
                .value,
        );
        push(
            "MarginalizedDR",
            MarginalizedDr::new(&model, ActionEmbedding::identity(2), Box::new(logger()))
                .estimate_batch(&trace, &batch)
                .expect("MarginalizedDR")
                .value,
        );
        push(
            "SeqDR",
            SeqDr::new(&model, HEALTH_SEQ_HORIZON)
                .estimate_batch(&trace, &batch)
                .expect("SeqDR")
                .value
                / HEALTH_SEQ_HORIZON as f64,
        );

        // Replay reads the *logging* policy's probability rows (it
        // reweights by the old policy), so it gets its own batch; the
        // model scores are shared because predictions depend only on
        // (context, decision), not on which policy scored the batch.
        let logger_batch = EvalBatch::with_model(&trace, &logger(), &model)
            .expect("logger shares the trace's decision space");
        let mut history = StationaryAsHistory::new(LookupPolicy::constant(space(), 1));
        let mut replay_rng = rng.fork();
        let replay = ReplayEvaluator::new(&model)
            .evaluate_batch(&trace, &logger_batch, &mut history, &mut replay_rng)
            .expect("skewed logging still accepts ~1/4 of tuples");
        push("Replay", replay.estimate.value);
    } else {
        push(
            "DM",
            DirectMethod::new(&model)
                .estimate(&trace, &target)
                .expect("DM always estimates")
                .value,
        );
        push(
            "IPS",
            Ips::new().estimate(&trace, &target).expect("IPS").value,
        );
        push(
            "SNIPS",
            SelfNormalizedIps::new()
                .estimate(&trace, &target)
                .expect("SNIPS")
                .value,
        );
        push(
            "ClippedIPS",
            ClippedIps::new(2.0)
                .estimate(&trace, &target)
                .expect("ClippedIPS")
                .value,
        );
        push(
            "DR",
            DoublyRobust::new(&model)
                .estimate(&trace, &target)
                .expect("DR")
                .value,
        );
        push(
            "SwitchDR",
            SwitchDr::new(&model, 2.0)
                .estimate(&trace, &target)
                .expect("SwitchDR")
                .value,
        );
        push(
            "CrossFitDR",
            CrossFitDr::new(3, fit)
                .estimate(&trace, &target)
                .expect("CrossFitDR")
                .value,
        );
        push(
            "CFA",
            MatchingEstimator::new()
                .estimate(&trace, &target)
                .expect("ε-smoothed logging always yields matches at this scale")
                .value,
        );
        push(
            "StateAwareDR",
            StateAwareDr::new(&model, MatchOnly, StateTag::HIGH_LOAD)
                .estimate(&trace, &target)
                .expect("StateAwareDR")
                .value,
        );
        push(
            "AdaptiveIPS",
            AdaptiveIps::new(AdaptiveWeights::Stabilized)
                .estimate(&trace, &target)
                .expect("AdaptiveIPS")
                .value,
        );
        push(
            "AdaptiveDR",
            AdaptiveDr::new(&model, AdaptiveWeights::Stabilized)
                .estimate(&trace, &target)
                .expect("AdaptiveDR")
                .value,
        );
        push(
            "MarginalizedDR",
            MarginalizedDr::new(&model, ActionEmbedding::identity(2), Box::new(logger()))
                .estimate(&trace, &target)
                .expect("MarginalizedDR")
                .value,
        );
        push(
            "SeqDR",
            SeqDr::new(&model, HEALTH_SEQ_HORIZON)
                .estimate(&trace, &target)
                .expect("SeqDR")
                .value
                / HEALTH_SEQ_HORIZON as f64,
        );

        // Replay drives the target as a (degenerate) history policy so the
        // acceptance-rate diagnostic gets exercised too.
        let mut history = StationaryAsHistory::new(LookupPolicy::constant(space(), 1));
        let mut replay_rng = rng.fork();
        let replay = ReplayEvaluator::new(&model)
            .evaluate(&trace, &logger(), &mut history, &mut replay_rng)
            .expect("skewed logging still accepts ~1/4 of tuples");
        push("Replay", replay.estimate.value);
    }

    // The proxy load shifts with the state tags: the detector should see
    // exactly two regimes and report them as health telemetry.
    let proxy: Vec<f64> = (0..trace.len())
        .map(|i| if i < trace.len() / 2 { 1.0 } else { 3.0 })
        .collect();
    CouplingDetector::new(20).analyze(&trace, &proxy);

    (HEALTH_TRUTH, rows)
}

/// Cross-checks the streaming layer against the suite's batch menu: every
/// seeded stressed trace is replayed record-by-record through the online
/// estimators (as the ddn-serve ingest path would), and each resulting
/// estimate must be **bit-identical** to its batch twin over the same
/// trace. Returns the first discrepancy as an error message; `Ok(())`
/// means the online and offline engines cannot drift apart on the worlds
/// this suite monitors.
pub fn online_offline_cross_check(cfg: &HealthConfig) -> Result<(), String> {
    for run in 0..cfg.runs {
        let seed = cfg.base_seed + run as u64;
        let mut rng = Xoshiro256::seed_from(seed);
        let trace = log_trace(cfg, &mut rng);
        let target = LookupPolicy::constant(space(), 1);
        let model = TabularMeanModel::fit_trace(&trace, 1.0);

        let newp =
            || -> Box<dyn Policy + Send + Sync> { Box::new(LookupPolicy::constant(space(), 1)) };
        let offline = |est: &dyn Estimator| -> Result<f64, String> {
            Ok(est
                .estimate(&trace, &target)
                .map_err(|e| format!("seed {seed}: batch {} failed: {e:?}", est.name()))?
                .value)
        };
        let mut menu: Vec<(Box<dyn OnlineEstimator>, f64)> = vec![
            (
                Box::new(OnlineIps::new(space(), newp()).expect("spaces match")),
                offline(&Ips::new())?,
            ),
            (
                Box::new(OnlineSnips::new(space(), newp()).expect("spaces match")),
                offline(&SelfNormalizedIps::new())?,
            ),
            (
                Box::new(OnlineClippedIps::new(space(), newp(), 2.0).expect("spaces match")),
                offline(&ClippedIps::new(2.0))?,
            ),
            (
                Box::new(
                    OnlineDm::new(space(), newp(), Box::new(model.clone()))
                        .expect("spaces match"),
                ),
                offline(&DirectMethod::new(&model))?,
            ),
            (
                Box::new(
                    OnlineDr::new(space(), newp(), Box::new(model.clone()))
                        .expect("spaces match"),
                ),
                offline(&DoublyRobust::new(&model))?,
            ),
            (
                Box::new(
                    OnlineAdaptiveIps::new(space(), newp(), AdaptiveWeights::Stabilized)
                        .expect("spaces match"),
                ),
                offline(&AdaptiveIps::new(AdaptiveWeights::Stabilized))?,
            ),
            (
                Box::new(
                    OnlineAdaptiveDr::new(
                        space(),
                        newp(),
                        Box::new(model.clone()),
                        AdaptiveWeights::Stabilized,
                    )
                    .expect("spaces match"),
                ),
                offline(&AdaptiveDr::new(&model, AdaptiveWeights::Stabilized))?,
            ),
            (
                Box::new(
                    OnlineMarginalizedDr::new(
                        space(),
                        newp(),
                        Box::new(logger()),
                        Box::new(model.clone()),
                        ActionEmbedding::identity(2),
                    )
                    .expect("spaces match"),
                ),
                offline(&MarginalizedDr::new(
                    &model,
                    ActionEmbedding::identity(2),
                    Box::new(logger()),
                ))?,
            ),
            (
                Box::new(
                    OnlineSeqDr::new(
                        space(),
                        newp(),
                        Box::new(model.clone()),
                        HEALTH_SEQ_HORIZON,
                    )
                    .expect("spaces match"),
                ),
                offline(&SeqDr::new(&model, HEALTH_SEQ_HORIZON))?,
            ),
        ];
        for (online, batch_value) in &mut menu {
            let name = online.name().to_string();
            for rec in trace.records() {
                online
                    .push(rec)
                    .map_err(|e| format!("seed {seed}: online {name} push failed: {e:?}"))?;
            }
            let got = online
                .estimate()
                .map_err(|e| format!("seed {seed}: online {name} estimate failed: {e:?}"))?
                .value;
            if got.to_bits() != batch_value.to_bits() {
                return Err(format!(
                    "seed {seed}: {name} online {got} != batch {batch_value}"
                ));
            }
        }
    }
    Ok(())
}

/// Runs the health suite with custom configuration, returning the error
/// table and the telemetry snapshot that is the suite's real output.
pub fn health_suite_with(cfg: &HealthConfig) -> (ErrorTable, TelemetrySnapshot) {
    ExperimentRunner::new(cfg.runs, cfg.base_seed)
        .run_parallel_instrumented(ExperimentRunner::default_threads(), |seed| {
            run_seed(cfg, seed)
        })
}

/// Runs the health suite with default configuration.
pub fn health_suite() -> (ErrorTable, TelemetrySnapshot) {
    health_suite_with(&HealthConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_emits_every_signature_health_metric() {
        let cfg = HealthConfig {
            runs: 3,
            ..Default::default()
        };
        let (table, snap) = health_suite_with(&cfg);
        assert_eq!(snap.runs(), 3);
        // Every estimator family's signature diagnostic is present.
        for (source, metric) in [
            ("DM", "ess"),
            ("IPS", "ess"),
            ("SNIPS", "ess"),
            ("ClippedIPS", "clip_rate"),
            ("DR", "mean_abs_residual"),
            ("SwitchDR", "clip_rate"),
            ("CrossFitDR", "folds"),
            ("CFA", "coverage"),
            ("StateAwareDR", "coverage"),
            ("AdaptiveIPS", "hsum"),
            ("AdaptiveDR", "hsum"),
            ("MarginalizedDR", "embedding_groups"),
            ("SeqDR", "trajectories"),
            ("Replay", "acceptance_rate"),
            ("CouplingDetector", "segments"),
        ] {
            let agg = snap
                .health_metric(source, metric)
                .unwrap_or_else(|| panic!("{source}/{metric} missing"));
            assert_eq!(agg.count, 3, "{source}/{metric}");
        }
        // The stress dials actually bit.
        let clip = snap.health_metric("ClippedIPS", "clip_rate").unwrap();
        assert!(clip.mean() > 0.1, "weight-4 records must clip: {}", clip.mean());
        let acc = snap.health_metric("Replay", "acceptance_rate").unwrap();
        assert!(
            (0.1..0.5).contains(&acc.mean()),
            "deterministic d1 over 0.25-propensity logging accepts ~1/4, got {}",
            acc.mean()
        );
        let segs = snap.health_metric("CouplingDetector", "segments").unwrap();
        assert_eq!(segs.mean(), 2.0, "the load shift must split the proxy");
        // And the world is calibrated: the unbiased estimators land near
        // the analytic truth.
        assert!(table.get("DR").unwrap().mean < 0.15);
        assert!(table.get("IPS").unwrap().mean < 0.3);
    }

    #[test]
    fn batched_matches_unbatched_bit_for_bit() {
        let cfg = HealthConfig {
            runs: 3,
            ..Default::default()
        };
        let (batched, batched_snap) = health_suite_with(&cfg);
        let (plain, plain_snap) = health_suite_with(&HealthConfig {
            use_batch: false,
            ..cfg
        });
        for name in [
            "DM",
            "IPS",
            "SNIPS",
            "ClippedIPS",
            "DR",
            "SwitchDR",
            "CrossFitDR",
            "CFA",
            "StateAwareDR",
            "AdaptiveIPS",
            "AdaptiveDR",
            "MarginalizedDR",
            "SeqDR",
            "Replay",
        ] {
            let a = batched.get(name).unwrap();
            let b = plain.get(name).unwrap();
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{name} mean");
            assert_eq!(a.min.to_bits(), b.min.to_bits(), "{name} min");
            assert_eq!(a.max.to_bits(), b.max.to_bits(), "{name} max");
        }
        // The health diagnostics are identical too — the batch changes
        // where scores come from, never what the estimators report.
        for (source, metric) in [
            ("ClippedIPS", "clip_rate"),
            ("Replay", "acceptance_rate"),
            ("CFA", "coverage"),
        ] {
            let a = batched_snap.health_metric(source, metric).unwrap();
            let b = plain_snap.health_metric(source, metric).unwrap();
            assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{source}/{metric}");
        }
        // Only the batched run counts score reuse.
        assert!(batched_snap.counter("batch.hit").unwrap_or(0) > 0);
        assert_eq!(plain_snap.counter("batch.hit"), None);
    }

    #[test]
    fn online_replay_matches_the_batch_menu_bit_for_bit() {
        online_offline_cross_check(&HealthConfig {
            runs: 3,
            ..Default::default()
        })
        .unwrap();
    }

    #[test]
    fn suite_rows_cover_the_full_menu() {
        let cfg = HealthConfig {
            runs: 2,
            ..Default::default()
        };
        let (table, _snap) = health_suite_with(&cfg);
        for name in [
            "DM",
            "IPS",
            "SNIPS",
            "ClippedIPS",
            "DR",
            "SwitchDR",
            "CrossFitDR",
            "CFA",
            "StateAwareDR",
            "AdaptiveIPS",
            "AdaptiveDR",
            "MarginalizedDR",
            "SeqDR",
            "Replay",
        ] {
            assert!(table.get(name).is_some(), "{name} row missing");
        }
    }
}
