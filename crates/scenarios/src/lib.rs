//! # ddn-scenarios — the paper's experiments, end to end
//!
//! Each submodule wires a substrate world, the estimators under study, and
//! the paper's evaluation protocol (relative error `|V − V̂|/|V|`,
//! aggregated mean/min/max over seeded runs) into a reproducible
//! experiment:
//!
//! | module | reproduces | expected shape |
//! |---|---|---|
//! | [`figure7a`](mod@figure7a) | Fig. 7a — trace bias (WISE) | DR mean error ≈ 32% below WISE's CBN |
//! | [`figure7b`](mod@figure7b) | Fig. 7b — model bias (FastMPC) | DR ≈ 74% below the FastMPC evaluator |
//! | [`figure7c`](mod@figure7c) | Fig. 7c — variance (CFA) | DR ≈ 36% below CFA's matching |
//! | [`ablations::randomness`] | §4.1 coverage & randomness | IPS degrades as ε→0; DR gracefully |
//! | [`ablations::trace_size`] | §2.2.1 data scarcity | DM improves with n; DR dominates throughout |
//! | [`ablations::dimensionality`] | §2.2.2 curse of dimensionality | errors grow with irrelevant features; DR slowest |
//! | [`ablations::nonstationary`] | §4.2 replay for history-based policies | replay-DR beats naive stationary DR |
//! | [`ablations::state`] | §4.1/§4.3 system-state mismatch | state-aware DR beats pooled DR |
//! | [`ablations::coupling`] | §4.1/§4.3 decision-reward coupling | change-point gating reduces error |
//! | [`ablations::second_order`] | §3 second-order bias | DR error tracks the *product* of DM and IPS error dials |
//! | [`ablations::selection`] | the Figure 1 question itself | DR ranks candidate policies at least as well as the baselines |
//! | [`ablations::calibration`] | §2.2.1 scale-shaped model bias | isotonic calibration fixes it without propensities |
//! | [`ablations::menu`] | §4 estimator-menu extensions | adaptive/marginalized/sequential DR each beat the incumbents on the log shape that breaks them |
//! | [`health`](mod@health) | §4's diagnostics, end to end | every estimator emits its telemetry health metrics |
//!
//! The absolute numbers will not match the paper (different substrate,
//! different noise); the *shape* — who wins, by roughly what factor —
//! is the reproduction target, per DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod figure7a;
pub mod figure7b;
pub mod figure7c;
pub mod health;

pub use figure7a::figure7a;
pub use figure7b::figure7b;
pub use figure7c::figure7c;
pub use health::health_suite;

/// Number of runs the paper uses per experiment.
pub const PAPER_RUNS: usize = 50;
