//! Bridges the simulator fleet onto the wire: each [`SessionPlan`]
//! becomes a [`SessionWork`] — a ready-to-send evaluation session with
//! its schema, decision space, target decision and logged trace records.
//!
//! All record generation happens here, up front and single-threaded, so a
//! session's payload is a pure function of its plan seed regardless of
//! how worker threads later interleave the wire traffic. The same
//! [`ddn_trace::Trace`] that is streamed to the server is kept for the
//! end-of-run offline parity check.

use crate::schedule::{ScenarioKind, SessionPlan};
use ddn_abr::bridge::{abr_schema, abr_space, log_session, ExploringAbr};
use ddn_abr::ladder::BitrateLadder;
use ddn_abr::policies::BufferBased;
use ddn_abr::session::{QoeModel, Session, SessionConfig};
use ddn_abr::throughput::{Bandwidth, ThroughputDiscount};
use ddn_cdn::cfa::{CfaConfig, CfaWorld};
use ddn_policy::UniformRandomPolicy;
use ddn_relay::{RelayConfig, RelayWorld};
use ddn_stats::rng::Xoshiro256;
use ddn_trace::{ContextSchema, DecisionSpace, Trace};

/// The shared simulator worlds sessions are sampled from. Built once per
/// run from the run seed; individual sessions then draw from their own
/// plan seeds.
pub struct Fleet {
    abr_ladder: BitrateLadder,
    abr_schema: ContextSchema,
    abr_space: DecisionSpace,
    cdn: CfaWorld,
    relay: RelayWorld,
}

impl Fleet {
    /// Builds the fleet's worlds deterministically from the run seed.
    pub fn new(seed: u64) -> Fleet {
        let ladder = BitrateLadder::five_level();
        Fleet {
            abr_schema: abr_schema(),
            abr_space: abr_space(&ladder),
            abr_ladder: ladder,
            cdn: CfaWorld::new(CfaConfig::default(), seed ^ 0xC0DE),
            relay: RelayWorld::new(RelayConfig::default(), seed ^ 0x0E1A),
        }
    }

    /// The context schema sessions of `kind` use.
    pub fn schema(&self, kind: ScenarioKind) -> &ContextSchema {
        match kind {
            ScenarioKind::Abr => &self.abr_schema,
            ScenarioKind::Cdn => self.cdn.schema(),
            ScenarioKind::Relay => self.relay.schema(),
        }
    }

    /// The decision space sessions of `kind` use.
    pub fn space(&self, kind: ScenarioKind) -> &DecisionSpace {
        match kind {
            ScenarioKind::Abr => &self.abr_space,
            ScenarioKind::Cdn => self.cdn.space(),
            ScenarioKind::Relay => self.relay.space(),
        }
    }

    /// Realizes one plan: logs `records` trace records from the plan's
    /// scenario world under its private seed.
    pub fn realize(&self, plan: &SessionPlan, records: usize) -> SessionWork {
        let mut rng = Xoshiro256::seed_from(plan.seed);
        let trace = match plan.kind {
            ScenarioKind::Abr => {
                // Vary the (deterministic) network each session sees, so
                // the fleet's ABR traffic isn't one repeated session.
                let kbps = 800.0 + (plan.seed % 8) as f64 * 350.0;
                let session = Session::new(
                    self.abr_ladder.clone(),
                    SessionConfig {
                        chunks: records,
                        ..SessionConfig::default()
                    },
                    QoeModel::default(),
                    Bandwidth::Constant(kbps),
                    ThroughputDiscount::paper_default(),
                );
                log_session(session, &ExploringAbr::new(BufferBased::default(), 0.25), &mut rng)
                    .trace
            }
            ScenarioKind::Cdn => {
                let clients = self.cdn.sample_clients(records, &mut rng);
                let logger = UniformRandomPolicy::new(self.cdn.space().clone());
                self.cdn.log_trace(&clients, &logger, plan.seed ^ 0xBEEF)
            }
            ScenarioKind::Relay => {
                let calls = self.relay.sample_calls(records, &mut rng);
                let logger = self.relay.nat_only_relay_policy(0.2);
                self.relay.log_trace(&calls, &logger, plan.seed ^ 0xFACE)
            }
        };
        let space = self.space(plan.kind);
        let decision = (plan.seed % space.len() as u64) as usize;
        SessionWork {
            name: plan.session_name(),
            kind: plan.kind,
            at: plan.at,
            binary: plan.binary,
            decision,
            decision_name: space.names()[decision].clone(),
            trace,
        }
    }
}

/// One session's complete wire workload plus what the parity check needs.
pub struct SessionWork {
    /// Server-side session name.
    pub name: String,
    /// Scenario world the records came from.
    pub kind: ScenarioKind,
    /// Scheduled arrival time (schedule seconds).
    pub at: f64,
    /// Ingest over binary frames instead of JSON lines.
    pub binary: bool,
    /// Index of the target decision the session's IPS estimate scores.
    pub decision: usize,
    /// Name of the target decision (sent in the init line).
    pub decision_name: String,
    /// The logged records — streamed to the server AND evaluated offline.
    pub trace: Trace,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Framing, Schedule};
    use ddn_estimators::{Estimator, Ips};
    use ddn_netsim::RateProfile;
    use ddn_policy::LookupPolicy;

    #[test]
    fn realize_is_deterministic_and_right_sized() {
        let fleet = Fleet::new(7);
        let sched =
            Schedule::generate(30, &RateProfile::Constant(100.0), 7, Framing::Mixed).unwrap();
        for plan in &sched.plans {
            let a = fleet.realize(plan, 4);
            let b = fleet.realize(plan, 4);
            assert_eq!(a.trace.records(), b.trace.records(), "{}", a.name);
            assert_eq!(a.trace.len(), 4);
            assert!(a.trace.has_propensities(), "{}", a.name);
            assert!(a.decision < fleet.space(plan.kind).len());
        }
    }

    #[test]
    fn realized_traces_are_offline_evaluable() {
        let fleet = Fleet::new(3);
        let sched =
            Schedule::generate(12, &RateProfile::Constant(50.0), 3, Framing::Json).unwrap();
        for plan in &sched.plans {
            let w = fleet.realize(plan, 3);
            let policy = LookupPolicy::constant(w.trace.space().clone(), w.decision);
            let est = Ips::new().estimate(&w.trace, &policy).expect("evaluable");
            assert!(est.value.is_finite(), "{}: {}", w.name, est.value);
        }
    }
}
