//! The deterministic offered-load schedule.
//!
//! Everything a load run will do is decided here, single-threaded, before
//! any socket is opened: one [`SessionPlan`] per simulated client, with
//! its arrival time drawn from a [`RateProfile`] via the fleet's
//! nonhomogeneous-Poisson [`ArrivalProcess`], its scenario kind, its
//! private seed, and its wire framing. Worker threads only *execute*
//! plans, so however the OS schedules them, the offered load — and the
//! [`Schedule::wire_digest`] that fingerprints it — is a pure function of
//! the seed.

use ddn_netsim::{ArrivalProcess, RateProfile};
use ddn_stats::rng::{Rng, Xoshiro256};

/// Which simulator world a session's records come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// An ABR video session (`ddn-abr`): chunk = record, QoE = reward.
    Abr,
    /// A CDN-selection client batch (`ddn-cdn` CFA world).
    Cdn,
    /// A relay-selection call batch (`ddn-relay`).
    Relay,
}

impl ScenarioKind {
    /// Stable one-byte tag used in session names and the wire digest.
    pub fn tag(self) -> u8 {
        match self {
            ScenarioKind::Abr => b'a',
            ScenarioKind::Cdn => b'c',
            ScenarioKind::Relay => b'r',
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Abr => "abr",
            ScenarioKind::Cdn => "cdn",
            ScenarioKind::Relay => "relay",
        }
    }
}

/// Wire encoding a session's ingests travel as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Newline-delimited JSON ingest lines.
    Json,
    /// Binary columnar batch frames (DESIGN.md §14).
    Binary,
    /// Alternate per session — half the fleet on each encoding.
    Mixed,
}

impl Framing {
    /// Parses a `--framing` CLI value.
    pub fn parse(s: &str) -> Result<Framing, String> {
        match s {
            "json" => Ok(Framing::Json),
            "binary" => Ok(Framing::Binary),
            "mixed" => Ok(Framing::Mixed),
            other => Err(format!("unknown framing {other:?} (expected json|binary|mixed)")),
        }
    }
}

/// One simulated client in the offered-load schedule.
#[derive(Debug, Clone)]
pub struct SessionPlan {
    /// Position in arrival order (also the round-robin worker key).
    pub index: usize,
    /// Arrival time in schedule seconds (from the rate profile).
    pub at: f64,
    /// Scenario world this session's records come from.
    pub kind: ScenarioKind,
    /// Private seed: the session's record stream is a pure function of it.
    pub seed: u64,
    /// Whether this session ingests over binary frames.
    pub binary: bool,
}

impl SessionPlan {
    /// The server-side session name.
    pub fn session_name(&self) -> String {
        format!("lg-{}-{:07}", self.kind.name(), self.index)
    }
}

/// The full offered-load schedule of a run.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Session plans in arrival order.
    pub plans: Vec<SessionPlan>,
}

impl Schedule {
    /// Generates the schedule for `sessions` clients arriving under
    /// `rate`, deterministically in `seed`.
    ///
    /// Returns `Err` (never panics) on an invalid rate profile, so CLI
    /// callers can reject bad input with a usage error.
    pub fn generate(
        sessions: usize,
        rate: &RateProfile,
        seed: u64,
        framing: Framing,
    ) -> Result<Schedule, String> {
        if sessions == 0 {
            return Err("sessions must be at least 1".to_string());
        }
        rate.check()?;
        let mut root = Xoshiro256::seed_from(seed);
        let mut arrival_rng = root.fork();
        let mut kind_rng = root.fork();
        let mut seed_rng = root.fork();
        let mut arrivals = ArrivalProcess::new(rate.clone());
        let kinds = [ScenarioKind::Abr, ScenarioKind::Cdn, ScenarioKind::Relay];
        let plans = (0..sessions)
            .map(|index| {
                let at = arrivals.next_arrival(&mut arrival_rng);
                let kind = kinds[kind_rng.index(kinds.len())];
                let sseed = seed_rng.next_u64();
                let binary = match framing {
                    Framing::Json => false,
                    Framing::Binary => true,
                    Framing::Mixed => index % 2 == 1,
                };
                SessionPlan {
                    index,
                    at,
                    kind,
                    seed: sseed,
                    binary,
                }
            })
            .collect();
        Ok(Schedule { plans })
    }

    /// FNV-1a 64-bit digest over the canonical byte serialization of the
    /// schedule: every plan's index, arrival-time bits, kind tag, seed and
    /// framing byte, in order. Two runs offer byte-identical load iff
    /// their digests match.
    pub fn wire_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for p in &self.plans {
            eat(&(p.index as u64).to_le_bytes());
            eat(&p.at.to_bits().to_le_bytes());
            eat(&[p.kind.tag(), p.binary as u8]);
            eat(&p.seed.to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_digest_byte_for_byte() {
        let mk = || {
            Schedule::generate(500, &RateProfile::Constant(100.0), 42, Framing::Mixed).unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.wire_digest(), b.wire_digest());
        for (x, y) in a.plans.iter().zip(&b.plans) {
            assert_eq!(x.at.to_bits(), y.at.to_bits());
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.kind, y.kind);
        }
        let c = Schedule::generate(500, &RateProfile::Constant(100.0), 43, Framing::Mixed).unwrap();
        assert_ne!(a.wire_digest(), c.wire_digest());
    }

    #[test]
    fn arrivals_ascend_and_kinds_mix() {
        let s = Schedule::generate(900, &RateProfile::Constant(50.0), 7, Framing::Mixed).unwrap();
        for w in s.plans.windows(2) {
            assert!(w[1].at > w[0].at);
        }
        for kind in [ScenarioKind::Abr, ScenarioKind::Cdn, ScenarioKind::Relay] {
            let n = s.plans.iter().filter(|p| p.kind == kind).count();
            assert!(n > 150, "{:?} underrepresented: {n}", kind);
        }
        let binary = s.plans.iter().filter(|p| p.binary).count();
        assert_eq!(binary, 450);
    }

    #[test]
    fn bad_profiles_are_errors_not_panics() {
        let err = Schedule::generate(10, &RateProfile::Constant(-1.0), 7, Framing::Json)
            .unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = Schedule::generate(0, &RateProfile::Constant(1.0), 7, Framing::Json)
            .unwrap_err();
        assert!(err.contains("sessions"), "{err}");
    }
}
