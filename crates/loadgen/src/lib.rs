//! # ddn-loadgen — closed-loop simulated-client load generation
//!
//! The paper's systems are judged on live traffic, so the serving core
//! (`ddn-serve`) has to be measured under something that *looks* like
//! live traffic: many concurrent sessions, mixed scenario kinds, a
//! time-varying offered load, and faults. This crate drives exactly that
//! through the real [`ServeClient`] wire path:
//!
//! - **Schedule** ([`Schedule`]): one plan per simulated client, arrival
//!   times from a nonhomogeneous-Poisson [`RateProfile`] — a pure
//!   function of the seed, fingerprinted by [`Schedule::wire_digest`].
//! - **Fleet** ([`Fleet`]): ABR / CDN / relay worlds realize each plan
//!   into logged trace records (chunk QoE, CDN quality, call quality),
//!   with propensities, so every session is off-policy-evaluable.
//! - **Drive** ([`run`]): worker threads stream every session through a
//!   live server — init, batched ingests (JSON or binary frames), an
//!   estimate, and sparse health/stats polls — closed-loop by default,
//!   or open-loop against the schedule's arrival clock so coordinated
//!   omission becomes measurable.
//! - **Verify**: at the end of the run every session's streamed IPS
//!   estimate is compared bit-for-bit against the offline estimator on
//!   the same records. A mismatch fails the run — throughput numbers
//!   from a server that mis-counted are worthless.
//!
//! The [`LoadReport`] carries records/sec, per-verb log2 latency
//! histograms (wire-compatible with `ddn top`), backpressure stalls and
//! client retry counts, and serializes into the `BENCH_loadgen.json`
//! shape `reproduce.sh ci`'s bench-diff gate pins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;
pub mod schedule;

pub use scenario::{Fleet, SessionWork};
pub use schedule::{Framing, ScenarioKind, Schedule, SessionPlan};

use ddn_estimators::{Estimator, Ips};
use ddn_netsim::RateProfile;
use ddn_policy::LookupPolicy;
use ddn_serve::{ClientConfig, ServeClient, ServeConfig};
use ddn_stats::Json;
use ddn_telemetry::Histogram;
use ddn_testkit::{FaultPlan, FaultPlanConfig};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Minimum acceptable sustained ingest rate (records/second) through the
/// full loadgen wire path, conservative enough to survive small smoke
/// sizings on slow CI machines. The tighter, machine-calibrated floor
/// lives in the repo-pinned `bench_floors.json`.
pub const FLOOR_RECORDS_PER_SEC: f64 = 10_000.0;

/// Errors a load run can produce.
#[derive(Debug)]
pub enum LoadgenError {
    /// Invalid configuration — CLI callers should exit 2 (usage).
    Config(String),
    /// The server or a client failed mid-run.
    Serve(String),
    /// A streamed estimate diverged from the offline estimator.
    Parity(String),
}

impl fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadgenError::Config(m) => write!(f, "config error: {m}"),
            LoadgenError::Serve(m) => write!(f, "serve error: {m}"),
            LoadgenError::Parity(m) => write!(f, "parity violation: {m}"),
        }
    }
}

impl std::error::Error for LoadgenError {}

/// Configuration of a load run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Number of simulated client sessions.
    pub sessions: usize,
    /// Trace records each session ingests.
    pub records_per_session: usize,
    /// Records per ingest request.
    pub batch: usize,
    /// Worker threads (each owns one connection; sessions round-robin).
    pub workers: usize,
    /// Run seed: schedule, fleet and fault plans derive from it.
    pub seed: u64,
    /// Offered-load profile in sessions/second.
    pub rate: RateProfile,
    /// Open-loop schedule compression: scheduled seconds are divided by
    /// this before being mapped onto the wall clock.
    pub timescale: f64,
    /// Open loop: issue session arrivals on the schedule's clock and
    /// measure init latency from the *intended* arrival, so a stalled
    /// server shows up as latency instead of silently slowing the offered
    /// load (coordinated omission).
    pub open_loop: bool,
    /// Wire encoding for ingest requests.
    pub framing: Framing,
    /// Per-record transport fault rate in `[0, 1]` (0 disables the fault
    /// plane entirely).
    pub fault_rate: f64,
    /// Attach to an already-running server instead of self-hosting.
    pub addr: Option<String>,
    /// Self-hosted server configuration (ignored when `addr` is set).
    pub serve: ServeConfig,
    /// Issue a `health` poll after every N-th session (0 = never).
    pub health_every: usize,
    /// Issue a `stats` poll after every N-th session (0 = never).
    pub stats_every: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            sessions: 100_000,
            records_per_session: 3,
            batch: 2,
            workers: 8,
            seed: 7,
            rate: RateProfile::Constant(25_000.0),
            timescale: 1.0,
            open_loop: false,
            framing: Framing::Mixed,
            fault_rate: 0.0,
            addr: None,
            serve: ServeConfig::default(),
            health_every: 512,
            stats_every: 4096,
        }
    }
}

impl LoadgenConfig {
    /// The fixed small configuration `ddn loadgen --smoke` runs: an
    /// ephemeral self-hosted server, a small mixed fleet, a fixed seed —
    /// fast enough for CI, complete enough to exercise every code path
    /// (both framings, faults, open-loop wave, parity check).
    pub fn smoke(seed: u64) -> LoadgenConfig {
        LoadgenConfig {
            sessions: 600,
            records_per_session: 4,
            batch: 2,
            workers: 4,
            seed,
            rate: RateProfile::Constant(10_000.0),
            fault_rate: 0.002,
            serve: ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
            health_every: 64,
            stats_every: 256,
            ..LoadgenConfig::default()
        }
    }

    /// Checks the configuration, returning the first violation as a
    /// message. Never panics: `ddn loadgen` maps the message to a usage
    /// error (exit 2).
    pub fn check(&self) -> Result<(), String> {
        if self.sessions == 0 {
            return Err("sessions must be at least 1".into());
        }
        if self.records_per_session == 0 {
            return Err("records per session must be at least 1".into());
        }
        if self.batch == 0 {
            return Err("batch must be at least 1".into());
        }
        if self.workers == 0 {
            return Err("workers must be at least 1".into());
        }
        if !(self.timescale.is_finite() && self.timescale > 0.0) {
            return Err("timescale must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.fault_rate) {
            return Err("faults must be a rate in [0, 1]".into());
        }
        self.rate.check()
    }
}

/// The verbs the driver times, in display order.
const VERBS: [&str; 5] = ["init", "ingest", "estimate", "health", "stats"];

/// Per-verb client-side latency histograms (ddn-telemetry log2 buckets,
/// wire-compatible with the `stats` verb / `ddn top` rendering).
#[derive(Clone)]
struct VerbHists {
    hists: [Arc<Histogram>; 5],
}

impl VerbHists {
    fn new() -> VerbHists {
        VerbHists {
            hists: std::array::from_fn(|_| Arc::new(Histogram::new())),
        }
    }

    fn record(&self, verb: usize, ns: u64) {
        self.hists[verb].record(ns);
    }
}

/// The outcome of a load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Sessions driven (all of them stay live server-side).
    pub sessions: usize,
    /// Sessions per scenario kind: `[abr, cdn, relay]`.
    pub kind_counts: [usize; 3],
    /// Total records acknowledged.
    pub records: u64,
    /// Total requests delivered (init + ingest + estimate + polls).
    pub requests: u64,
    /// Wall-clock drive time in seconds (excludes fleet generation and
    /// the offline parity pass).
    pub elapsed_secs: f64,
    /// Records per second over the drive phase.
    pub records_per_sec: f64,
    /// Whether the run was open-loop.
    pub open_loop: bool,
    /// Per-record fault rate the transports injected.
    pub fault_rate: f64,
    /// FNV-1a digest of the offered-load schedule.
    pub schedule_digest: u64,
    /// Per-verb latency histograms, in [`VERBS`] order. Closed loop
    /// measures send→response; open loop measures the init verb from the
    /// *scheduled* arrival instead, exposing coordinated omission.
    pub verb_latency: Vec<(&'static str, Arc<Histogram>)>,
    /// Client retry attempts summed over workers.
    pub retries: u64,
    /// Client reconnects summed over workers.
    pub reconnects: u64,
    /// Client read timeouts summed over workers.
    pub timeouts: u64,
    /// Client give-ups (should be 0; any giveup fails the run earlier).
    pub giveups: u64,
    /// Server backpressure stalls over the run.
    pub backpressure_stalls: u64,
    /// Server dedup replays (faults > 0 make these likely).
    pub dedup_replays: u64,
    /// Records the server counted (must equal `records`).
    pub server_ingested: u64,
    /// Live server-side sessions at the end of the run.
    pub live_sessions: f64,
    /// Sessions whose streamed estimate was verified bit-identical to the
    /// offline estimator (always all of them when `run` returns `Ok`).
    pub parity_sessions: usize,
}

impl LoadReport {
    /// Serializes the report as the `loadgen` summary section of
    /// `BENCH_loadgen.json`.
    pub fn to_json(&self) -> Json {
        let verbs = Json::Object(
            self.verb_latency
                .iter()
                .map(|(verb, h)| {
                    (
                        verb.to_string(),
                        Json::Object(vec![
                            ("count".into(), Json::Int(h.total() as i64)),
                            ("p50_ns".into(), Json::Int(h.quantile(0.50) as i64)),
                            ("p99_ns".into(), Json::Int(h.quantile(0.99) as i64)),
                            ("histogram".into(), h.to_json()),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Object(vec![
            ("sessions".into(), Json::Int(self.sessions as i64)),
            ("abr_sessions".into(), Json::Int(self.kind_counts[0] as i64)),
            ("cdn_sessions".into(), Json::Int(self.kind_counts[1] as i64)),
            (
                "relay_sessions".into(),
                Json::Int(self.kind_counts[2] as i64),
            ),
            ("records".into(), Json::Int(self.records as i64)),
            ("requests".into(), Json::Int(self.requests as i64)),
            ("elapsed_secs".into(), Json::Num(self.elapsed_secs)),
            ("records_per_sec".into(), Json::Num(self.records_per_sec)),
            (
                "floor_records_per_sec".into(),
                Json::Num(FLOOR_RECORDS_PER_SEC),
            ),
            (
                "meets_floor".into(),
                Json::Bool(self.records_per_sec >= FLOOR_RECORDS_PER_SEC),
            ),
            ("open_loop".into(), Json::Bool(self.open_loop)),
            ("fault_rate".into(), Json::Num(self.fault_rate)),
            (
                "schedule_digest".into(),
                Json::str(format!("{:016x}", self.schedule_digest)),
            ),
            ("verbs".into(), verbs),
            ("retries".into(), Json::Int(self.retries as i64)),
            ("reconnects".into(), Json::Int(self.reconnects as i64)),
            ("timeouts".into(), Json::Int(self.timeouts as i64)),
            ("giveups".into(), Json::Int(self.giveups as i64)),
            (
                "backpressure_stalls".into(),
                Json::Int(self.backpressure_stalls as i64),
            ),
            ("dedup_replays".into(), Json::Int(self.dedup_replays as i64)),
            (
                "server_ingested".into(),
                Json::Int(self.server_ingested as i64),
            ),
            ("live_sessions".into(), Json::Num(self.live_sessions)),
            (
                "parity_sessions".into(),
                Json::Int(self.parity_sessions as i64),
            ),
            ("parity_mismatches".into(), Json::Int(0)),
        ])
    }
}

/// Per-worker result handed back to the driver.
struct WorkerOutcome {
    records: u64,
    requests: u64,
    estimates: Vec<(usize, u64)>,
    retries: u64,
    reconnects: u64,
    timeouts: u64,
    giveups: u64,
}

/// Builds the worker's client: a plain TCP connector, wrapped in a
/// [`ddn_serve::FaultyTransport`] replaying a seeded fault plan when the
/// run has a nonzero fault rate.
fn make_client(
    addr: &str,
    fault_rate: f64,
    worker_seed: u64,
    records: u64,
    requests: u64,
    bytes_per_record: u64,
) -> Result<ServeClient, String> {
    // Generous read timeout: a health poll against a huge live fleet can
    // legitimately take tens of seconds (the response carries every
    // session's estimator health).
    if fault_rate <= 0.0 {
        return ServeClient::connect_with(
            addr,
            ClientConfig {
                read_timeout: Duration::from_secs(120),
                max_retries: 3,
                backoff_base: Duration::from_millis(1),
            },
        )
        .map_err(|e| e.to_string());
    }
    let write_horizon = records.saturating_mul(bytes_per_record).max(1 << 12);
    let read_horizon = (requests * 96).max(1 << 10);
    let n_faults = ((records as f64 * fault_rate).round() as usize).max(1);
    let plan = FaultPlan::generate(
        worker_seed,
        &FaultPlanConfig {
            faults: n_faults,
            write_horizon,
            read_horizon,
            max_delay_micros: 50,
            max_partial_bytes: 32,
        },
    );
    let state = ddn_serve::FaultState::new(plan.cursor());
    let connect_addr = addr.to_string();
    ServeClient::from_connector(
        Box::new(move || {
            let inner = Box::new(ddn_serve::TcpTransport::connect(&connect_addr)?)
                as Box<dyn ddn_serve::Transport>;
            Ok(Box::new(ddn_serve::FaultyTransport::new(inner, state.clone()))
                as Box<dyn ddn_serve::Transport>)
        }),
        ClientConfig {
            read_timeout: Duration::from_secs(120),
            // Every failed attempt consumes at least one scheduled fault,
            // so any finite plan is outlasted.
            max_retries: plan.len() as u32 + 2,
            backoff_base: Duration::from_millis(1),
        },
    )
    .map_err(|e| e.to_string())
}

/// Extracts the IPS estimate bits from an `estimate` response.
fn ips_bits(resp: &Json, session: &str) -> Result<u64, String> {
    resp.get("estimates")
        .and_then(|e| e.get("ips"))
        .and_then(|e| e.get("value"))
        .and_then(Json::as_f64)
        .map(f64::to_bits)
        .ok_or_else(|| format!("session {session}: no ips value in {resp}"))
}

/// Drives one worker's share of the fleet through one connection.
///
/// Closed loop interleaves sessions wave-by-wave (all inits, then each
/// ingest round, then estimates) so the worker's whole share is live
/// server-side at once. Open loop walks sessions in arrival order,
/// sleeping until each scheduled arrival and charging the init verb from
/// the *scheduled* instant — the coordinated-omission-honest measure.
#[allow(clippy::too_many_arguments)]
fn drive_worker(
    sessions: &[&SessionWork],
    addr: &str,
    cfg: &LoadgenConfig,
    worker_seed: u64,
    hists: &VerbHists,
    t0: Instant,
) -> Result<WorkerOutcome, String> {
    let my_records: u64 = sessions.iter().map(|s| s.trace.len() as u64).sum();
    let n_batches = cfg.records_per_session.div_ceil(cfg.batch);
    let my_requests: u64 = sessions.len() as u64 * (2 + n_batches as u64) + 16;
    let bytes_per_record = sessions
        .first()
        .and_then(|s| s.trace.records().first())
        .map(|r| r.to_json().to_string().len() as u64 + 16)
        .unwrap_or(256);
    let mut client = make_client(
        addr,
        cfg.fault_rate,
        worker_seed,
        my_records,
        my_requests,
        bytes_per_record,
    )?;

    let mut out = WorkerOutcome {
        records: 0,
        requests: 0,
        estimates: Vec::with_capacity(sessions.len()),
        retries: 0,
        reconnects: 0,
        timeouts: 0,
        giveups: 0,
    };

    let mut timed = |verb: usize,
                     started: Instant,
                     r: Result<Json, ddn_serve::ClientError>|
     -> Result<Json, String> {
        let resp = r.map_err(|e| e.to_string())?;
        hists.record(verb, started.elapsed().as_nanos() as u64);
        out.requests += 1;
        Ok(resp)
    };

    let init = |c: &mut ServeClient, s: &SessionWork| {
        c.init(
            &s.name,
            s.trace.schema(),
            s.trace.space(),
            &["ips"],
            &s.decision_name,
            0.0,
            None,
        )
    };
    let ingest = |c: &mut ServeClient, s: &SessionWork, wave: usize, batch: usize| {
        let lo = wave * batch;
        let hi = (lo + batch).min(s.trace.len());
        let chunk = &s.trace.records()[lo..hi];
        if s.binary {
            c.ingest_binary(&s.name, chunk)
        } else {
            c.ingest(&s.name, chunk)
        }
    };

    // Sparse observability traffic, interleaved with the session stream
    // like production sidecars: every `health_every`-th / `stats_every`-th
    // session (by global index) also polls the health / stats verb. The
    // per-worker cap exists because the health verb reports estimator
    // health for EVERY live session — O(fleet) per response — so at large
    // fleets an uncapped stride would spend the whole run serializing
    // health snapshots instead of driving records.
    const MAX_POLLS_PER_WORKER: usize = 4;
    let mut health_left = if cfg.health_every > 0 { MAX_POLLS_PER_WORKER } else { 0 };
    let mut stats_left = if cfg.stats_every > 0 { MAX_POLLS_PER_WORKER } else { 0 };
    macro_rules! poll {
        ($s:expr, $client:expr) => {
            if health_left > 0 && $s.index() % cfg.health_every == 0 {
                health_left -= 1;
                let t = Instant::now();
                timed(3, t, $client.health())?;
            }
            if stats_left > 0 && $s.index() % cfg.stats_every == 0 {
                stats_left -= 1;
                let t = Instant::now();
                timed(4, t, $client.server_stats(false))?;
            }
        };
    }

    if cfg.open_loop {
        // Arrival-ordered: sleep to each scheduled arrival, charge init
        // from the schedule, then finish the session closed-loop.
        for s in sessions {
            let scheduled = t0 + Duration::from_secs_f64(s.at / cfg.timescale);
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            timed(0, scheduled, init(&mut client, s))?;
            for wave in 0..n_batches {
                let t = Instant::now();
                timed(1, t, ingest(&mut client, s, wave, cfg.batch))?;
            }
            let t = Instant::now();
            let resp = timed(2, t, client.estimate(&s.name))?;
            out.estimates.push((s.index(), ips_bits(&resp, &s.name)?));
            out.records += s.trace.len() as u64;
            poll!(s, client);
        }
    } else {
        // Wave-interleaved: every session on this worker is initialized
        // (and stays live server-side) before any ingest happens. Polls
        // ride the init wave, so they sample the fleet as it ramps.
        for s in sessions {
            let t = Instant::now();
            timed(0, t, init(&mut client, s))?;
            poll!(s, client);
        }
        for wave in 0..n_batches {
            for s in sessions {
                if wave * cfg.batch >= s.trace.len() {
                    continue;
                }
                let t = Instant::now();
                timed(1, t, ingest(&mut client, s, wave, cfg.batch))?;
                out.records += (cfg.batch).min(s.trace.len() - wave * cfg.batch) as u64;
            }
        }
        for s in sessions {
            let t = Instant::now();
            let resp = timed(2, t, client.estimate(&s.name))?;
            out.estimates.push((s.index(), ips_bits(&resp, &s.name)?));
        }
    }

    let stats = client.stats();
    out.retries = stats.retry_attempts();
    out.reconnects = stats.reconnects();
    out.timeouts = stats.timeouts();
    out.giveups = stats.giveups();
    Ok(out)
}

impl SessionWork {
    /// Global session index parsed back from the session name.
    fn index(&self) -> usize {
        self.name
            .rsplit('-')
            .next()
            .and_then(|s| s.parse().ok())
            .expect("session names end in their index")
    }
}

/// Runs a complete load-generation cycle: schedule → fleet → drive →
/// verify. Returns the report only if every session's streamed estimate
/// is bit-identical to the offline estimator on the same records.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadReport, LoadgenError> {
    cfg.check().map_err(LoadgenError::Config)?;
    let schedule = Schedule::generate(cfg.sessions, &cfg.rate, cfg.seed, cfg.framing)
        .map_err(LoadgenError::Config)?;
    let digest = schedule.wire_digest();
    let fleet = Fleet::new(cfg.seed);
    // Realization is a pure per-plan function of the (read-only) fleet,
    // so it parallelizes over contiguous plan chunks; order is preserved
    // by construction and the result is identical to a sequential pass.
    let realizers = cfg
        .workers
        .min(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
        .max(1);
    let chunk = schedule.plans.len().div_ceil(realizers);
    let works: Vec<SessionWork> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedule
            .plans
            .chunks(chunk)
            .map(|plans| {
                let fleet = &fleet;
                scope.spawn(move || {
                    plans
                        .iter()
                        .map(|p| fleet.realize(p, cfg.records_per_session))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("realizer threads do not panic"))
            .collect()
    });
    let mut kind_counts = [0usize; 3];
    for p in &schedule.plans {
        kind_counts[match p.kind {
            ScenarioKind::Abr => 0,
            ScenarioKind::Cdn => 1,
            ScenarioKind::Relay => 2,
        }] += 1;
    }

    let (addr, handle) = match &cfg.addr {
        Some(a) => (a.clone(), None),
        None => {
            let handle = ddn_serve::serve(&cfg.serve)
                .map_err(|e| LoadgenError::Serve(format!("cannot bind loadgen server: {e}")))?;
            (handle.local_addr().to_string(), Some(handle))
        }
    };

    // Snapshot counters before the drive so an externally-attached server
    // with prior traffic reports deltas, not lifetime totals.
    let read_counters = |addr: &str| -> Result<(u64, u64, u64, f64), String> {
        let mut c = ServeClient::connect(addr).map_err(|e| e.to_string())?;
        let resp = c.server_stats(false).map_err(|e| e.to_string())?;
        let snap = resp
            .get("stats")
            .ok_or_else(|| format!("stats response lacks \"stats\": {resp}"))?;
        let counter = |name: &str| {
            snap.get("counters")
                .and_then(|c| c.get(name))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        let live = snap
            .get("gauges")
            .and_then(Json::as_object)
            .map(|gs| {
                gs.iter()
                    .filter(|(n, _)| n.starts_with("serve.sessions.live."))
                    .filter_map(|(_, v)| v.as_f64())
                    .sum::<f64>()
            })
            .unwrap_or(0.0);
        Ok((
            counter("serve.ingest.records"),
            counter("serve.backpressure.stalls"),
            counter("serve.dedup.replays"),
            live,
        ))
    };
    let before = read_counters(&addr).map_err(LoadgenError::Serve)?;

    let hists = VerbHists::new();
    let workers = cfg.workers.min(works.len()).max(1);
    let t0 = Instant::now();
    let outcomes: Vec<Result<WorkerOutcome, String>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let mine: Vec<&SessionWork> = works.iter().skip(w).step_by(workers).collect();
            let addr = addr.clone();
            let hists = hists.clone();
            let worker_seed = cfg.seed ^ (0x10AD_0000 + w as u64);
            handles.push(scope.spawn(move || {
                drive_worker(&mine, &addr, cfg, worker_seed, &hists, t0)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".into())))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);

    let mut records = 0u64;
    let mut requests = 0u64;
    let (mut retries, mut reconnects, mut timeouts, mut giveups) = (0u64, 0u64, 0u64, 0u64);
    let mut estimates: Vec<(usize, u64)> = Vec::with_capacity(works.len());
    for o in outcomes {
        let o = o.map_err(LoadgenError::Serve)?;
        records += o.records;
        requests += o.requests;
        retries += o.retries;
        reconnects += o.reconnects;
        timeouts += o.timeouts;
        giveups += o.giveups;
        estimates.extend(o.estimates);
    }

    let after = read_counters(&addr).map_err(LoadgenError::Serve)?;
    if let Some(h) = handle {
        h.shutdown();
    }
    let server_ingested = after.0 - before.0;
    if server_ingested != records {
        return Err(LoadgenError::Serve(format!(
            "exactly-once violated: clients sent {records} records, server counted {server_ingested}"
        )));
    }

    // Offline parity: every session's streamed IPS estimate must equal
    // the batch estimator on the very same records, to the last bit —
    // chaos faults included.
    let mut online: Vec<Option<u64>> = vec![None; works.len()];
    for (idx, bits) in estimates {
        online[idx] = Some(bits);
    }
    for (idx, w) in works.iter().enumerate() {
        let got = online[idx].ok_or_else(|| {
            LoadgenError::Parity(format!("session {} never produced an estimate", w.name))
        })?;
        let policy = LookupPolicy::constant(w.trace.space().clone(), w.decision);
        let want = Ips::new()
            .estimate(&w.trace, &policy)
            .map_err(|e| LoadgenError::Parity(format!("offline {}: {e}", w.name)))?
            .value
            .to_bits();
        if got != want {
            return Err(LoadgenError::Parity(format!(
                "session {}: online {} != offline {} ({} records)",
                w.name,
                f64::from_bits(got),
                f64::from_bits(want),
                w.trace.len(),
            )));
        }
    }

    Ok(LoadReport {
        sessions: works.len(),
        kind_counts,
        records,
        requests,
        elapsed_secs: elapsed,
        records_per_sec: records as f64 / elapsed,
        open_loop: cfg.open_loop,
        fault_rate: cfg.fault_rate,
        schedule_digest: digest,
        verb_latency: VERBS.iter().zip(hists.hists.iter()).map(|(v, h)| (*v, h.clone())).collect(),
        retries,
        reconnects,
        timeouts,
        giveups,
        backpressure_stalls: after.1 - before.1,
        dedup_replays: after.2 - before.2,
        server_ingested,
        live_sessions: after.3,
        parity_sessions: works.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> LoadgenConfig {
        LoadgenConfig {
            sessions: 60,
            records_per_session: 3,
            batch: 2,
            workers: 3,
            seed,
            rate: RateProfile::Constant(5_000.0),
            serve: ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
            health_every: 16,
            stats_every: 32,
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn closed_loop_run_verifies_parity_and_counts() {
        let report = run(&tiny(11)).expect("load run succeeds");
        assert_eq!(report.sessions, 60);
        assert_eq!(report.records, 180);
        assert_eq!(report.parity_sessions, 60);
        assert_eq!(report.server_ingested, 180);
        assert_eq!(report.kind_counts.iter().sum::<usize>(), 60);
        assert!(report.live_sessions >= 60.0, "{}", report.live_sessions);
        assert!(report.records_per_sec > 0.0);
        // Every session initialized, ingested twice, estimated once.
        let verb = |name: &str| {
            report
                .verb_latency
                .iter()
                .find(|(v, _)| *v == name)
                .map(|(_, h)| h.total())
                .unwrap()
        };
        assert_eq!(verb("init"), 60);
        assert_eq!(verb("ingest"), 120);
        assert_eq!(verb("estimate"), 60);
        assert!(verb("health") > 0);
        let json = report.to_json().to_string();
        assert!(json.contains("\"records_per_sec\""), "{json}");
        assert!(json.contains("\"schedule_digest\""), "{json}");
    }

    #[test]
    fn same_seed_same_digest_different_seed_differs() {
        let a = run(&tiny(5)).unwrap();
        let b = run(&tiny(5)).unwrap();
        assert_eq!(a.schedule_digest, b.schedule_digest);
        let c = run(&tiny(6)).unwrap();
        assert_ne!(a.schedule_digest, c.schedule_digest);
    }

    #[test]
    fn chaos_faults_keep_parity() {
        let cfg = LoadgenConfig {
            fault_rate: 0.02,
            ..tiny(13)
        };
        let report = run(&cfg).expect("faulted run still verifies");
        assert_eq!(report.parity_sessions, 60);
        assert_eq!(report.fault_rate, 0.02);
    }

    #[test]
    fn open_loop_run_completes() {
        let cfg = LoadgenConfig {
            open_loop: true,
            timescale: 100.0,
            ..tiny(17)
        };
        let report = run(&cfg).expect("open-loop run succeeds");
        assert!(report.open_loop);
        assert_eq!(report.parity_sessions, 60);
    }

    #[test]
    fn bad_configs_are_config_errors() {
        let err = run(&LoadgenConfig {
            sessions: 0,
            ..tiny(1)
        })
        .unwrap_err();
        assert!(matches!(err, LoadgenError::Config(_)), "{err}");
        let err = run(&LoadgenConfig {
            rate: RateProfile::Constant(-2.0),
            ..tiny(1)
        })
        .unwrap_err();
        assert!(matches!(err, LoadgenError::Config(_)), "{err}");
        let err = run(&LoadgenConfig {
            fault_rate: 1.5,
            ..tiny(1)
        })
        .unwrap_err();
        assert!(matches!(err, LoadgenError::Config(_)), "{err}");
    }

    #[test]
    fn smoke_config_is_valid() {
        assert!(LoadgenConfig::smoke(7).check().is_ok());
    }
}
