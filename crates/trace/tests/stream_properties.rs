//! Property: corrupting line k of a JSONL trace makes [`TraceStream`]
//! yield every record before k unchanged, report the failure with the
//! exact physical line number, and fuse — and the uncorrupted prefix
//! parses bit-identically to the batch loader (`Trace::read_jsonl`).

use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_testkit::{prop, prop_assert, prop_assert_eq};
use ddn_trace::{
    Context, ContextSchema, Decision, DecisionSpace, Trace, TraceError, TraceRecord,
};

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 3).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b", "c"])
}

fn records(n: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            let g = rng.index(3) as u32;
            let c = Context::build(&schema()).set_cat("g", g).finish();
            let d = rng.index(3);
            TraceRecord::new(c, Decision::from_index(d), rng.next_f64())
                .with_propensity(1.0 / 3.0)
        })
        .collect()
}

fn jsonl(records: &[TraceRecord]) -> String {
    let trace = Trace::from_records(schema(), space(), records.to_vec()).unwrap();
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

/// The 1-based input line an error names, however it is wrapped.
fn error_line(e: &TraceError) -> Option<usize> {
    match e {
        TraceError::Json { line, .. } => *line,
        TraceError::InvalidRecordLine { line, .. } => Some(*line),
        _ => None,
    }
}

prop! {
    /// Corrupt record k (physical line k+2: the header is line 1 and
    /// records start at line 2) in one of three ways — truncated JSON,
    /// byte junk, or a well-formed record with an out-of-range
    /// propensity — and check the stream's error contract.
    fn corrupted_line_k_is_reported_exactly_and_the_prefix_survives(
        n in 2usize..20,
        k_raw in 0usize..1000,
        mode in 0u32..3,
        seed in 0u64..1_000_000,
    ) {
        let recs = records(n, seed);
        let text = jsonl(&recs);
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        prop_assert_eq!(lines.len(), n + 1);

        let k = k_raw % n; // corrupted record index
        let line_idx = 1 + k; // index into `lines`
        let physical = line_idx + 1; // 1-based line number on the wire
        lines[line_idx] = match mode {
            // A strict prefix of a JSON object is never valid JSON.
            0 => lines[line_idx][..lines[line_idx].len() / 2 + 1].to_string(),
            1 => "]]this is not json{{".to_string(),
            // Valid JSON, invalid record: patch the propensity value in
            // place to land outside (0, 1]. (`with_propensity` asserts
            // eagerly, so the bad value can only exist on the wire.)
            _ => {
                let orig = &lines[line_idx];
                let pat = "\"propensity\":";
                let start = orig.find(pat).expect("records carry propensities") + pat.len();
                let end = start
                    + orig[start..]
                        .find(|ch: char| ch == ',' || ch == '}')
                        .expect("value is delimited");
                format!("{}5.0{}", &orig[..start], &orig[end..])
            }
        };
        let corrupted = lines.join("\n");

        let mut stream = Trace::stream_jsonl(corrupted.as_bytes()).expect("header is intact");
        let mut streamed = Vec::new();
        let err = loop {
            match stream.next() {
                Some(Ok(rec)) => streamed.push(rec),
                Some(Err(e)) => break e,
                None => panic!("stream ended without reporting the corruption"),
            }
        };

        // Exactly the records before the corruption, byte-identical.
        prop_assert_eq!(streamed.len(), k);
        for (got, want) in streamed.iter().zip(&recs[..k]) {
            prop_assert_eq!(got.to_json().to_string(), want.to_json().to_string());
        }

        // The error names the exact physical line, which the stream's own
        // position agrees with.
        prop_assert_eq!(error_line(&err), Some(physical));
        prop_assert_eq!(stream.line(), physical);
        prop_assert!(
            format!("{err}").contains(&format!("line {physical}")),
            "error message must cite line {}: {}",
            physical,
            err
        );

        // Fused: after the first error the stream yields nothing more.
        prop_assert!(stream.next().is_none());
        prop_assert!(stream.next().is_none());

        // The uncorrupted prefix is a valid trace on its own and the
        // batch loader agrees with the stream record-for-record.
        if k > 0 {
            let prefix_text = lines[..line_idx].join("\n");
            let batch = Trace::read_jsonl(prefix_text.as_bytes()).expect("prefix is valid");
            prop_assert_eq!(batch.len(), streamed.len());
            for (got, want) in batch.records().iter().zip(&streamed) {
                prop_assert_eq!(got.to_json().to_string(), want.to_json().to_string());
            }
        }
    }
}

#[test]
fn an_error_free_stream_matches_the_batch_loader_end_to_end() {
    let recs = records(64, 9);
    let text = jsonl(&recs);
    let stream = Trace::stream_jsonl(text.as_bytes()).unwrap();
    let streamed: Vec<TraceRecord> = stream.map(|r| r.unwrap()).collect();
    let batch = Trace::read_jsonl(text.as_bytes()).unwrap();
    assert_eq!(streamed.len(), batch.len());
    for (got, want) in streamed.iter().zip(batch.records()) {
        assert_eq!(got.to_json().to_string(), want.to_json().to_string());
    }
}
