//! Descriptive trace statistics.
//!
//! Before any off-policy math, an operator should be able to *look at*
//! a trace: which decisions were taken how often, what rewards they drew,
//! how propensities are distributed, whether states are balanced. This
//! module renders that first glance.

use crate::trace::Trace;
use ddn_stats::summary::{Summary, Welford};

/// Per-decision descriptive statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionSummary {
    /// Decision name.
    pub name: String,
    /// Records taking this decision.
    pub count: usize,
    /// Reward summary for those records.
    pub reward: Summary,
    /// Mean logged propensity over those records (`None` when any record
    /// lacks one).
    pub mean_propensity: Option<f64>,
}

/// Whole-trace descriptive statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Per-decision rows in decision-index order.
    pub per_decision: Vec<DecisionSummary>,
    /// Overall reward summary.
    pub reward: Summary,
    /// Fraction of records carrying a state tag.
    pub tagged_fraction: f64,
    /// Fraction of records carrying a propensity.
    pub propensity_fraction: f64,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    pub fn of(trace: &Trace) -> Self {
        let k = trace.space().len();
        let mut counts = vec![0usize; k];
        let mut rewards: Vec<Welford> = vec![Welford::new(); k];
        let mut props = vec![(0.0f64, 0usize); k];
        let mut overall = Welford::new();
        let mut tagged = 0usize;
        let mut with_prop = 0usize;
        for r in trace.records() {
            let d = r.decision.index();
            counts[d] += 1;
            rewards[d].push(r.reward);
            overall.push(r.reward);
            if let Some(p) = r.propensity {
                props[d].0 += p;
                props[d].1 += 1;
                with_prop += 1;
            }
            if r.state.is_some() {
                tagged += 1;
            }
        }
        let per_decision = (0..k)
            .map(|d| DecisionSummary {
                name: trace.space().name(d).to_string(),
                count: counts[d],
                reward: rewards[d].finish(),
                mean_propensity: (props[d].1 == counts[d] && counts[d] > 0)
                    .then(|| props[d].0 / props[d].1 as f64),
            })
            .collect();
        Self {
            per_decision,
            reward: overall.finish(),
            tagged_fraction: tagged as f64 / trace.len() as f64,
            propensity_fraction: with_prop as f64 / trace.len() as f64,
        }
    }

    /// The decision with the most records.
    pub fn modal_decision(&self) -> &DecisionSummary {
        self.per_decision
            .iter()
            .max_by_key(|d| d.count)
            .expect("decision space is non-empty")
    }

    /// Renders the statistics as aligned text.
    pub fn render(&self) -> String {
        let name_w = self
            .per_decision
            .iter()
            .map(|d| d.name.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let mut out = format!(
            "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}\n",
            "decision", "count", "mean r", "std r", "mean prop"
        );
        for d in &self.per_decision {
            out.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>10.4}  {:>10.4}  {:>10}\n",
                d.name,
                d.count,
                d.reward.mean,
                d.reward.std,
                d.mean_propensity
                    .map(|p| format!("{p:.4}"))
                    .unwrap_or_else(|| "-".to_string()),
            ));
        }
        out.push_str(&format!(
            "overall: {} records, mean reward {:.4}, {:.0}% with propensities, {:.0}% state-tagged\n",
            self.reward.count,
            self.reward.mean,
            100.0 * self.propensity_fraction,
            100.0 * self.tagged_fraction,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Context, ContextSchema};
    use crate::decision::{Decision, DecisionSpace};
    use crate::record::{StateTag, TraceRecord};

    fn trace() -> Trace {
        let s = ContextSchema::builder().numeric("x").build();
        let c = |x: f64| Context::build(&s).set_numeric("x", x).finish();
        let recs = vec![
            TraceRecord::new(c(1.0), Decision::from_index(0), 1.0).with_propensity(0.5),
            TraceRecord::new(c(2.0), Decision::from_index(0), 3.0).with_propensity(0.7),
            TraceRecord::new(c(3.0), Decision::from_index(1), 10.0)
                .with_propensity(0.5)
                .with_state(StateTag::LOW_LOAD),
        ];
        Trace::from_records(s, DecisionSpace::of(&["a", "b", "c"]), recs).unwrap()
    }

    #[test]
    fn per_decision_rollups() {
        let st = TraceStats::of(&trace());
        assert_eq!(st.per_decision.len(), 3);
        let a = &st.per_decision[0];
        assert_eq!(a.count, 2);
        assert!((a.reward.mean - 2.0).abs() < 1e-12);
        assert_eq!(a.mean_propensity, Some(0.6));
        let c = &st.per_decision[2];
        assert_eq!(c.count, 0);
        assert!(c.reward.mean.is_nan() || c.reward.count == 0);
        assert_eq!(st.modal_decision().name, "a");
    }

    #[test]
    fn fractions_computed() {
        let st = TraceStats::of(&trace());
        assert!((st.propensity_fraction - 1.0).abs() < 1e-12);
        assert!((st.tagged_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((st.reward.mean - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_rows() {
        let text = TraceStats::of(&trace()).render();
        assert!(text.contains("decision"));
        assert!(text.contains("overall: 3 records"));
        assert!(text.lines().count() >= 5);
    }
}
