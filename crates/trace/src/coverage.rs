//! Coverage diagnostics and empirical propensity estimation.
//!
//! Two of the paper's pitfalls are fundamentally *coverage* problems:
//!
//! - §2.2.1: "we have insufficient data to estimate a reliable model" for
//!   some subpopulations (e.g. clients in city X using server Y in CDN Z);
//! - §2.2.2: matching estimators (CFA) find few or no records whose logged
//!   decision agrees with the new policy.
//!
//! [`CoverageReport`] quantifies both before any estimation happens, and
//! [`EmpiricalPropensity`] estimates `μ_old(d | c)` from the trace itself
//! when the logging policy is unknown (§2.1).

use crate::context::ContextKey;
use crate::trace::Trace;
use std::collections::HashMap;

/// Summary of how well a trace covers its context × decision space.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Number of distinct contexts (by exact feature match).
    pub distinct_contexts: usize,
    /// Number of decisions that appear at least once.
    pub decisions_seen: usize,
    /// Total decisions in the space.
    pub decisions_total: usize,
    /// Count of records per decision index.
    pub per_decision: Vec<usize>,
    /// Number of (context, decision) cells observed.
    pub cells_seen: usize,
    /// Fraction of the `distinct_contexts × decisions_total` grid observed.
    pub cell_fill: f64,
    /// Size of the smallest non-empty per-decision count.
    pub min_decision_count: usize,
}

impl CoverageReport {
    /// Computes coverage over a trace.
    pub fn of(trace: &Trace) -> Self {
        let k = trace.space().len();
        let mut per_decision = vec![0usize; k];
        let mut contexts: HashMap<ContextKey, ()> = HashMap::new();
        let mut cells: HashMap<(ContextKey, usize), ()> = HashMap::new();
        for r in trace.records() {
            per_decision[r.decision.index()] += 1;
            let key = r.context.key();
            contexts.insert(key.clone(), ());
            cells.insert((key, r.decision.index()), ());
        }
        let decisions_seen = per_decision.iter().filter(|&&c| c > 0).count();
        let distinct_contexts = contexts.len();
        let cells_seen = cells.len();
        let grid = distinct_contexts * k;
        let min_decision_count = per_decision
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .min()
            .unwrap_or(0);
        Self {
            distinct_contexts,
            decisions_seen,
            decisions_total: k,
            per_decision,
            cells_seen,
            cell_fill: if grid == 0 {
                0.0
            } else {
                cells_seen as f64 / grid as f64
            },
            min_decision_count,
        }
    }

    /// True when some decision never appears — IPS for a policy that picks
    /// that decision is undefined (infinite-variance in the limit); paper
    /// §4.1 "Coverage and randomness".
    pub fn has_unseen_decisions(&self) -> bool {
        self.decisions_seen < self.decisions_total
    }
}

/// Empirical logging-policy estimate `μ̂_old(d | c)` from trace counts.
///
/// Per-context counts with add-λ (Laplace) smoothing, falling back to the
/// marginal decision distribution for contexts never seen. This is the
/// standard recourse when a production trace lacks logged propensities.
#[derive(Debug, Clone)]
pub struct EmpiricalPropensity {
    per_context: HashMap<ContextKey, Vec<f64>>,
    marginal: Vec<f64>,
    decisions: usize,
    smoothing: f64,
}

impl EmpiricalPropensity {
    /// Fits propensities from a trace with add-`smoothing` regularization
    /// (`smoothing > 0` guarantees every propensity is strictly positive,
    /// which IPS needs).
    ///
    /// # Panics
    /// Panics if `smoothing < 0`.
    pub fn fit(trace: &Trace, smoothing: f64) -> Self {
        assert!(smoothing >= 0.0, "smoothing must be non-negative");
        let k = trace.space().len();
        let mut counts: HashMap<ContextKey, Vec<f64>> = HashMap::new();
        let mut marginal = vec![smoothing; k];
        for r in trace.records() {
            let entry = counts
                .entry(r.context.key())
                .or_insert_with(|| vec![smoothing; k]);
            entry[r.decision.index()] += 1.0;
            marginal[r.decision.index()] += 1.0;
        }
        let normalize = |v: &mut Vec<f64>| {
            let total: f64 = v.iter().sum();
            if total > 0.0 {
                for x in v.iter_mut() {
                    *x /= total;
                }
            }
        };
        let mut per_context = counts;
        for v in per_context.values_mut() {
            normalize(v);
        }
        normalize(&mut marginal);
        Self {
            per_context,
            marginal,
            decisions: k,
            smoothing,
        }
    }

    /// Estimated probability that the logging policy chose decision `d`
    /// for context `c`.
    pub fn prob(&self, c: &crate::context::Context, d: crate::decision::Decision) -> f64 {
        let idx = d.index();
        assert!(idx < self.decisions, "decision out of range");
        match self.per_context.get(&c.key()) {
            Some(p) => p[idx],
            None => self.marginal[idx],
        }
    }

    /// The marginal (context-free) decision distribution.
    pub fn marginal(&self) -> &[f64] {
        &self.marginal
    }

    /// The smoothing constant used at fit time.
    pub fn smoothing(&self) -> f64 {
        self.smoothing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Context, ContextSchema};
    use crate::decision::{Decision, DecisionSpace};
    use crate::record::TraceRecord;

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    fn make_trace(pairs: &[(u32, usize)]) -> Trace {
        let s = schema();
        let records = pairs
            .iter()
            .map(|&(g, d)| {
                let c = Context::build(&s).set_cat("g", g).finish();
                TraceRecord::new(c, Decision::from_index(d), 1.0)
            })
            .collect();
        Trace::from_records(s, DecisionSpace::of(&["x", "y", "z"]), records).unwrap()
    }

    #[test]
    fn coverage_counts() {
        let t = make_trace(&[(0, 0), (0, 0), (0, 1), (1, 0)]);
        let c = CoverageReport::of(&t);
        assert_eq!(c.distinct_contexts, 2);
        assert_eq!(c.decisions_seen, 2);
        assert_eq!(c.decisions_total, 3);
        assert!(c.has_unseen_decisions());
        assert_eq!(c.per_decision, vec![3, 1, 0]);
        assert_eq!(c.cells_seen, 3); // (0,d0) (0,d1) (1,d0)
        assert!((c.cell_fill - 3.0 / 6.0).abs() < 1e-12);
        assert_eq!(c.min_decision_count, 1);
    }

    #[test]
    fn full_coverage_detected() {
        let t = make_trace(&[(0, 0), (0, 1), (0, 2)]);
        let c = CoverageReport::of(&t);
        assert!(!c.has_unseen_decisions());
        assert_eq!(c.cell_fill, 1.0);
    }

    #[test]
    fn empirical_propensity_matches_frequencies() {
        // Context g=0 logged: d0 ×3, d1 ×1. Unsmoothed: 0.75 / 0.25 / 0.
        let t = make_trace(&[(0, 0), (0, 0), (0, 0), (0, 1)]);
        let p = EmpiricalPropensity::fit(&t, 0.0);
        let s = schema();
        let c0 = Context::build(&s).set_cat("g", 0).finish();
        assert!((p.prob(&c0, Decision::from_index(0)) - 0.75).abs() < 1e-12);
        assert!((p.prob(&c0, Decision::from_index(1)) - 0.25).abs() < 1e-12);
        assert_eq!(p.prob(&c0, Decision::from_index(2)), 0.0);
    }

    #[test]
    fn smoothing_keeps_probabilities_positive() {
        let t = make_trace(&[(0, 0)]);
        let p = EmpiricalPropensity::fit(&t, 1.0);
        let s = schema();
        let c0 = Context::build(&s).set_cat("g", 0).finish();
        for d in 0..3 {
            assert!(p.prob(&c0, Decision::from_index(d)) > 0.0);
        }
        let total: f64 = (0..3).map(|d| p.prob(&c0, Decision::from_index(d))).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unseen_context_falls_back_to_marginal() {
        let t = make_trace(&[(0, 0), (0, 1)]);
        let p = EmpiricalPropensity::fit(&t, 0.0);
        let s = schema();
        let c1 = Context::build(&s).set_cat("g", 1).finish();
        assert!((p.prob(&c1, Decision::from_index(0)) - 0.5).abs() < 1e-12);
        assert!((p.prob(&c1, Decision::from_index(1)) - 0.5).abs() < 1e-12);
    }
}
