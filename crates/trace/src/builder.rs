//! Ergonomic trace construction.
//!
//! [`TraceBuilder`] removes the boilerplate of assembling record vectors:
//! it carries the schema and decision space, offers a one-call
//! [`TraceBuilder::log`] that samples a policy-like closure, records the
//! propensity, and appends — the exact shape of a production logging
//! hook — and validates once at [`TraceBuilder::finish`].

use crate::context::{Context, ContextSchema};
use crate::decision::{Decision, DecisionSpace};
use crate::error::TraceError;
use crate::record::{StateTag, TraceRecord};
use crate::trace::Trace;

/// Incremental builder for [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    schema: ContextSchema,
    space: DecisionSpace,
    records: Vec<TraceRecord>,
}

impl TraceBuilder {
    /// Starts a builder for the given schema and decision space.
    pub fn new(schema: ContextSchema, space: DecisionSpace) -> Self {
        Self {
            schema,
            space,
            records: Vec::new(),
        }
    }

    /// The schema records must conform to.
    pub fn schema(&self) -> &ContextSchema {
        &self.schema
    }

    /// The decision space records must index into.
    pub fn space(&self) -> &DecisionSpace {
        &self.space
    }

    /// Number of records buffered so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a fully formed record.
    pub fn push(&mut self, record: TraceRecord) -> &mut Self {
        self.records.push(record);
        self
    }

    /// Appends the mandatory triple with no metadata.
    pub fn observe(&mut self, ctx: Context, d: Decision, reward: f64) -> &mut Self {
        self.push(TraceRecord::new(ctx, d, reward))
    }

    /// The production logging hook: takes the decision and its sampling
    /// probability together (as returned by
    /// `Policy::sample_with_prob`), plus the realized reward.
    pub fn log(
        &mut self,
        ctx: Context,
        decision_with_prob: (Decision, f64),
        reward: f64,
    ) -> &mut Self {
        let (d, p) = decision_with_prob;
        self.push(TraceRecord::new(ctx, d, reward).with_propensity(p))
    }

    /// Like [`TraceBuilder::log`] but also tagging the system state.
    pub fn log_in_state(
        &mut self,
        ctx: Context,
        decision_with_prob: (Decision, f64),
        reward: f64,
        state: StateTag,
    ) -> &mut Self {
        let (d, p) = decision_with_prob;
        self.push(
            TraceRecord::new(ctx, d, reward)
                .with_propensity(p)
                .with_state(state),
        )
    }

    /// Validates everything and produces the trace.
    pub fn finish(self) -> Result<Trace, TraceError> {
        Trace::from_records(self.schema, self.space, self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts() -> (ContextSchema, DecisionSpace) {
        (
            ContextSchema::builder().numeric("x").build(),
            DecisionSpace::of(&["a", "b"]),
        )
    }

    fn ctx(schema: &ContextSchema, x: f64) -> Context {
        Context::build(schema).set_numeric("x", x).finish()
    }

    #[test]
    fn builds_a_valid_trace() {
        let (schema, space) = parts();
        let mut b = TraceBuilder::new(schema.clone(), space.clone());
        assert!(b.is_empty());
        b.observe(ctx(&schema, 1.0), space.decision(0), 2.0)
            .log(ctx(&schema, 2.0), (space.decision(1), 0.5), 3.0)
            .log_in_state(
                ctx(&schema, 3.0),
                (space.decision(0), 0.25),
                4.0,
                StateTag::HIGH_LOAD,
            );
        assert_eq!(b.len(), 3);
        let t = b.finish().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[1].propensity, Some(0.5));
        assert_eq!(t.records()[2].state, Some(StateTag::HIGH_LOAD));
    }

    #[test]
    fn empty_builder_errors_at_finish() {
        let (schema, space) = parts();
        assert!(matches!(
            TraceBuilder::new(schema, space).finish(),
            Err(TraceError::Empty)
        ));
    }

    #[test]
    fn invalid_records_error_at_finish() {
        let (schema, space) = parts();
        let mut b = TraceBuilder::new(schema.clone(), space);
        b.observe(ctx(&schema, 1.0), Decision::from_index(9), 1.0);
        assert!(matches!(
            b.finish(),
            Err(TraceError::DecisionOutOfRange { index: 9, .. })
        ));
    }
}
