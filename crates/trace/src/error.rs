//! Error type shared by trace construction, validation and I/O.

use std::fmt;

/// Errors arising while building, validating, or (de)serializing traces.
#[derive(Debug)]
pub enum TraceError {
    /// A record's decision index falls outside the trace's decision space.
    DecisionOutOfRange {
        /// Record position in the trace.
        record: usize,
        /// Offending decision index.
        index: usize,
        /// Size of the decision space.
        space: usize,
    },
    /// A record's context does not match the trace schema.
    SchemaMismatch {
        /// Record position in the trace.
        record: usize,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An estimator required the logging propensity but the record lacks it.
    MissingPropensity {
        /// Record position in the trace.
        record: usize,
    },
    /// A record's propensity is outside `(0, 1]`.
    InvalidPropensity {
        /// Record position in the trace.
        record: usize,
        /// Offending value.
        value: f64,
    },
    /// Timestamps are present but not non-decreasing.
    UnorderedTimestamps {
        /// Position of the first out-of-order record.
        record: usize,
    },
    /// The trace is empty where at least one record is required.
    Empty,
    /// An I/O error during JSONL reading/writing.
    Io(std::io::Error),
    /// A JSON (de)serialization error, with the offending line number when
    /// reading JSONL.
    Json {
        /// 1-based line number, when applicable.
        line: Option<usize>,
        /// Underlying JSON parse/shape error.
        source: ddn_stats::JsonError,
    },
    /// A record parsed as JSON but failed validation while reading JSONL;
    /// wraps the validation error with the offending input line, so a bad
    /// line in a multi-gigabyte trace file can be found without counting
    /// records by hand.
    InvalidRecordLine {
        /// 1-based line number in the JSONL input.
        line: usize,
        /// The underlying validation error (which names the record
        /// position within the stream).
        source: Box<TraceError>,
    },
}

impl TraceError {
    /// Wraps a validation error with the JSONL line it arose from. Errors
    /// that already carry a line number are returned unchanged.
    pub fn at_line(self, line: usize) -> TraceError {
        match self {
            TraceError::Json { .. } | TraceError::InvalidRecordLine { .. } | TraceError::Io(_) => {
                self
            }
            other => TraceError::InvalidRecordLine {
                line,
                source: Box::new(other),
            },
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::DecisionOutOfRange {
                record,
                index,
                space,
            } => write!(
                f,
                "record {record}: decision index {index} out of range for space of {space}"
            ),
            TraceError::SchemaMismatch { record, detail } => {
                write!(
                    f,
                    "record {record}: context does not match schema: {detail}"
                )
            }
            TraceError::MissingPropensity { record } => {
                write!(f, "record {record}: logging propensity required but absent")
            }
            TraceError::InvalidPropensity { record, value } => {
                write!(f, "record {record}: propensity {value} outside (0, 1]")
            }
            TraceError::UnorderedTimestamps { record } => {
                write!(f, "record {record}: timestamp decreases")
            }
            TraceError::Empty => write!(f, "trace must contain at least one record"),
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Json {
                line: Some(l),
                source,
            } => {
                write!(f, "trace JSON error at line {l}: {source}")
            }
            TraceError::Json { line: None, source } => write!(f, "trace JSON error: {source}"),
            TraceError::InvalidRecordLine { line, source } => {
                write!(f, "trace line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Json { source, .. } => Some(source),
            TraceError::InvalidRecordLine { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TraceError::DecisionOutOfRange {
            record: 3,
            index: 9,
            space: 4,
        };
        let s = e.to_string();
        assert!(
            s.contains("record 3") && s.contains('9') && s.contains('4'),
            "{s}"
        );

        let e = TraceError::MissingPropensity { record: 0 };
        assert!(e.to_string().contains("propensity"));
    }

    #[test]
    fn at_line_wraps_validation_errors_once() {
        let e = TraceError::MissingPropensity { record: 3 }.at_line(5);
        assert!(matches!(
            e,
            TraceError::InvalidRecordLine { line: 5, ref source }
                if matches!(**source, TraceError::MissingPropensity { record: 3 })
        ));
        let s = e.to_string();
        assert!(s.contains("line 5") && s.contains("record 3"), "{s}");
        assert!(std::error::Error::source(&e).is_some());
        // Errors already carrying a line stay as they are.
        let again = e.at_line(9);
        assert!(matches!(again, TraceError::InvalidRecordLine { line: 5, .. }));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: TraceError = io.into();
        assert!(matches!(e, TraceError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
