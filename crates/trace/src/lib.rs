//! # ddn-trace — the trace data model
//!
//! Trace-driven evaluation (paper §2.1) operates on a *trace*: a sequence of
//! tuples `(c_k, d_k, r_k)` of client-context, decision, and observed reward,
//! logged while an **old** policy `μ_old` was making decisions. This crate
//! defines that data model and everything needed to move traces around:
//!
//! - [`ContextSchema`] / [`Context`] — featurized client-contexts mixing
//!   categorical features (ISP, CDN, device, NAT-ed?) and numeric features
//!   (RTT, throughput, buffer level).
//! - [`DecisionSpace`] / [`Decision`] — the finite decision set `D`
//!   (which CDN, which bitrate, which relay, which frontend/backend).
//! - [`TraceRecord`] — one logged tuple, optionally carrying the logging
//!   propensity `μ_old(d_k | c_k)`, a system-state tag (paper §4.1/§4.3) and
//!   a timestamp.
//! - [`Trace`] — a validated collection of records with the schema and
//!   decision space they conform to; JSONL (de)serialization so real
//!   telemetry pipelines can feed the estimators.
//! - [`coverage`] — subpopulation coverage statistics and empirical
//!   propensity estimation for traces whose logging policy is unknown
//!   (§2.1: "In practice, it may be necessary to estimate this probability
//!   from the trace").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod context;
pub mod coverage;
pub mod decision;
pub mod error;
pub mod record;
pub mod stats;
pub mod trace;

pub use builder::TraceBuilder;
pub use context::{
    Context, ContextBuilder, ContextKey, ContextSchema, FeatureKind, FeatureValue, SchemaBuilder,
};
pub use coverage::{CoverageReport, EmpiricalPropensity};
pub use decision::{Decision, DecisionSpace};
pub use error::TraceError;
pub use record::{StateTag, TraceRecord};
pub use stats::{DecisionSummary, TraceStats};
pub use trace::{Trace, TraceStream};
