//! Decision spaces and decisions (paper §2.1: "a set of possible decisions
//! d ∈ D").
//!
//! Decisions are indices into a named, finite [`DecisionSpace`]. Networking
//! decision spaces are usually small products (CDN × bitrate, FE × BE,
//! direct-vs-relay), so the space also offers a cartesian-product
//! constructor that keeps human-readable names.

use ddn_stats::{Json, JsonError};
use std::fmt;
use std::sync::Arc;

/// A finite, named set of decisions.
///
/// Cheap to clone (reference-counted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionSpace {
    names: Arc<Vec<String>>,
}

impl DecisionSpace {
    /// Creates a decision space from decision names.
    ///
    /// # Panics
    /// Panics if `names` is empty or contains duplicates.
    pub fn new(names: Vec<String>) -> Self {
        assert!(!names.is_empty(), "decision space must be non-empty");
        for (i, n) in names.iter().enumerate() {
            assert!(!names[..i].contains(n), "duplicate decision name {n:?}");
        }
        Self {
            names: Arc::new(names),
        }
    }

    /// Convenience constructor from string slices.
    pub fn of(names: &[&str]) -> Self {
        Self::new(names.iter().map(|s| s.to_string()).collect())
    }

    /// Cartesian product of two axes, producing names `"a/b"`.
    ///
    /// E.g. `product(&["cdn1","cdn2"], &["360p","720p"])` yields the
    /// four CDN-and-bitrate decisions of the CFA scenario.
    pub fn product(a: &[&str], b: &[&str]) -> Self {
        assert!(
            !a.is_empty() && !b.is_empty(),
            "product axes must be non-empty"
        );
        let mut names = Vec::with_capacity(a.len() * b.len());
        for x in a {
            for y in b {
                names.push(format!("{x}/{y}"));
            }
        }
        Self::new(names)
    }

    /// Number of decisions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the space is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of decision `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// All decision names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of the decision with the given name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The decision with index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn decision(&self, i: usize) -> Decision {
        assert!(
            i < self.len(),
            "decision index {i} out of range 0..{}",
            self.len()
        );
        Decision(i as u32)
    }

    /// Iterates over all decisions in index order.
    pub fn iter(&self) -> impl Iterator<Item = Decision> + '_ {
        (0..self.len()).map(|i| Decision(i as u32))
    }

    /// Serializes in the old serde wire format: the `Arc` is transparent,
    /// so `{"names":["a","b"]}`.
    pub fn to_json(&self) -> Json {
        Json::object(vec![(
            "names",
            Json::Array(self.names.iter().map(Json::str).collect()),
        )])
    }

    /// Parses the wire format of [`DecisionSpace::to_json`]. Like the old
    /// serde path, this does not re-run the constructor's duplicate check;
    /// [`crate::Trace::from_records`] validates decisions against the space.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let names = v
            .field("names")?
            .expect_array("decision names")?
            .iter()
            .map(|n| n.expect_str("decision name").map(str::to_string))
            .collect::<Result<Vec<_>, _>>()?;
        if names.is_empty() {
            return Err(JsonError::msg("decision space must be non-empty"));
        }
        Ok(Self {
            names: Arc::new(names),
        })
    }
}

/// One decision: an index into a [`DecisionSpace`].
///
/// Serializes transparently as its index (newtype structs have no wrapper
/// on the wire): `Decision(2)` → `2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Decision(u32);

impl Decision {
    /// Creates a decision from a raw index. Prefer
    /// [`DecisionSpace::decision`], which validates the range.
    pub fn from_index(i: usize) -> Self {
        Self(i as u32)
    }

    /// The decision's index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Serializes as the bare index.
    pub fn to_json(&self) -> Json {
        Json::Int(i64::from(self.0))
    }

    /// Parses a bare index.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.expect_u32("decision index").map(Decision)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let s = DecisionSpace::of(&["cdn-a", "cdn-b", "cdn-c"]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.name(1), "cdn-b");
        assert_eq!(s.position("cdn-c"), Some(2));
        assert_eq!(s.position("x"), None);
        assert_eq!(s.decision(2).index(), 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_space_panics() {
        let _ = DecisionSpace::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate decision name")]
    fn duplicate_name_panics() {
        let _ = DecisionSpace::of(&["a", "a"]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_decision_panics() {
        let s = DecisionSpace::of(&["a"]);
        let _ = s.decision(1);
    }

    #[test]
    fn product_space() {
        let s = DecisionSpace::product(&["cdn1", "cdn2"], &["360p", "720p", "1080p"]);
        assert_eq!(s.len(), 6);
        assert_eq!(s.name(0), "cdn1/360p");
        assert_eq!(s.name(5), "cdn2/1080p");
    }

    #[test]
    fn iter_covers_all() {
        let s = DecisionSpace::of(&["a", "b"]);
        let all: Vec<usize> = s.iter().map(|d| d.index()).collect();
        assert_eq!(all, vec![0, 1]);
    }

    #[test]
    fn json_roundtrip() {
        let s = DecisionSpace::of(&["a", "b"]);
        let json = s.to_json().to_string();
        assert_eq!(json, r#"{"names":["a","b"]}"#);
        let back = DecisionSpace::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(s, back);
        // Decisions serialize as bare indices.
        assert_eq!(s.decision(1).to_json().to_string(), "1");
        assert_eq!(
            Decision::from_json(&Json::parse("1").unwrap()).unwrap(),
            s.decision(1)
        );
    }
}
