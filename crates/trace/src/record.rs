//! Individual trace records: the `(c_k, d_k, r_k)` tuples of paper §2.1,
//! extended with the metadata the paper's §4 extensions need.

use crate::context::Context;
use crate::decision::Decision;
use ddn_stats::{Json, JsonError};

/// A coarse system-state label attached to a record (paper §4.1 "System
/// state of the world", §4.3 "low load / high load / overload").
///
/// State-aware estimation only reuses records whose state matches the
/// state being evaluated, or transports rewards across states through a
/// transition model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateTag(pub u32);

impl StateTag {
    /// Conventional label for a lightly loaded system (e.g. early-morning
    /// trace collection in the paper's server-selection example).
    pub const LOW_LOAD: StateTag = StateTag(0);
    /// Conventional label for a highly loaded system (peak hours).
    pub const HIGH_LOAD: StateTag = StateTag(1);
    /// Conventional label for an overloaded system.
    pub const OVERLOAD: StateTag = StateTag(2);
}

/// One logged tuple: a client-context, the decision the old policy made for
/// it, and the observed reward — plus optional logging metadata.
///
/// On the wire, unset optional fields are omitted entirely (the old serde
/// derives used `skip_serializing_if = "Option::is_none"`), so minimal
/// records are three fields and fully annotated records are six.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// The client-context `c_k`.
    pub context: Context,
    /// The decision `d_k` taken by the logging (old) policy.
    pub decision: Decision,
    /// The observed reward `r_k` (performance metric; higher is better).
    pub reward: f64,
    /// The logging propensity `μ_old(d_k | c_k)`, when known.
    ///
    /// `None` means the logging policy is unknown and must be estimated
    /// from the trace (see `coverage::EmpiricalPropensity`).
    pub propensity: Option<f64>,
    /// System-state tag at logging time, when known.
    pub state: Option<StateTag>,
    /// Logging timestamp (simulation seconds), when known. Records in a
    /// trace are expected to be in non-decreasing timestamp order.
    pub timestamp: Option<f64>,
}

impl TraceRecord {
    /// Creates a record with the mandatory fields.
    ///
    /// # Panics
    /// Panics if `reward` is non-finite.
    pub fn new(context: Context, decision: Decision, reward: f64) -> Self {
        assert!(reward.is_finite(), "reward must be finite, got {reward}");
        Self {
            context,
            decision,
            reward,
            propensity: None,
            state: None,
            timestamp: None,
        }
    }

    /// Attaches the logging propensity.
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn with_propensity(mut self, p: f64) -> Self {
        assert!(
            p.is_finite() && p > 0.0 && p <= 1.0,
            "propensity must be in (0, 1], got {p}"
        );
        self.propensity = Some(p);
        self
    }

    /// Attaches a system-state tag.
    pub fn with_state(mut self, state: StateTag) -> Self {
        self.state = Some(state);
        self
    }

    /// Attaches a timestamp.
    ///
    /// # Panics
    /// Panics if `t` is non-finite or negative.
    pub fn with_timestamp(mut self, t: f64) -> Self {
        assert!(
            t.is_finite() && t >= 0.0,
            "timestamp must be finite and non-negative"
        );
        self.timestamp = Some(t);
        self
    }

    /// The propensity, or an error message naming the record position.
    /// Estimators that require propensities use this.
    pub fn require_propensity(&self, k: usize) -> Result<f64, crate::TraceError> {
        self.propensity
            .ok_or(crate::TraceError::MissingPropensity { record: k })
    }

    /// Serializes in the old serde wire format; unset optional fields are
    /// omitted.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("context", self.context.to_json()),
            ("decision", self.decision.to_json()),
            ("reward", Json::Num(self.reward)),
        ];
        if let Some(p) = self.propensity {
            fields.push(("propensity", Json::Num(p)));
        }
        if let Some(StateTag(s)) = self.state {
            fields.push(("state", Json::Int(i64::from(s))));
        }
        if let Some(t) = self.timestamp {
            fields.push(("timestamp", Json::Num(t)));
        }
        Json::object(fields)
    }

    /// Parses the wire format of [`TraceRecord::to_json`]. Absent optional
    /// fields default to `None`; unknown fields are ignored. Range checks
    /// (propensity in `(0, 1]`, timestamp ordering) are applied by
    /// [`crate::Trace::from_records`], matching the old serde behavior of
    /// validating after deserialization.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let context = Context::from_json(v.field("context")?)?;
        let decision = Decision::from_json(v.field("decision")?)?;
        let reward = v.field("reward")?.expect_f64("reward")?;
        let propensity = v
            .get("propensity")
            .map(|p| p.expect_f64("propensity"))
            .transpose()?;
        let state = v
            .get("state")
            .map(|s| s.expect_u32("state tag").map(StateTag))
            .transpose()?;
        let timestamp = v
            .get("timestamp")
            .map(|t| t.expect_f64("timestamp"))
            .transpose()?;
        Ok(Self {
            context,
            decision,
            reward,
            propensity,
            state,
            timestamp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextSchema;

    fn ctx() -> Context {
        let s = ContextSchema::builder().numeric("x").build();
        Context::build(&s).set_numeric("x", 1.0).finish()
    }

    #[test]
    fn builder_chain() {
        let r = TraceRecord::new(ctx(), Decision::from_index(2), 0.8)
            .with_propensity(0.25)
            .with_state(StateTag::HIGH_LOAD)
            .with_timestamp(12.5);
        assert_eq!(r.decision.index(), 2);
        assert_eq!(r.reward, 0.8);
        assert_eq!(r.propensity, Some(0.25));
        assert_eq!(r.state, Some(StateTag::HIGH_LOAD));
        assert_eq!(r.timestamp, Some(12.5));
    }

    #[test]
    #[should_panic(expected = "reward must be finite")]
    fn nan_reward_panics() {
        let _ = TraceRecord::new(ctx(), Decision::from_index(0), f64::NAN);
    }

    #[test]
    #[should_panic(expected = "propensity must be in (0, 1]")]
    fn zero_propensity_panics() {
        let _ = TraceRecord::new(ctx(), Decision::from_index(0), 1.0).with_propensity(0.0);
    }

    #[test]
    #[should_panic(expected = "propensity must be in (0, 1]")]
    fn over_one_propensity_panics() {
        let _ = TraceRecord::new(ctx(), Decision::from_index(0), 1.0).with_propensity(1.5);
    }

    #[test]
    fn require_propensity_errors_when_missing() {
        let r = TraceRecord::new(ctx(), Decision::from_index(0), 1.0);
        let err = r.require_propensity(7).unwrap_err();
        assert!(matches!(
            err,
            crate::TraceError::MissingPropensity { record: 7 }
        ));
    }

    #[test]
    fn json_roundtrip_preserves_options() {
        let r = TraceRecord::new(ctx(), Decision::from_index(1), 0.5).with_propensity(0.5);
        let json = r.to_json().to_string();
        assert!(
            !json.contains("state"),
            "unset options should be omitted: {json}"
        );
        let back = TraceRecord::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn record_wire_format_matches_serde() {
        // Pinned against the old serde output so traces written before the
        // hermetic JSON module stay loadable.
        let r = TraceRecord::new(ctx(), Decision::from_index(1), 0.5)
            .with_propensity(0.25)
            .with_state(StateTag::HIGH_LOAD)
            .with_timestamp(12.5);
        assert_eq!(
            r.to_json().to_string(),
            r#"{"context":{"values":[1.0]},"decision":1,"reward":0.5,"propensity":0.25,"state":1,"timestamp":12.5}"#
        );
    }
}
