//! Client-contexts: featurized summaries of client and contextual
//! information (paper §2.1, "client or client-context").
//!
//! A [`ContextSchema`] names the features and fixes their kinds; a
//! [`Context`] holds one client's feature values conforming to a schema.
//! Categorical values are stored as `u32` codes, numeric values as `f64`.
//! Contexts are hashable/comparable so tabular models and matching
//! estimators can group identical clients (numeric values compare by bit
//! pattern, which is exact for the deterministic simulators here).

use ddn_stats::{Json, JsonError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The kind of one feature in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeatureKind {
    /// Categorical feature with the given number of levels (codes
    /// `0..cardinality`).
    Categorical {
        /// Number of levels this feature can take.
        cardinality: u32,
    },
    /// Real-valued feature.
    Numeric,
}

/// Immutable description of the feature vector layout shared by every
/// context in a trace.
///
/// Schemas are reference-counted: cloning is cheap and contexts referencing
/// the same schema share it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextSchema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug, PartialEq, Eq)]
struct SchemaInner {
    names: Vec<String>,
    kinds: Vec<FeatureKind>,
    // Not serialized; rebuilt via `reindexed` after deserialization.
    index: HashMap<String, usize>,
}

impl FeatureKind {
    /// Serializes in the wire format of the original serde derive:
    /// externally tagged, so `{"Categorical":{"cardinality":3}}` or the
    /// bare string `"Numeric"`.
    pub fn to_json(&self) -> Json {
        match self {
            FeatureKind::Categorical { cardinality } => Json::object(vec![(
                "Categorical",
                Json::object(vec![("cardinality", Json::Int(i64::from(*cardinality)))]),
            )]),
            FeatureKind::Numeric => Json::str("Numeric"),
        }
    }

    /// Parses the wire format of [`FeatureKind::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(s) = v.as_str() {
            return match s {
                "Numeric" => Ok(FeatureKind::Numeric),
                other => Err(JsonError::msg(format!("unknown feature kind {other:?}"))),
            };
        }
        let cardinality = v
            .field("Categorical")?
            .field("cardinality")?
            .expect_u32("cardinality")?;
        Ok(FeatureKind::Categorical { cardinality })
    }
}

impl ContextSchema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            names: Vec::new(),
            kinds: Vec::new(),
        }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.inner.names.len()
    }

    /// Whether the schema has zero features.
    pub fn is_empty(&self) -> bool {
        self.inner.names.is_empty()
    }

    /// Feature names in declaration order.
    pub fn names(&self) -> &[String] {
        &self.inner.names
    }

    /// Feature kinds in declaration order.
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.inner.kinds
    }

    /// Index of the feature named `name`, if present.
    pub fn position(&self, name: &str) -> Option<usize> {
        if self.inner.index.is_empty() {
            // Deserialized schemas skip the index; fall back to scan.
            self.inner.names.iter().position(|n| n == name)
        } else {
            self.inner.index.get(name).copied()
        }
    }

    /// Serializes in the wire format of the original serde derive: the
    /// `Arc` is transparent, so `{"inner":{"names":[...],"kinds":[...]}}`
    /// with the name index skipped.
    pub fn to_json(&self) -> Json {
        Json::object(vec![(
            "inner",
            Json::object(vec![
                (
                    "names",
                    Json::Array(self.inner.names.iter().map(Json::str).collect()),
                ),
                (
                    "kinds",
                    Json::Array(self.inner.kinds.iter().map(FeatureKind::to_json).collect()),
                ),
            ]),
        )])
    }

    /// Parses the wire format of [`ContextSchema::to_json`]. Like the old
    /// serde path, the name index is left empty; call
    /// [`ContextSchema::reindexed`] to populate it.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let inner = v.field("inner")?;
        let names = inner
            .field("names")?
            .expect_array("schema names")?
            .iter()
            .map(|n| n.expect_str("feature name").map(str::to_string))
            .collect::<Result<Vec<_>, _>>()?;
        let kinds = inner
            .field("kinds")?
            .expect_array("schema kinds")?
            .iter()
            .map(FeatureKind::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if names.len() != kinds.len() {
            return Err(JsonError::msg(format!(
                "schema has {} names but {} kinds",
                names.len(),
                kinds.len()
            )));
        }
        Ok(ContextSchema {
            inner: Arc::new(SchemaInner {
                names,
                kinds,
                index: HashMap::new(),
            }),
        })
    }

    /// Rebuilds a schema after deserialization so the name index is
    /// populated. JSONL loading in [`crate::Trace`] calls this.
    pub fn reindexed(&self) -> ContextSchema {
        let mut b = ContextSchema::builder();
        for (n, k) in self.inner.names.iter().zip(&self.inner.kinds) {
            b = match k {
                FeatureKind::Categorical { cardinality } => b.categorical(n, *cardinality),
                FeatureKind::Numeric => b.numeric(n),
            };
        }
        b.build()
    }
}

/// Builder for [`ContextSchema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    names: Vec<String>,
    kinds: Vec<FeatureKind>,
}

impl SchemaBuilder {
    /// Adds a categorical feature with `cardinality` levels.
    ///
    /// # Panics
    /// Panics on duplicate names or zero cardinality.
    pub fn categorical(mut self, name: &str, cardinality: u32) -> Self {
        assert!(
            cardinality > 0,
            "categorical feature {name:?} needs at least one level"
        );
        self.push(name, FeatureKind::Categorical { cardinality });
        self
    }

    /// Adds a numeric feature.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn numeric(mut self, name: &str) -> Self {
        self.push(name, FeatureKind::Numeric);
        self
    }

    fn push(&mut self, name: &str, kind: FeatureKind) {
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate feature name {name:?}"
        );
        self.names.push(name.to_string());
        self.kinds.push(kind);
    }

    /// Finalizes the schema.
    pub fn build(self) -> ContextSchema {
        let index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        ContextSchema {
            inner: Arc::new(SchemaInner {
                names: self.names,
                kinds: self.kinds,
                index,
            }),
        }
    }
}

/// One feature value.
///
/// On the wire this is untagged: categorical codes are integer literals
/// (`3`), numeric values are floats (`3.0`) — the writer and parser keep
/// that distinction via [`Json::Int`] vs [`Json::Num`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureValue {
    /// Categorical code.
    Cat(u32),
    /// Numeric value.
    Num(f64),
}

impl FeatureValue {
    /// The categorical code, if this is a categorical value.
    pub fn as_cat(&self) -> Option<u32> {
        match self {
            FeatureValue::Cat(c) => Some(*c),
            FeatureValue::Num(_) => None,
        }
    }

    /// The numeric value, if this is a numeric value.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            FeatureValue::Num(x) => Some(*x),
            FeatureValue::Cat(_) => None,
        }
    }

    /// A lossy numeric view used by distance-based models: categorical
    /// codes are exposed as their code value.
    pub fn to_f64(&self) -> f64 {
        match self {
            FeatureValue::Cat(c) => *c as f64,
            FeatureValue::Num(x) => *x,
        }
    }

    /// Serializes untagged: `Cat(3)` → `3`, `Num(3.0)` → `3.0`.
    pub fn to_json(&self) -> Json {
        match self {
            FeatureValue::Cat(c) => Json::Int(i64::from(*c)),
            FeatureValue::Num(x) => Json::Num(*x),
        }
    }

    /// Parses the untagged wire format: an integer literal that fits `u32`
    /// is a categorical code (serde's untagged derive tried `u32` first);
    /// any other number is numeric.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(i) = v.as_i64() {
            if let Ok(c) = u32::try_from(i) {
                return Ok(FeatureValue::Cat(c));
            }
        }
        v.expect_f64("feature value").map(FeatureValue::Num)
    }
}

/// A client-context: one feature value per schema feature.
#[derive(Debug, Clone)]
pub struct Context {
    values: Vec<FeatureValue>,
}

impl Context {
    /// Starts building a context for `schema`.
    pub fn build(schema: &ContextSchema) -> ContextBuilder {
        ContextBuilder {
            schema: schema.clone(),
            values: vec![None; schema.len()],
        }
    }

    /// Creates a context directly from values, validating against `schema`.
    ///
    /// # Panics
    /// Panics if the length or kinds do not match the schema, or a
    /// categorical code is out of range.
    pub fn from_values(schema: &ContextSchema, values: Vec<FeatureValue>) -> Self {
        assert_eq!(
            values.len(),
            schema.len(),
            "context length must match schema"
        );
        for (i, (v, k)) in values.iter().zip(schema.kinds()).enumerate() {
            match (v, k) {
                (FeatureValue::Cat(c), FeatureKind::Categorical { cardinality }) => {
                    assert!(
                        c < cardinality,
                        "feature {:?}: code {c} out of range 0..{cardinality}",
                        schema.names()[i]
                    );
                }
                (FeatureValue::Num(x), FeatureKind::Numeric) => {
                    assert!(
                        x.is_finite(),
                        "feature {:?}: non-finite value",
                        schema.names()[i]
                    );
                }
                _ => panic!(
                    "feature {:?}: value kind does not match schema kind",
                    schema.names()[i]
                ),
            }
        }
        Self { values }
    }

    /// Creates a context from wire values without schema validation,
    /// mirroring the deferred-validation contract of [`Context::from_json`]:
    /// conformance is checked later, at ingest, so binary and JSON decode
    /// paths reject bad records at the same layer.
    pub fn from_wire_values(values: Vec<FeatureValue>) -> Self {
        Self { values }
    }

    /// The raw feature values in schema order.
    pub fn values(&self) -> &[FeatureValue] {
        &self.values
    }

    /// Value of feature `i`.
    pub fn get(&self, i: usize) -> FeatureValue {
        self.values[i]
    }

    /// Categorical code of feature `i`.
    ///
    /// # Panics
    /// Panics if feature `i` is numeric.
    pub fn cat(&self, i: usize) -> u32 {
        self.values[i].as_cat().expect("feature is not categorical")
    }

    /// Numeric value of feature `i`.
    ///
    /// # Panics
    /// Panics if feature `i` is categorical.
    pub fn num(&self, i: usize) -> f64 {
        self.values[i].as_num().expect("feature is not numeric")
    }

    /// Dense `f64` view (categoricals as their codes) for distance-based
    /// models.
    pub fn dense(&self) -> Vec<f64> {
        self.values.iter().map(FeatureValue::to_f64).collect()
    }

    /// Serializes as `{"values":[...]}` in the old serde wire format.
    pub fn to_json(&self) -> Json {
        Json::object(vec![(
            "values",
            Json::Array(self.values.iter().map(FeatureValue::to_json).collect()),
        )])
    }

    /// Parses the wire format of [`Context::to_json`]. Schema conformance
    /// is checked later, by [`crate::Trace::from_records`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let values = v
            .field("values")?
            .expect_array("context values")?
            .iter()
            .map(FeatureValue::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Context { values })
    }

    /// A hashable key identifying this exact feature combination.
    /// Numeric values are keyed by bit pattern.
    pub fn key(&self) -> ContextKey {
        ContextKey(
            self.values
                .iter()
                .map(|v| match v {
                    FeatureValue::Cat(c) => (0u8, u64::from(*c)),
                    FeatureValue::Num(x) => (1u8, x.to_bits()),
                })
                .collect(),
        )
    }
}

impl PartialEq for Context {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Context {}

/// Exact-match grouping key for a context. See [`Context::key`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ContextKey(Vec<(u8, u64)>);

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match v {
                FeatureValue::Cat(c) => write!(f, "#{c}")?,
                FeatureValue::Num(x) => write!(f, "{x}")?,
            }
        }
        write!(f, "]")
    }
}

/// Builder for [`Context`], addressed by feature name.
#[derive(Debug)]
pub struct ContextBuilder {
    schema: ContextSchema,
    values: Vec<Option<FeatureValue>>,
}

impl ContextBuilder {
    /// Sets a categorical feature by name.
    ///
    /// # Panics
    /// Panics if the name is unknown, the feature is numeric, or the code is
    /// out of range.
    pub fn set_cat(mut self, name: &str, code: u32) -> Self {
        let i = self
            .schema
            .position(name)
            .unwrap_or_else(|| panic!("unknown feature {name:?}"));
        match self.schema.kinds()[i] {
            FeatureKind::Categorical { cardinality } => {
                assert!(
                    code < cardinality,
                    "feature {name:?}: code {code} out of range"
                );
            }
            FeatureKind::Numeric => panic!("feature {name:?} is numeric, use set_numeric"),
        }
        self.values[i] = Some(FeatureValue::Cat(code));
        self
    }

    /// Sets a numeric feature by name.
    ///
    /// # Panics
    /// Panics if the name is unknown, the feature is categorical, or the
    /// value is non-finite.
    pub fn set_numeric(mut self, name: &str, value: f64) -> Self {
        let i = self
            .schema
            .position(name)
            .unwrap_or_else(|| panic!("unknown feature {name:?}"));
        assert!(
            matches!(self.schema.kinds()[i], FeatureKind::Numeric),
            "feature {name:?} is categorical, use set_cat"
        );
        assert!(
            value.is_finite(),
            "feature {name:?}: non-finite value {value}"
        );
        self.values[i] = Some(FeatureValue::Num(value));
        self
    }

    /// Finalizes the context.
    ///
    /// # Panics
    /// Panics if any feature is unset.
    pub fn finish(self) -> Context {
        let values = self
            .values
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.unwrap_or_else(|| panic!("feature {:?} not set", self.schema.names()[i]))
            })
            .collect();
        Context { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ContextSchema {
        ContextSchema::builder()
            .categorical("isp", 3)
            .numeric("rtt_ms")
            .categorical("nat", 2)
            .build()
    }

    #[test]
    fn schema_positions_and_kinds() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.position("rtt_ms"), Some(1));
        assert_eq!(s.position("nope"), None);
        assert_eq!(s.kinds()[0], FeatureKind::Categorical { cardinality: 3 });
        assert_eq!(s.kinds()[1], FeatureKind::Numeric);
    }

    #[test]
    #[should_panic(expected = "duplicate feature name")]
    fn duplicate_feature_panics() {
        let _ = ContextSchema::builder().numeric("x").numeric("x").build();
    }

    #[test]
    fn builder_roundtrip() {
        let s = schema();
        let c = Context::build(&s)
            .set_cat("isp", 2)
            .set_numeric("rtt_ms", 35.5)
            .set_cat("nat", 1)
            .finish();
        assert_eq!(c.cat(0), 2);
        assert_eq!(c.num(1), 35.5);
        assert_eq!(c.cat(2), 1);
        assert_eq!(c.dense(), vec![2.0, 35.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "not set")]
    fn missing_feature_panics() {
        let s = schema();
        let _ = Context::build(&s).set_cat("isp", 0).finish();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_code_panics() {
        let s = schema();
        let _ = Context::build(&s).set_cat("isp", 3);
    }

    #[test]
    #[should_panic(expected = "is numeric")]
    fn kind_mismatch_panics() {
        let s = schema();
        let _ = Context::build(&s).set_cat("rtt_ms", 0);
    }

    #[test]
    fn equality_and_key() {
        let s = schema();
        let a = Context::build(&s)
            .set_cat("isp", 1)
            .set_numeric("rtt_ms", 10.0)
            .set_cat("nat", 0)
            .finish();
        let b = Context::build(&s)
            .set_cat("isp", 1)
            .set_numeric("rtt_ms", 10.0)
            .set_cat("nat", 0)
            .finish();
        let c = Context::build(&s)
            .set_cat("isp", 1)
            .set_numeric("rtt_ms", 10.1)
            .set_cat("nat", 0)
            .finish();
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
        assert_ne!(a, c);
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn from_values_validates() {
        let s = schema();
        let c = Context::from_values(
            &s,
            vec![
                FeatureValue::Cat(0),
                FeatureValue::Num(1.5),
                FeatureValue::Cat(1),
            ],
        );
        assert_eq!(c.values().len(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match schema kind")]
    fn from_values_kind_mismatch_panics() {
        let s = schema();
        let _ = Context::from_values(
            &s,
            vec![
                FeatureValue::Num(0.0),
                FeatureValue::Num(1.5),
                FeatureValue::Cat(1),
            ],
        );
    }

    #[test]
    fn display_formats() {
        let s = schema();
        let c = Context::build(&s)
            .set_cat("isp", 1)
            .set_numeric("rtt_ms", 10.0)
            .set_cat("nat", 0)
            .finish();
        assert_eq!(format!("{c}"), "[#1, 10, #0]");
    }

    #[test]
    fn reindexed_schema_finds_names() {
        let s = schema();
        let json = s.to_json().to_string();
        let loaded = ContextSchema::from_json(&Json::parse(&json).unwrap()).unwrap();
        // Even before reindexing, position() falls back to a scan.
        assert_eq!(loaded.position("rtt_ms"), Some(1));
        let fixed = loaded.reindexed();
        assert_eq!(fixed.position("nat"), Some(2));
        assert_eq!(fixed, s);
    }

    #[test]
    fn schema_wire_format_matches_serde() {
        // Pinned against what the serde derives wrote before the hermetic
        // JSON module replaced them.
        let s = ContextSchema::builder()
            .categorical("isp", 3)
            .numeric("rtt_ms")
            .build();
        assert_eq!(
            s.to_json().to_string(),
            r#"{"inner":{"names":["isp","rtt_ms"],"kinds":[{"Categorical":{"cardinality":3}},"Numeric"]}}"#
        );
    }

    #[test]
    fn feature_value_untagged_roundtrip() {
        // Integer literal => categorical; float literal => numeric.
        let cat = FeatureValue::from_json(&Json::parse("3").unwrap()).unwrap();
        assert_eq!(cat, FeatureValue::Cat(3));
        let num = FeatureValue::from_json(&Json::parse("3.0").unwrap()).unwrap();
        assert_eq!(num, FeatureValue::Num(3.0));
        // Negative / oversized integers cannot be codes; they fall back to
        // numeric exactly like serde's untagged derive did.
        let neg = FeatureValue::from_json(&Json::parse("-1").unwrap()).unwrap();
        assert_eq!(neg, FeatureValue::Num(-1.0));
        assert_eq!(FeatureValue::Cat(3).to_json().to_string(), "3");
        assert_eq!(FeatureValue::Num(3.0).to_json().to_string(), "3.0");
    }
}
