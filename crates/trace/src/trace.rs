//! The [`Trace`] container: a validated sequence of records plus the schema
//! and decision space they conform to, with JSONL persistence.

use crate::context::{ContextSchema, FeatureKind, FeatureValue};
use crate::decision::DecisionSpace;
use crate::error::TraceError;
use crate::record::TraceRecord;
use ddn_stats::{Json, JsonError};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// A validated trace `T = {(c_k, d_k, r_k)}` (paper §2.1).
///
/// Construction validates every record against the schema and decision
/// space, so downstream estimators can index without re-checking.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    schema: ContextSchema,
    space: DecisionSpace,
    records: Vec<TraceRecord>,
}

/// JSONL header line carrying the schema and decision space.
struct Header {
    schema: ContextSchema,
    space: DecisionSpace,
}

impl Header {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema", self.schema.to_json()),
            ("space", self.space.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Header {
            schema: ContextSchema::from_json(v.field("schema")?)?,
            space: DecisionSpace::from_json(v.field("space")?)?,
        })
    }
}

impl Trace {
    /// Builds a trace from records, validating each against `schema` and
    /// `space`.
    pub fn from_records(
        schema: ContextSchema,
        space: DecisionSpace,
        records: Vec<TraceRecord>,
    ) -> Result<Self, TraceError> {
        if records.is_empty() {
            return Err(TraceError::Empty);
        }
        let mut last_ts = f64::NEG_INFINITY;
        for (k, r) in records.iter().enumerate() {
            Self::validate_record(k, r, &schema, &space, &mut last_ts)?;
        }
        Ok(Self {
            schema,
            space,
            records,
        })
    }

    /// Validates one record at stream position `k`: decision range, schema
    /// conformance, propensity range, and timestamp ordering against the
    /// previous record (`last_ts` is advanced on success). Shared by
    /// [`Trace::from_records`] and the incremental [`TraceStream`], and
    /// public so streaming ingest layers can apply the exact same checks
    /// to records that never pass through a `Trace`.
    pub fn validate_record(
        k: usize,
        r: &TraceRecord,
        schema: &ContextSchema,
        space: &DecisionSpace,
        last_ts: &mut f64,
    ) -> Result<(), TraceError> {
        if r.decision.index() >= space.len() {
            return Err(TraceError::DecisionOutOfRange {
                record: k,
                index: r.decision.index(),
                space: space.len(),
            });
        }
        Self::check_context(k, r, schema)?;
        if let Some(p) = r.propensity {
            if !(p > 0.0 && p <= 1.0 && p.is_finite()) {
                return Err(TraceError::InvalidPropensity {
                    record: k,
                    value: p,
                });
            }
        }
        if let Some(t) = r.timestamp {
            if t < *last_ts {
                return Err(TraceError::UnorderedTimestamps { record: k });
            }
            *last_ts = t;
        }
        Ok(())
    }

    fn check_context(k: usize, r: &TraceRecord, schema: &ContextSchema) -> Result<(), TraceError> {
        let values = r.context.values();
        if values.len() != schema.len() {
            return Err(TraceError::SchemaMismatch {
                record: k,
                detail: format!("expected {} features, got {}", schema.len(), values.len()),
            });
        }
        for (i, (v, kind)) in values.iter().zip(schema.kinds()).enumerate() {
            let ok = match (v, kind) {
                (FeatureValue::Cat(c), FeatureKind::Categorical { cardinality }) => c < cardinality,
                (FeatureValue::Num(x), FeatureKind::Numeric) => x.is_finite(),
                _ => false,
            };
            if !ok {
                return Err(TraceError::SchemaMismatch {
                    record: k,
                    detail: format!("feature {:?} invalid", schema.names()[i]),
                });
            }
        }
        Ok(())
    }

    /// The context schema.
    pub fn schema(&self) -> &ContextSchema {
        &self.schema
    }

    /// The decision space.
    pub fn space(&self) -> &DecisionSpace {
        &self.space
    }

    /// The records, in logging order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always false: traces are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean observed reward over the whole trace — the on-policy value of
    /// the logging policy.
    pub fn mean_reward(&self) -> f64 {
        self.records.iter().map(|r| r.reward).sum::<f64>() / self.len() as f64
    }

    /// Whether every record carries a logging propensity.
    pub fn has_propensities(&self) -> bool {
        self.records.iter().all(|r| r.propensity.is_some())
    }

    /// Returns a trace containing only records satisfying `keep`.
    /// Returns `Err(TraceError::Empty)` if nothing survives.
    pub fn filtered(
        &self,
        mut keep: impl FnMut(&TraceRecord) -> bool,
    ) -> Result<Trace, TraceError> {
        let records: Vec<TraceRecord> = self.records.iter().filter(|r| keep(r)).cloned().collect();
        Trace::from_records(self.schema.clone(), self.space.clone(), records)
    }

    /// Splits the trace at `at` into a (head, tail) pair, e.g. to fit a
    /// reward model on one half and estimate on the other (avoiding the
    /// own-data overfit that inflates DM optimism).
    ///
    /// # Panics
    /// Panics unless `0 < at < len`.
    pub fn split_at(&self, at: usize) -> (Trace, Trace) {
        assert!(
            at > 0 && at < self.len(),
            "split point {at} must be inside (0, {})",
            self.len()
        );
        let head = Trace {
            schema: self.schema.clone(),
            space: self.space.clone(),
            records: self.records[..at].to_vec(),
        };
        let tail = Trace {
            schema: self.schema.clone(),
            space: self.space.clone(),
            records: self.records[at..].to_vec(),
        };
        (head, tail)
    }

    /// Writes the trace as JSONL: one header line (schema + space) followed
    /// by one line per record.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        let header = Header {
            schema: self.schema.clone(),
            space: self.space.clone(),
        };
        writeln!(w, "{}", header.to_json().to_string())?;
        for r in &self.records {
            writeln!(w, "{}", r.to_json().to_string())?;
        }
        Ok(())
    }

    /// Reads a trace previously written by [`Trace::write_jsonl`],
    /// re-validating every record.
    ///
    /// Loads the whole trace into memory; for incremental processing of
    /// large files use [`Trace::stream_jsonl`], which this is built on.
    pub fn read_jsonl<R: Read>(r: R) -> Result<Trace, TraceError> {
        let mut stream = Trace::stream_jsonl(r)?;
        let mut records = Vec::new();
        for rec in &mut stream {
            records.push(rec?);
        }
        if records.is_empty() {
            return Err(TraceError::Empty);
        }
        Ok(Trace {
            schema: stream.schema().clone(),
            space: stream.space().clone(),
            records,
        })
    }

    /// Opens a JSONL trace for incremental reading: parses and validates
    /// the header line eagerly, then yields one validated [`TraceRecord`]
    /// at a time without ever holding the whole file in memory.
    ///
    /// Validation is identical to [`Trace::from_records`] (decision range,
    /// schema conformance, propensity range, timestamp ordering), applied
    /// record-by-record as the stream advances; validation failures are
    /// wrapped in [`TraceError::InvalidRecordLine`] carrying the offending
    /// 1-based input line. After the first error the stream is fused and
    /// yields `None`.
    pub fn stream_jsonl<R: Read>(r: R) -> Result<TraceStream<R>, TraceError> {
        let reader = BufReader::new(r);
        let mut lines = reader.lines();
        let header_line = lines.next().ok_or(TraceError::Empty)??;
        let header = Json::parse(&header_line)
            .and_then(|v| Header::from_json(&v))
            .map_err(|source| TraceError::Json {
                line: Some(1),
                source,
            })?;
        Ok(TraceStream {
            lines,
            schema: header.schema.reindexed(),
            space: header.space,
            line: 1,
            read: 0,
            last_ts: f64::NEG_INFINITY,
            done: false,
        })
    }

    /// Writes the trace to a JSONL file at `path` (see
    /// [`Trace::write_jsonl`]).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let file = std::fs::File::create(path)?;
        self.write_jsonl(std::io::BufWriter::new(file))
    }

    /// Reads a trace from a JSONL file written by [`Trace::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
        let file = std::fs::File::open(path)?;
        Trace::read_jsonl(BufReader::new(file))
    }

    /// Opens a JSONL file at `path` for incremental reading (see
    /// [`Trace::stream_jsonl`]).
    pub fn stream_file(
        path: impl AsRef<Path>,
    ) -> Result<TraceStream<std::fs::File>, TraceError> {
        let file = std::fs::File::open(path)?;
        Trace::stream_jsonl(file)
    }
}

/// Incremental JSONL trace reader returned by [`Trace::stream_jsonl`].
///
/// Holds the header's (reindexed) schema and decision space, and yields
/// validated records one at a time. Memory use is bounded by a single
/// input line, so multi-gigabyte traces can be replayed without loading
/// them. Blank lines are skipped but still advance the reported line
/// number, matching [`Trace::read_jsonl`].
pub struct TraceStream<R: Read> {
    lines: std::io::Lines<BufReader<R>>,
    schema: ContextSchema,
    space: DecisionSpace,
    /// 1-based number of the last physical line consumed (1 = header).
    line: usize,
    /// Count of records successfully yielded so far.
    read: usize,
    last_ts: f64,
    done: bool,
}

impl<R: Read> TraceStream<R> {
    /// The context schema from the header, reindexed for fast lookup.
    pub fn schema(&self) -> &ContextSchema {
        &self.schema
    }

    /// The decision space from the header.
    pub fn space(&self) -> &DecisionSpace {
        &self.space
    }

    /// Number of records successfully yielded so far.
    pub fn records_read(&self) -> usize {
        self.read
    }

    /// 1-based number of the last input line consumed (the header counts
    /// as line 1).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl<R: Read> Iterator for TraceStream<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let line = match self.lines.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
                Some(Ok(l)) => l,
            };
            self.line += 1;
            if line.trim().is_empty() {
                continue;
            }
            let rec = match Json::parse(&line).and_then(|v| TraceRecord::from_json(&v)) {
                Ok(r) => r,
                Err(source) => {
                    self.done = true;
                    return Some(Err(TraceError::Json {
                        line: Some(self.line),
                        source,
                    }));
                }
            };
            let k = self.read;
            if let Err(e) =
                Trace::validate_record(k, &rec, &self.schema, &self.space, &mut self.last_ts)
            {
                self.done = true;
                return Some(Err(e.at_line(self.line)));
            }
            self.read += 1;
            return Some(Ok(rec));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::decision::Decision;
    use crate::record::StateTag;

    fn schema() -> ContextSchema {
        ContextSchema::builder()
            .categorical("isp", 2)
            .numeric("rtt")
            .build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b", "c"])
    }

    fn rec(isp: u32, rtt: f64, d: usize, r: f64) -> TraceRecord {
        let c = Context::build(&schema())
            .set_cat("isp", isp)
            .set_numeric("rtt", rtt)
            .finish();
        TraceRecord::new(c, Decision::from_index(d), r)
    }

    fn small_trace() -> Trace {
        Trace::from_records(
            schema(),
            space(),
            vec![
                rec(0, 10.0, 0, 1.0),
                rec(1, 20.0, 1, 0.5),
                rec(0, 30.0, 2, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let t = small_trace();
        assert_eq!(t.len(), 3);
        assert!((t.mean_reward() - 0.5).abs() < 1e-12);
        assert!(!t.has_propensities());
        assert_eq!(t.space().len(), 3);
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            Trace::from_records(schema(), space(), vec![]),
            Err(TraceError::Empty)
        ));
    }

    #[test]
    fn rejects_bad_decision() {
        let e = Trace::from_records(schema(), space(), vec![rec(0, 1.0, 5, 0.0)]).unwrap_err();
        assert!(matches!(
            e,
            TraceError::DecisionOutOfRange {
                index: 5,
                space: 3,
                ..
            }
        ));
    }

    #[test]
    fn rejects_schema_mismatch() {
        let other = ContextSchema::builder().numeric("x").build();
        let c = Context::build(&other).set_numeric("x", 1.0).finish();
        let r = TraceRecord::new(c, Decision::from_index(0), 0.0);
        let e = Trace::from_records(schema(), space(), vec![r]).unwrap_err();
        assert!(matches!(e, TraceError::SchemaMismatch { .. }));
    }

    #[test]
    fn rejects_unordered_timestamps() {
        let r1 = rec(0, 1.0, 0, 0.0).with_timestamp(5.0);
        let r2 = rec(0, 1.0, 0, 0.0).with_timestamp(3.0);
        let e = Trace::from_records(schema(), space(), vec![r1, r2]).unwrap_err();
        assert!(matches!(e, TraceError::UnorderedTimestamps { record: 1 }));
    }

    #[test]
    fn filtered_keeps_matching() {
        let t = small_trace();
        let high = t.filtered(|r| r.reward > 0.25).unwrap();
        assert_eq!(high.len(), 2);
        assert!(matches!(t.filtered(|_| false), Err(TraceError::Empty)));
    }

    #[test]
    fn split_partitions() {
        let t = small_trace();
        let (head, tail) = t.split_at(1);
        assert_eq!(head.len(), 1);
        assert_eq!(tail.len(), 2);
        assert_eq!(head.records()[0], t.records()[0]);
    }

    #[test]
    #[should_panic(expected = "must be inside")]
    fn split_at_bounds_panics() {
        let t = small_trace();
        let _ = t.split_at(3);
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = Trace::from_records(
            schema(),
            space(),
            vec![
                rec(0, 10.0, 0, 1.0)
                    .with_propensity(0.5)
                    .with_state(StateTag::LOW_LOAD),
                rec(1, 20.0, 1, 0.5)
                    .with_propensity(0.25)
                    .with_timestamp(1.0),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(&buf[..]).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.records(), t.records());
        assert_eq!(back.space(), t.space());
        assert_eq!(back.schema().position("rtt"), Some(1));
    }

    #[test]
    fn jsonl_rejects_garbage_line() {
        let t = small_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        buf.extend_from_slice(b"{not json}\n");
        let e = Trace::read_jsonl(&buf[..]).unwrap_err();
        assert!(matches!(e, TraceError::Json { line: Some(5), .. }), "{e}");
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let t = small_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = Trace::read_jsonl(&buf[..]).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn stream_yields_records_incrementally() {
        let t = small_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let mut stream = Trace::stream_jsonl(&buf[..]).unwrap();
        assert_eq!(stream.space(), t.space());
        assert_eq!(stream.schema().position("rtt"), Some(1));
        assert_eq!(stream.records_read(), 0);
        let first = stream.next().unwrap().unwrap();
        assert_eq!(first, t.records()[0]);
        assert_eq!(stream.records_read(), 1);
        assert_eq!(stream.line(), 2);
        let rest: Vec<_> = stream.map(Result::unwrap).collect();
        assert_eq!(rest.as_slice(), &t.records()[1..]);
    }

    #[test]
    fn stream_reports_validation_errors_with_line_numbers() {
        // Header + one good record + blank line + a record with an invalid
        // propensity on (physical) line 4.
        let t = small_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let mut lines: Vec<&str> = std::str::from_utf8(&buf).unwrap().lines().collect();
        lines.truncate(2); // header + record 0
        let mut input = lines.join("\n");
        input.push_str("\n\n");
        input.push_str(r#"{"context":{"values":[0,10.0]},"decision":1,"reward":0.5,"propensity":1.5}"#);
        input.push('\n');
        let mut stream = Trace::stream_jsonl(input.as_bytes()).unwrap();
        assert!(stream.next().unwrap().is_ok());
        let e = stream.next().unwrap().unwrap_err();
        assert!(
            matches!(
                e,
                TraceError::InvalidRecordLine { line: 4, ref source }
                    if matches!(**source, TraceError::InvalidPropensity { record: 1, .. })
            ),
            "{e}"
        );
        // The stream is fused after the first error.
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_rejects_bad_header() {
        let e = match Trace::stream_jsonl(&b"{not json}\n"[..]) {
            Err(e) => e,
            Ok(_) => panic!("bad header must fail"),
        };
        assert!(matches!(e, TraceError::Json { line: Some(1), .. }));
        let e = match Trace::stream_jsonl(&b""[..]) {
            Err(e) => e,
            Ok(_) => panic!("empty input must fail"),
        };
        assert!(matches!(e, TraceError::Empty));
    }

    #[test]
    fn read_jsonl_carries_line_numbers_for_validation_errors() {
        let t = small_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        // Record with out-of-range decision appended on line 5.
        buf.extend_from_slice(
            b"{\"context\":{\"values\":[0,10.0]},\"decision\":7,\"reward\":0.0}\n",
        );
        let e = Trace::read_jsonl(&buf[..]).unwrap_err();
        assert!(
            matches!(
                e,
                TraceError::InvalidRecordLine { line: 5, ref source }
                    if matches!(
                        **source,
                        TraceError::DecisionOutOfRange { record: 3, index: 7, space: 3 }
                    )
            ),
            "{e}"
        );
    }
}
