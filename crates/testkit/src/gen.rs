//! Composable random-value generators with shrinking.
//!
//! A [`Gen`] produces values from a deterministic RNG and, when a property
//! fails, proposes *smaller* candidate values via [`Gen::shrink`] so the
//! runner can report a minimal counterexample. Ranges of the primitive
//! numeric types implement [`Gen`] directly, so `0u32..3` or
//! `-100.0..100.0f64` read exactly like the bounds they are; tuples of
//! generators generate tuples, [`vecs`] generates vectors, and
//! [`strings_from`] generates strings over an alphabet.

use ddn_stats::rng::{Rng, Xoshiro256};
use std::fmt::Debug;
use std::ops::Range;

/// A generator of random test inputs.
///
/// `generate` must be a pure function of the RNG state: the runner relies
/// on this to replay failures from a seed.
pub trait Gen {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Xoshiro256) -> Self::Value;

    /// Proposes strictly "smaller" candidate values derived from a failing
    /// input. Candidates must stay inside the generator's domain; the
    /// default proposes nothing (no shrinking).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;
    fn generate(&self, rng: &mut Xoshiro256) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

// ---- numeric ranges -----------------------------------------------------

impl Gen for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Xoshiro256) -> f64 {
        assert!(self.start < self.end, "empty f64 range {self:?}");
        let v = rng.range_f64(self.start, self.end);
        // Guard the half-open bound against rounding at the top.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut push = |c: f64| {
            if c != *value && self.contains(&c) && !out.contains(&c) {
                out.push(c);
            }
        };
        push(self.start);
        push(0.0);
        push((self.start + *value) / 2.0);
        push(value.trunc());
        out
    }
}

macro_rules! int_range_gen {
    ($($t:ty),+) => {$(
        impl Gen for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Xoshiro256) -> $t {
                assert!(self.start < self.end, "empty range {self:?}");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                let mut push = |c: $t| {
                    if c != *value && self.contains(&c) && !out.contains(&c) {
                        out.push(c);
                    }
                };
                push(self.start);
                push(self.start + (*value - self.start) / 2);
                if *value > self.start {
                    push(*value - 1);
                }
                out
            }
        }
    )+};
}

int_range_gen!(u32, u64, usize);

// ---- tuples -------------------------------------------------------------

macro_rules! tuple_gen {
    ($(($($g:ident / $v:ident / $i:tt),+);)+) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut Xoshiro256) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$i.shrink(&value.$i) {
                        let mut next = value.clone();
                        next.$i = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_gen! {
    (A/a/0);
    (A/a/0, B/b/1);
    (A/a/0, B/b/1, C/c/2);
    (A/a/0, B/b/1, C/c/2, D/d/3);
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4);
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5);
}

// ---- collections ----------------------------------------------------------

/// Generator of `Vec<T>` with a length drawn from `len` (half-open, like
/// proptest's `vec(elem, 1..40)`).
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    len: Range<usize>,
}

/// Vectors of values from `elem`, with length in `len`.
pub fn vecs<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "empty length range {len:?}");
    VecGen { elem, len }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Xoshiro256) -> Self::Value {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = Vec::new();
        let min = self.len.start;
        // Structural shrinks first: drop a chunk, then single elements.
        if value.len() > min {
            let half = (value.len() / 2).max(min);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            let mut tail = value.clone();
            tail.pop();
            out.push(tail);
            let mut head = value.clone();
            head.remove(0);
            out.push(head);
        }
        // Then element-wise shrinks, one position at a time.
        for (i, v) in value.iter().enumerate() {
            for candidate in self.elem.shrink(v) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

// ---- strings --------------------------------------------------------------

/// Generator of `String`s over a fixed alphabet; see [`strings_from`].
#[derive(Debug, Clone)]
pub struct StringGen {
    alphabet: Vec<char>,
    len: Range<usize>,
}

/// Strings of length drawn from `len`, each char drawn uniformly from
/// `alphabet`. `strings_from("ab\n", 0..10)` stands in for the regex-class
/// strategies of proptest (`"[ab\n]{0,9}"`).
pub fn strings_from(alphabet: &str, len: Range<usize>) -> StringGen {
    let alphabet: Vec<char> = alphabet.chars().collect();
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    assert!(len.start < len.end, "empty length range {len:?}");
    StringGen { alphabet, len }
}

impl Gen for StringGen {
    type Value = String;

    fn generate(&self, rng: &mut Xoshiro256) -> String {
        let n = self.len.generate(rng);
        (0..n).map(|_| *rng.choose(&self.alphabet)).collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        let mut out = Vec::new();
        let min = self.len.start;
        if chars.len() > min {
            let half = (chars.len() / 2).max(min);
            if half < chars.len() {
                out.push(chars[..half].iter().collect());
            }
            out.push(chars[..chars.len() - 1].iter().collect());
            out.push(chars[1..].iter().collect());
        }
        // Simplify one char at a time toward the first alphabet char.
        let simplest = self.alphabet[0];
        for (i, &c) in chars.iter().enumerate() {
            if c != simplest {
                let mut next = chars.clone();
                next[i] = simplest;
                out.push(next.into_iter().collect());
            }
        }
        out
    }
}

// ---- adapters --------------------------------------------------------------

/// Always generates the same value; never shrinks.
#[derive(Debug, Clone)]
pub struct JustGen<T>(T);

/// A constant generator.
pub fn just<T: Clone + Debug>(value: T) -> JustGen<T> {
    JustGen(value)
}

impl<T: Clone + Debug> Gen for JustGen<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Xoshiro256) -> T {
        self.0.clone()
    }
}

/// Maps generated values through a function; see [`map`].
#[derive(Clone)]
pub struct MapGen<G, F> {
    base: G,
    f: F,
}

/// Applies `f` to every generated value. The mapped generator does not
/// shrink (the mapping is not invertible); prefer mapping *inside* the
/// property when shrinking matters.
pub fn map<G, F, T>(base: G, f: F) -> MapGen<G, F>
where
    G: Gen,
    F: Fn(G::Value) -> T,
    T: Clone + Debug,
{
    MapGen { base, f }
}

impl<G, F, T> Gen for MapGen<G, F>
where
    G: Gen,
    F: Fn(G::Value) -> T,
    T: Clone + Debug,
{
    type Value = T;
    fn generate(&self, rng: &mut Xoshiro256) -> T {
        (self.f)(self.base.generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from(7)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = rng();
        for _ in 0..2_000 {
            let x = (-2.0..3.0f64).generate(&mut g);
            assert!((-2.0..3.0).contains(&x));
            let u = (1u32..5).generate(&mut g);
            assert!((1..5).contains(&u));
            let n = (0usize..3).generate(&mut g);
            assert!(n < 3);
        }
    }

    #[test]
    fn range_generation_is_deterministic() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
        }
    }

    #[test]
    fn shrink_candidates_stay_in_range_and_differ() {
        for v in [2u32, 7, 9] {
            for c in (2u32..10).shrink(&v) {
                assert!((2..10).contains(&c));
                assert_ne!(c, v);
            }
        }
        for c in (-5.0..5.0f64).shrink(&4.5) {
            assert!((-5.0..5.0).contains(&c));
            assert_ne!(c, 4.5);
        }
        // The range start has no candidates below it.
        assert!((3u32..10).shrink(&3).is_empty());
    }

    #[test]
    fn tuple_generates_and_shrinks_componentwise() {
        let g = (0u32..4, -1.0..1.0f64);
        let mut r = rng();
        let v = g.generate(&mut r);
        assert!(v.0 < 4 && (-1.0..1.0).contains(&v.1));
        let shrunk = g.shrink(&(3, 0.9));
        assert!(!shrunk.is_empty());
        for (a, b) in &shrunk {
            // Exactly one component changes per candidate.
            let changed = usize::from(*a != 3) + usize::from(*b != 0.9);
            assert_eq!(changed, 1, "candidate ({a}, {b})");
            assert!(*a < 4 && (-1.0..1.0).contains(b));
        }
    }

    #[test]
    fn vec_respects_length_range() {
        let g = vecs(0u32..10, 2..6);
        let mut r = rng();
        for _ in 0..200 {
            let v = g.generate(&mut r);
            assert!((2..6).contains(&v.len()));
        }
        for c in g.shrink(&vec![5, 6, 7, 8, 9]) {
            assert!(c.len() >= 2, "shrink went below min len: {c:?}");
        }
    }

    #[test]
    fn string_alphabet_respected() {
        let g = strings_from("ab\n", 0..20);
        let mut r = rng();
        for _ in 0..100 {
            let s = g.generate(&mut r);
            assert!(s.chars().all(|c| c == 'a' || c == 'b' || c == '\n'));
            assert!(s.chars().count() < 20);
        }
        for c in g.shrink(&"bb".to_string()) {
            assert!(c.chars().all(|ch| "ab\n".contains(ch)));
        }
    }

    #[test]
    fn just_and_map() {
        let mut r = rng();
        assert_eq!(just(42u8).generate(&mut r), 42);
        let doubled = map(0u32..5, |x| x * 2);
        for _ in 0..50 {
            assert_eq!(doubled.generate(&mut r) % 2, 0);
        }
    }
}
