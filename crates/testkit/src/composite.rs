//! Large composite-action-space scenario generator.
//!
//! The marginalized estimators (ROADMAP item 3b) exist because production
//! decision spaces are *composite* — CDN × bitrate × relay easily reaches
//! thousands of arms — and their property tests need whole scenarios, not
//! scalars: a group assignment over many arms, a full logging
//! distribution, a (possibly concentrated) target distribution, and a log
//! sampled from the logging distribution. [`composite_scenarios`] draws
//! those as one shrinkable value, so a failing marginalization property
//! reports a minimal scenario (fewest records, fewest effective groups)
//! instead of a thousand-arm wall of floats.

use crate::gen::Gen;
use ddn_stats::rng::{Rng, Xoshiro256};
use std::fmt;
use std::ops::Range;

/// One generated large-action-space scenario.
///
/// Invariants upheld by generation and preserved by shrinking:
/// - `groups.len() >= 2` (the arm count), every group id `< groups.len()`;
/// - `logging` and `target` have one strictly positive entry per arm and
///   each sums to 1 (up to float rounding);
/// - every record's arm index is in range.
#[derive(Clone, PartialEq)]
pub struct CompositeScenario {
    /// Per-arm group id ("which CDN") — the action embedding.
    pub groups: Vec<usize>,
    /// Full logging distribution over arms.
    pub logging: Vec<f64>,
    /// Target distribution over arms (often concentrated on a hot arm —
    /// the regime where vanilla per-arm weights explode).
    pub target: Vec<f64>,
    /// Logged `(arm, reward)` pairs, arms sampled from `logging`.
    pub records: Vec<(usize, f64)>,
}

impl CompositeScenario {
    /// Number of arms.
    pub fn arms(&self) -> usize {
        self.groups.len()
    }

    /// Number of distinct groups actually used.
    pub fn num_groups(&self) -> usize {
        self.groups.iter().max().map_or(0, |m| m + 1)
    }

    /// The logging propensity of `arm`.
    pub fn propensity(&self, arm: usize) -> f64 {
        self.logging[arm]
    }

    /// Marginal mass of a distribution over `arm`'s group.
    pub fn marginal(&self, dist: &[f64], arm: usize) -> f64 {
        let g = self.groups[arm];
        dist.iter()
            .enumerate()
            .filter(|(a, _)| self.groups[*a] == g)
            .map(|(_, p)| *p)
            .sum()
    }
}

impl fmt::Debug for CompositeScenario {
    /// Summarized — a thousand-arm scenario printed raw would bury the
    /// counterexample.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompositeScenario")
            .field("arms", &self.arms())
            .field("num_groups", &self.num_groups())
            .field("records", &self.records.len())
            .field("first_records", &&self.records[..self.records.len().min(8)])
            .finish()
    }
}

/// Generator of [`CompositeScenario`]s; see [`composite_scenarios`].
#[derive(Debug, Clone)]
pub struct CompositeScenarioGen {
    arms: Range<usize>,
    records: Range<usize>,
}

/// Scenarios with an arm count drawn from `arms` (min 2) and a record
/// count drawn from `records`.
pub fn composite_scenarios(arms: Range<usize>, records: Range<usize>) -> CompositeScenarioGen {
    assert!(arms.start >= 2, "composite scenarios need at least 2 arms");
    assert!(arms.start < arms.end, "empty arm range {arms:?}");
    assert!(records.start < records.end, "empty record range {records:?}");
    CompositeScenarioGen { arms, records }
}

fn normalize(weights: &mut [f64]) {
    let total: f64 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w /= total;
    }
}

/// Samples an index from a normalized distribution by cumulative scan.
fn sample_from(dist: &[f64], rng: &mut Xoshiro256) -> usize {
    let u = rng.next_f64();
    let mut acc = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    dist.len() - 1
}

impl Gen for CompositeScenarioGen {
    type Value = CompositeScenario;

    fn generate(&self, rng: &mut Xoshiro256) -> CompositeScenario {
        let arms = self.arms.generate(rng);
        // Group count between 1 and arms; round-robin assignment keeps
        // every group non-empty.
        let num_groups = 1 + rng.index(arms.min(64));
        let groups: Vec<usize> = (0..arms).map(|a| a % num_groups).collect();

        // Logging: positive per-arm weights, normalized — every arm is
        // explorable, none dominant.
        let mut logging: Vec<f64> = (0..arms).map(|_| rng.range_f64(0.05, 1.0)).collect();
        normalize(&mut logging);

        // Target: a hot arm takes most of the mass (the per-arm weight
        // p_new/p_old on the hot arm is then O(arms) — the explosion the
        // marginalized estimators tame), the rest spread uniformly.
        let hot = rng.index(arms);
        let hot_mass = rng.range_f64(0.3, 0.9);
        let rest = (1.0 - hot_mass) / arms as f64;
        let mut target = vec![rest; arms];
        target[hot] += hot_mass;

        // Records sampled from the logging distribution; rewards carry a
        // group-level signal plus noise, so marginalization is meaningful.
        let group_base: Vec<f64> = (0..num_groups).map(|_| rng.range_f64(-1.0, 2.0)).collect();
        let n = self.records.generate(rng);
        let records = (0..n)
            .map(|_| {
                let arm = sample_from(&logging, rng);
                let reward = group_base[groups[arm]] + rng.range_f64(-0.25, 0.25);
                (arm, reward)
            })
            .collect();

        CompositeScenario {
            groups,
            logging,
            target,
            records,
        }
    }

    fn shrink(&self, value: &CompositeScenario) -> Vec<CompositeScenario> {
        let mut out = Vec::new();
        let min_records = self.records.start;
        // Fewer records first — the dominant simplification.
        if value.records.len() > min_records {
            let half = (value.records.len() / 2).max(min_records);
            if half < value.records.len() {
                let mut s = value.clone();
                s.records.truncate(half);
                out.push(s);
            }
            let mut s = value.clone();
            s.records.pop();
            out.push(s);
        }
        // Collapse the embedding to a single group (marginal weights all
        // become 1 — the degenerate end of the spectrum).
        if value.num_groups() > 1 {
            let mut s = value.clone();
            s.groups = vec![0; s.groups.len()];
            out.push(s);
        }
        // Flatten the target to uniform (no hot arm, no weight explosion).
        let uniform = 1.0 / value.arms() as f64;
        if value.target.iter().any(|&p| (p - uniform).abs() > 1e-12) {
            let mut s = value.clone();
            s.target = vec![uniform; s.arms()];
            out.push(s);
        }
        // Zero the rewards one structural step at a time.
        if value.records.iter().any(|(_, r)| *r != 0.0) {
            let mut s = value.clone();
            for rec in &mut s.records {
                rec.1 = 0.0;
            }
            out.push(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prop, prop_assert};

    prop! {
        fn scenarios_are_well_formed(s in composite_scenarios(2..1200, 1..400)) {
            prop_assert!(s.arms() >= 2);
            prop_assert!(s.num_groups() >= 1 && s.num_groups() <= s.arms());
            prop_assert!((s.logging.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!((s.target.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(s.logging.iter().all(|&p| p > 0.0));
            prop_assert!(s.target.iter().all(|&p| p > 0.0));
            prop_assert!(s.records.iter().all(|(a, _)| *a < s.arms()));
            // Marginal mass over any arm's group is at least that arm's own.
            for &(arm, _) in &s.records {
                prop_assert!(s.marginal(&s.logging, arm) >= s.logging[arm]);
            }
        }
    }

    #[test]
    fn reaches_large_action_spaces() {
        let g = composite_scenarios(2..1200, 1..50);
        let mut rng = Xoshiro256::seed_from(11);
        let mut max_arms = 0;
        for _ in 0..200 {
            max_arms = max_arms.max(g.generate(&mut rng).arms());
        }
        assert!(max_arms >= 1000, "should reach ≥1000 arms, saw {max_arms}");
    }

    #[test]
    fn shrink_preserves_invariants_and_simplifies() {
        let g = composite_scenarios(2..600, 2..100);
        let mut rng = Xoshiro256::seed_from(3);
        let s = g.generate(&mut rng);
        let candidates = g.shrink(&s);
        assert!(!candidates.is_empty(), "a rich scenario must shrink");
        for c in &candidates {
            assert!(c.records.len() >= 2, "respects min record count");
            assert!(c.arms() == s.arms(), "shrinking never changes the space");
            assert!(c.records.iter().all(|(a, _)| *a < c.arms()));
            assert!((c.logging.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!((c.target.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert_ne!(c, &s, "candidates must differ from the failing value");
        }
        // The canonical simplifications are all on offer.
        assert!(candidates.iter().any(|c| c.records.len() < s.records.len()));
        if s.num_groups() > 1 {
            assert!(candidates.iter().any(|c| c.num_groups() == 1));
        }
    }
}
