//! Deterministic fault plans for chaos testing.
//!
//! A [`FaultPlan`] is a seeded schedule of I/O faults pinned to byte
//! offsets: "after 137 bytes written, disconnect", "after 512 bytes read,
//! return an error". The schedule itself is plain data — generated from a
//! seed, printable, shrinkable — so a failing chaos case reproduces from
//! `(seed, config)` alone, exactly like every other property in this
//! workspace.
//!
//! Consumers drive the plan through a [`FaultCursor`]: before each
//! read/write they call [`FaultCursor::decide`] with the direction and the
//! number of bytes they *want* to move, and obey the returned
//! [`IoDecision`]. The cursor clamps every `Proceed` so real I/O never
//! jumps over a scheduled offset, which is what makes the schedule
//! deterministic even when callers use large buffers. Each event fires at
//! most once; a finite plan therefore guarantees that retries eventually
//! succeed.
//!
//! The offset space is *cumulative per direction across the lifetime of the
//! cursor*, not per connection: a client that disconnects and reconnects
//! keeps consuming the same schedule, so one plan describes the whole
//! session.

use crate::gen::Gen;
use ddn_stats::rng::{Rng, Xoshiro256};

/// Which half of the socket a fault applies to, from the wrapped
/// endpoint's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Faults on bytes flowing *into* the endpoint.
    Read,
    /// Faults on bytes flowing *out of* the endpoint.
    Write,
}

/// What happens when a scheduled offset is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The next I/O call moves at most `max_bytes` bytes (a short
    /// read/write — exercises partial-line handling).
    Partial {
        /// Upper bound on bytes moved by the next call; clamped to ≥ 1.
        max_bytes: usize,
    },
    /// The next I/O call is preceded by a sleep (exercises timeouts).
    Delay {
        /// Sleep length in microseconds.
        micros: u64,
    },
    /// The connection drops: reads see EOF, writes see `BrokenPipe`.
    Disconnect,
    /// The I/O call fails with `ConnectionReset` ("injected fault") but
    /// the connection survives.
    Error,
}

/// One scheduled fault: at byte `offset` (cumulative, per direction),
/// inject `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Direction the offset counts bytes in.
    pub dir: Dir,
    /// Cumulative byte offset at which the fault fires.
    pub offset: u64,
    /// The fault to inject.
    pub kind: FaultKind,
}

/// Tuning knobs for [`FaultPlan::generate`].
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Number of fault events to schedule.
    pub faults: usize,
    /// Write offsets are drawn from `0..write_horizon`.
    pub write_horizon: u64,
    /// Read offsets are drawn from `0..read_horizon`.
    pub read_horizon: u64,
    /// Delays are drawn from `0..=max_delay_micros`.
    pub max_delay_micros: u64,
    /// Partial-I/O caps are drawn from `1..=max_partial_bytes`.
    pub max_partial_bytes: usize,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            faults: 4,
            write_horizon: 1 << 14,
            read_horizon: 1 << 14,
            max_delay_micros: 200,
            max_partial_bytes: 16,
        }
    }
}

/// A finite, ordered schedule of injectable I/O faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults; every `decide` is a full `Proceed`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws a plan from a seed. Same `(seed, cfg)` ⇒ same plan, on every
    /// platform.
    pub fn generate(seed: u64, cfg: &FaultPlanConfig) -> Self {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut plan = Self::new();
        for _ in 0..cfg.faults {
            let dir = if rng.next_below(2) == 0 {
                Dir::Read
            } else {
                Dir::Write
            };
            let horizon = match dir {
                Dir::Read => cfg.read_horizon,
                Dir::Write => cfg.write_horizon,
            }
            .max(1);
            let offset = rng.next_below(horizon);
            let kind = match rng.next_below(4) {
                0 => FaultKind::Partial {
                    max_bytes: 1 + rng.next_below(cfg.max_partial_bytes.max(1) as u64) as usize,
                },
                1 => FaultKind::Delay {
                    micros: rng.next_below(cfg.max_delay_micros + 1),
                },
                2 => FaultKind::Disconnect,
                _ => FaultKind::Error,
            };
            plan.push(FaultEvent { dir, offset, kind });
        }
        plan
    }

    /// Adds an event, keeping the schedule sorted by offset (stable for
    /// equal offsets: earlier pushes fire first).
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.events.sort_by_key(|e| e.offset);
    }

    /// The scheduled events, sorted by offset.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// True when the plan schedules at least one event of this kind
    /// (matching on the variant, ignoring payload).
    pub fn has_kind(&self, kind: &FaultKind) -> bool {
        self.events
            .iter()
            .any(|e| std::mem::discriminant(&e.kind) == std::mem::discriminant(kind))
    }

    /// A fresh consumption cursor over this plan.
    pub fn cursor(&self) -> FaultCursor {
        FaultCursor {
            read: self
                .events
                .iter()
                .filter(|e| e.dir == Dir::Read)
                .copied()
                .collect(),
            write: self
                .events
                .iter()
                .filter(|e| e.dir == Dir::Write)
                .copied()
                .collect(),
            read_pos: 0,
            write_pos: 0,
            next_read: 0,
            next_write: 0,
            injected: FaultCounts::default(),
        }
    }
}

/// Tally of faults a cursor has actually fired, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Partial reads/writes injected.
    pub partial: u64,
    /// Delays injected.
    pub delay: u64,
    /// Disconnects injected.
    pub disconnect: u64,
    /// Error returns injected.
    pub error: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.partial + self.delay + self.disconnect + self.error
    }
}

/// What the caller must do for its next I/O call in one direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDecision {
    /// Perform real I/O, moving at most `max_len` bytes, then report the
    /// actual count via [`FaultCursor::advance`].
    Proceed {
        /// Clamp for the next I/O call; never zero when the caller wanted
        /// at least one byte.
        max_len: usize,
    },
    /// Sleep this long, then call `decide` again.
    Delay {
        /// Sleep length in microseconds.
        micros: u64,
    },
    /// Simulate a dropped connection (EOF on read, `BrokenPipe` on write).
    Disconnect,
    /// Fail the call with an injected error; the connection survives.
    Error,
}

/// Mutable consumption state over a [`FaultPlan`].
///
/// The cursor is shared by every connection an endpoint opens (wrap it in
/// `Arc<Mutex<_>>`): offsets are cumulative across reconnects, so one plan
/// scripts the whole session deterministically.
#[derive(Debug, Clone)]
pub struct FaultCursor {
    read: Vec<FaultEvent>,
    write: Vec<FaultEvent>,
    read_pos: u64,
    write_pos: u64,
    next_read: usize,
    next_write: usize,
    injected: FaultCounts,
}

impl FaultCursor {
    /// Decides the fate of the next I/O call that wants to move `want`
    /// bytes in `dir`. Events at or before the current position fire (and
    /// are consumed, once each); otherwise the call proceeds, clamped so
    /// it cannot jump past the next scheduled offset.
    pub fn decide(&mut self, dir: Dir, want: usize) -> IoDecision {
        let (events, next, pos) = match dir {
            Dir::Read => (&self.read, &mut self.next_read, self.read_pos),
            Dir::Write => (&self.write, &mut self.next_write, self.write_pos),
        };
        if let Some(event) = events.get(*next) {
            if event.offset <= pos {
                let kind = event.kind;
                *next += 1;
                return match kind {
                    FaultKind::Partial { max_bytes } => {
                        self.injected.partial += 1;
                        IoDecision::Proceed {
                            max_len: max_bytes.max(1).min(want.max(1)),
                        }
                    }
                    FaultKind::Delay { micros } => {
                        self.injected.delay += 1;
                        IoDecision::Delay { micros }
                    }
                    FaultKind::Disconnect => {
                        self.injected.disconnect += 1;
                        IoDecision::Disconnect
                    }
                    FaultKind::Error => {
                        self.injected.error += 1;
                        IoDecision::Error
                    }
                };
            }
            // Clamp so the I/O lands exactly on the scheduled offset
            // instead of overshooting it.
            let gap = (event.offset - pos) as usize;
            return IoDecision::Proceed {
                max_len: want.min(gap).max(1).min(want.max(1)),
            };
        }
        IoDecision::Proceed { max_len: want }
    }

    /// Reports that `n` bytes actually moved in `dir`.
    pub fn advance(&mut self, dir: Dir, n: usize) {
        match dir {
            Dir::Read => self.read_pos += n as u64,
            Dir::Write => self.write_pos += n as u64,
        }
    }

    /// Faults fired so far, by kind.
    pub fn injected(&self) -> FaultCounts {
        self.injected
    }

    /// True when every scheduled event has fired (subsequent I/O is
    /// fault-free).
    pub fn exhausted(&self) -> bool {
        self.next_read >= self.read.len() && self.next_write >= self.write.len()
    }
}

/// One scripted process kill: after `at_record` records have been
/// ingested, the process dies (`kill -9` semantics — no shutdown hooks
/// run) and is restarted against the same data directory.
///
/// `torn_tail_bytes` models the write the kill interrupted: that many
/// bytes of a partial WAL frame are appended to a shard's log before
/// restart. A real kill can only tear the *in-flight, unacknowledged*
/// frame — acknowledged frames are fully written first — so tests append
/// garbage rather than truncating, and recovery must discard exactly the
/// torn tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillRestart {
    /// Cumulative ingested-record count at which the kill fires.
    pub at_record: u64,
    /// Bytes of a partial (torn) WAL frame left behind by the kill;
    /// 0 is a clean kill between appends.
    pub torn_tail_bytes: usize,
}

/// Tuning knobs for [`LifecyclePlan::generate`].
#[derive(Debug, Clone)]
pub struct LifecyclePlanConfig {
    /// Number of kills to schedule.
    pub kills: usize,
    /// Kill offsets are drawn from `0..record_horizon`.
    pub record_horizon: u64,
    /// Torn tails are drawn from `0..=max_torn_bytes`.
    pub max_torn_bytes: usize,
}

impl Default for LifecyclePlanConfig {
    fn default() -> Self {
        Self {
            kills: 2,
            record_horizon: 512,
            max_torn_bytes: 48,
        }
    }
}

/// A finite, ordered schedule of [`KillRestart`] events, pinned to
/// cumulative record offsets — the process-lifecycle analogue of
/// [`FaultPlan`]. Plain data: printable, shrinkable, reproducible from
/// `(seed, cfg)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LifecyclePlan {
    kills: Vec<KillRestart>,
}

impl LifecyclePlan {
    /// An empty plan (the process never dies).
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws a plan from a seed. Same `(seed, cfg)` ⇒ same plan, on
    /// every platform.
    pub fn generate(seed: u64, cfg: &LifecyclePlanConfig) -> Self {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut plan = Self::new();
        for _ in 0..cfg.kills {
            plan.push(KillRestart {
                at_record: rng.next_below(cfg.record_horizon.max(1)),
                torn_tail_bytes: rng.next_below(cfg.max_torn_bytes as u64 + 1) as usize,
            });
        }
        plan
    }

    /// Adds a kill, keeping the schedule sorted by record offset.
    pub fn push(&mut self, kill: KillRestart) {
        self.kills.push(kill);
        self.kills.sort_by_key(|k| k.at_record);
    }

    /// The scheduled kills, sorted by record offset.
    pub fn kills(&self) -> &[KillRestart] {
        &self.kills
    }

    /// Number of scheduled kills.
    pub fn len(&self) -> usize {
        self.kills.len()
    }

    /// True when no kills are scheduled.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }

    /// A fresh consumption driver over this plan.
    pub fn driver(&self) -> LifecycleDriver {
        LifecycleDriver {
            kills: self.kills.clone(),
            next: 0,
            pos: 0,
        }
    }
}

/// Mutable consumption state over a [`LifecyclePlan`]: the test harness
/// reports ingest progress and is told when to kill the process.
#[derive(Debug, Clone)]
pub struct LifecycleDriver {
    kills: Vec<KillRestart>,
    next: usize,
    pos: u64,
}

impl LifecycleDriver {
    /// Advances the cumulative record position by `records` and returns
    /// the next kill whose offset has been reached, if any (consumed —
    /// each kill fires once). Kills whose offsets fall inside the same
    /// batch fire one per call, preserving order, so a harness that
    /// ingests in batches never silently skips a scheduled kill.
    pub fn advance(&mut self, records: u64) -> Option<KillRestart> {
        self.pos += records;
        match self.kills.get(self.next) {
            Some(k) if k.at_record <= self.pos => {
                self.next += 1;
                Some(*k)
            }
            _ => None,
        }
    }

    /// Cumulative records reported so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// True when every scheduled kill has fired.
    pub fn exhausted(&self) -> bool {
        self.next >= self.kills.len()
    }
}

/// Generator of [`LifecyclePlan`]s for `prop!` bodies. Shrinking drops
/// kills and simplifies torn tails to clean kills, so a failing
/// crash-resume case minimises toward "one clean kill at offset k".
#[derive(Debug, Clone)]
pub struct LifecyclePlanGen {
    cfg: LifecyclePlanConfig,
}

/// Lifecycle plans drawn under `cfg`, one fresh seed per case.
pub fn lifecycle_plans(cfg: LifecyclePlanConfig) -> LifecyclePlanGen {
    LifecyclePlanGen { cfg }
}

impl Gen for LifecyclePlanGen {
    type Value = LifecyclePlan;

    fn generate(&self, rng: &mut Xoshiro256) -> LifecyclePlan {
        LifecyclePlan::generate(rng.next_u64(), &self.cfg)
    }

    fn shrink(&self, value: &LifecyclePlan) -> Vec<LifecyclePlan> {
        let kills = value.kills();
        let mut out = Vec::new();
        if kills.is_empty() {
            return out;
        }
        if kills.len() > 1 {
            out.push(LifecyclePlan {
                kills: kills[..kills.len() / 2].to_vec(),
            });
        }
        for i in 0..kills.len() {
            let mut kept = kills.to_vec();
            kept.remove(i);
            out.push(LifecyclePlan { kills: kept });
        }
        // Simplify torn kills to clean ones before giving up.
        for i in 0..kills.len() {
            if kills[i].torn_tail_bytes > 0 {
                let mut cleaned = kills.to_vec();
                cleaned[i].torn_tail_bytes = 0;
                out.push(LifecyclePlan { kills: cleaned });
            }
        }
        out
    }
}

/// Generator of [`FaultPlan`]s for `prop!` bodies; shrinking drops events,
/// so a failing chaos case minimises to the smallest fault set that still
/// breaks the property.
#[derive(Debug, Clone)]
pub struct FaultPlanGen {
    cfg: FaultPlanConfig,
}

/// Fault plans drawn under `cfg`, one fresh seed per case.
pub fn fault_plans(cfg: FaultPlanConfig) -> FaultPlanGen {
    FaultPlanGen { cfg }
}

impl Gen for FaultPlanGen {
    type Value = FaultPlan;

    fn generate(&self, rng: &mut Xoshiro256) -> FaultPlan {
        FaultPlan::generate(rng.next_u64(), &self.cfg)
    }

    fn shrink(&self, value: &FaultPlan) -> Vec<FaultPlan> {
        let events = value.events();
        let mut out = Vec::new();
        if events.is_empty() {
            return out;
        }
        // Halve first, then drop single events.
        if events.len() > 1 {
            out.push(FaultPlan {
                events: events[..events.len() / 2].to_vec(),
            });
        }
        for i in 0..events.len() {
            let mut kept = events.to_vec();
            kept.remove(i);
            out.push(FaultPlan { events: kept });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(42, &cfg);
        let b = FaultPlan::generate(42, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.faults);
        let c = FaultPlan::generate(43, &cfg);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn proceed_never_skips_a_scheduled_offset() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            dir: Dir::Write,
            offset: 10,
            kind: FaultKind::Disconnect,
        });
        let mut cur = plan.cursor();
        // Wanting 100 bytes is clamped down to the 10-byte gap.
        assert_eq!(
            cur.decide(Dir::Write, 100),
            IoDecision::Proceed { max_len: 10 }
        );
        cur.advance(Dir::Write, 10);
        // Now exactly at the offset: the fault fires.
        assert_eq!(cur.decide(Dir::Write, 100), IoDecision::Disconnect);
        // Consumed: subsequent I/O is unclamped.
        assert_eq!(
            cur.decide(Dir::Write, 100),
            IoDecision::Proceed { max_len: 100 }
        );
        assert!(cur.exhausted());
        assert_eq!(cur.injected().disconnect, 1);
    }

    #[test]
    fn directions_are_independent() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            dir: Dir::Read,
            offset: 0,
            kind: FaultKind::Error,
        });
        let mut cur = plan.cursor();
        // Writes are unaffected by a read-side fault.
        assert_eq!(
            cur.decide(Dir::Write, 64),
            IoDecision::Proceed { max_len: 64 }
        );
        assert_eq!(cur.decide(Dir::Read, 64), IoDecision::Error);
        assert_eq!(cur.injected().error, 1);
    }

    #[test]
    fn partial_clamps_but_never_to_zero() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            dir: Dir::Read,
            offset: 0,
            kind: FaultKind::Partial { max_bytes: 3 },
        });
        let mut cur = plan.cursor();
        assert_eq!(cur.decide(Dir::Read, 100), IoDecision::Proceed { max_len: 3 });
        // Even a degenerate want=0 read yields a nonzero clamp.
        let mut plan2 = FaultPlan::new();
        plan2.push(FaultEvent {
            dir: Dir::Read,
            offset: 0,
            kind: FaultKind::Partial { max_bytes: 5 },
        });
        let mut cur2 = plan2.cursor();
        match cur2.decide(Dir::Read, 0) {
            IoDecision::Proceed { max_len } => assert!(max_len >= 1),
            other => panic!("expected Proceed, got {other:?}"),
        }
    }

    #[test]
    fn equal_offsets_fire_in_push_order() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            dir: Dir::Write,
            offset: 4,
            kind: FaultKind::Delay { micros: 7 },
        });
        plan.push(FaultEvent {
            dir: Dir::Write,
            offset: 4,
            kind: FaultKind::Error,
        });
        let mut cur = plan.cursor();
        cur.advance(Dir::Write, 4);
        assert_eq!(cur.decide(Dir::Write, 1), IoDecision::Delay { micros: 7 });
        assert_eq!(cur.decide(Dir::Write, 1), IoDecision::Error);
        assert_eq!(cur.injected().total(), 2);
    }

    #[test]
    fn has_kind_matches_on_variant() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            dir: Dir::Read,
            offset: 9,
            kind: FaultKind::Partial { max_bytes: 2 },
        });
        assert!(plan.has_kind(&FaultKind::Partial { max_bytes: 999 }));
        assert!(!plan.has_kind(&FaultKind::Disconnect));
    }

    #[test]
    fn lifecycle_plan_fires_kills_in_record_order() {
        let mut plan = LifecyclePlan::new();
        plan.push(KillRestart {
            at_record: 30,
            torn_tail_bytes: 7,
        });
        plan.push(KillRestart {
            at_record: 10,
            torn_tail_bytes: 0,
        });
        assert_eq!(plan.kills()[0].at_record, 10, "sorted on push");
        let mut d = plan.driver();
        assert_eq!(d.advance(9), None);
        let k = d.advance(1).unwrap();
        assert_eq!(k.at_record, 10);
        // Both offsets inside one large batch: each advance fires at most
        // one kill, in order.
        let k = d.advance(100).unwrap();
        assert_eq!(k.at_record, 30);
        assert_eq!(k.torn_tail_bytes, 7);
        assert!(d.exhausted());
        assert_eq!(d.advance(100), None);
        assert_eq!(d.position(), 210);
    }

    #[test]
    fn lifecycle_generation_is_deterministic_and_shrinks_simpler() {
        let cfg = LifecyclePlanConfig::default();
        let a = LifecyclePlan::generate(11, &cfg);
        let b = LifecyclePlan::generate(11, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.kills);
        let gen = lifecycle_plans(cfg);
        for candidate in gen.shrink(&a) {
            let fewer = candidate.len() < a.len();
            let cleaner = candidate.len() == a.len()
                && candidate
                    .kills()
                    .iter()
                    .zip(a.kills())
                    .all(|(c, o)| c.torn_tail_bytes <= o.torn_tail_bytes);
            assert!(fewer || cleaner, "shrink must simplify: {candidate:?}");
        }
        assert!(gen.shrink(&LifecyclePlan::new()).is_empty());
    }

    #[test]
    fn shrink_only_drops_events() {
        let cfg = FaultPlanConfig {
            faults: 6,
            ..FaultPlanConfig::default()
        };
        let gen = fault_plans(cfg);
        let plan = FaultPlan::generate(7, &gen.cfg);
        for candidate in gen.shrink(&plan) {
            assert!(candidate.len() < plan.len());
            for e in candidate.events() {
                assert!(
                    plan.events().contains(e),
                    "shrink invented a new event: {e:?}"
                );
            }
        }
        assert!(gen.shrink(&FaultPlan::new()).is_empty());
    }
}
