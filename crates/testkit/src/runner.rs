//! The property-check runner: case generation, discard accounting,
//! panic capture, and greedy shrinking of failing inputs.

use crate::gen::Gen;
use ddn_stats::rng::{SplitMix64, Xoshiro256};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// Outcome of one property evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestResult {
    /// The property held for this input.
    Pass,
    /// The input did not satisfy a precondition (`prop_assume!`); the case
    /// is not counted and a replacement is generated.
    Discard,
    /// The property failed, with a human-readable reason.
    Fail(String),
}

impl TestResult {
    /// Convenience constructor for [`TestResult::Fail`].
    pub fn fail(msg: impl Into<String>) -> Self {
        TestResult::Fail(msg.into())
    }
}

/// Runner configuration.
///
/// [`Config::default`] reads two environment variables so CI can turn the
/// crank without code changes: `DDN_TESTKIT_CASES` overrides `cases` and
/// `DDN_TESTKIT_SEED` overrides `seed`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of non-discarded cases each property must pass.
    pub cases: u32,
    /// Base seed; combined with the property name so distinct properties
    /// see distinct (but fixed) streams.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking a failure.
    pub max_shrink_iters: u32,
}

/// The workspace's fixed default seed (see DESIGN.md's determinism
/// contract: every test run draws the same cases on every platform).
pub const DEFAULT_SEED: u64 = 0xDD17_B1A5_E5EE_D001;

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("DDN_TESTKIT_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        let seed = std::env::var("DDN_TESTKIT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        Self {
            cases,
            seed,
            max_shrink_iters: 1024,
        }
    }
}

thread_local! {
    static SILENCE_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" stderr chatter while the runner is probing a property
/// with `catch_unwind`, and defers to the previous hook otherwise. Without
/// this, shrinking a panicking property would print dozens of spurious
/// backtrace headers.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCE_PANICS.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked with a non-string payload".to_string()
    }
}

fn eval<V, P>(prop: &P, value: &V) -> TestResult
where
    P: Fn(&V) -> TestResult,
{
    let was_silenced = SILENCE_PANICS.with(|s| s.replace(true));
    let result = catch_unwind(AssertUnwindSafe(|| prop(value)));
    SILENCE_PANICS.with(|s| s.set(was_silenced));
    match result {
        Ok(r) => r,
        Err(payload) => TestResult::Fail(panic_message(payload)),
    }
}

/// FNV-1a over the property name: mixes the name into the seed so each
/// property draws an independent, *fixed* stream.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checks `prop` against [`Config::default`]-many generated cases.
/// Panics (failing the enclosing `#[test]`) on the first — shrunk —
/// counterexample.
pub fn check<G, P>(name: &str, gen: &G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value) -> TestResult,
{
    check_with(&Config::default(), name, gen, prop);
}

/// [`check`] with an explicit configuration.
///
/// # Panics
/// Panics with a report naming the minimal failing input, the seed, and a
/// reproduction hint if any case fails; also panics if more than
/// `10 × cases` inputs are discarded (a sign the precondition is too
/// strict to ever satisfy).
pub fn check_with<G, P>(cfg: &Config, name: &str, gen: &G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value) -> TestResult,
{
    assert!(cfg.cases > 0, "config needs at least one case");
    install_quiet_hook();
    let seed = cfg.seed ^ name_hash(name);
    let mut seeder = SplitMix64::new(seed);
    let mut passed = 0u32;
    let mut discarded = 0u32;
    let discard_limit = cfg.cases.saturating_mul(10);
    while passed < cfg.cases {
        let case_seed = seeder.split();
        let mut rng = Xoshiro256::seed_from(case_seed);
        let value = gen.generate(&mut rng);
        match eval(&prop, &value) {
            TestResult::Pass => passed += 1,
            TestResult::Discard => {
                discarded += 1;
                assert!(
                    discarded <= discard_limit,
                    "[ddn-testkit] property `{name}`: {discarded} inputs discarded \
                     against {passed} passed — precondition rejects nearly everything"
                );
            }
            TestResult::Fail(msg) => {
                let (minimal, reason, steps) = shrink_failure(cfg, gen, &prop, value, msg);
                panic!(
                    "[ddn-testkit] property `{name}` failed\n\
                     minimal input (after {steps} shrink steps): {minimal:?}\n\
                     reason: {reason}\n\
                     cases passed before failure: {passed}\n\
                     reproduce with: DDN_TESTKIT_SEED={} (base seed)\n",
                    cfg.seed,
                );
            }
        }
    }
}

/// Greedy shrink: repeatedly replace the failing input with its first
/// still-failing shrink candidate until no candidate fails or the budget
/// runs out. Returns the minimal input, its failure reason, and the number
/// of successful shrink steps.
fn shrink_failure<G, P>(
    cfg: &Config,
    gen: &G,
    prop: &P,
    value: G::Value,
    msg: String,
) -> (G::Value, String, u32)
where
    G: Gen,
    P: Fn(&G::Value) -> TestResult,
{
    let mut best = value;
    let mut reason = msg;
    let mut budget = cfg.max_shrink_iters;
    let mut steps = 0u32;
    'outer: while budget > 0 {
        for candidate in gen.shrink(&best) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let TestResult::Fail(m) = eval(prop, &candidate) {
                best = candidate;
                reason = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (best, reason, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::vecs;

    fn cfg(cases: u32) -> Config {
        Config {
            cases,
            seed: DEFAULT_SEED,
            max_shrink_iters: 1024,
        }
    }

    /// Runs `f`, which must panic, and returns the panic message without
    /// letting the default hook print it (these panics are expected).
    fn expect_panic(f: impl FnOnce()) -> String {
        install_quiet_hook();
        SILENCE_PANICS.with(|s| s.set(true));
        let caught = catch_unwind(AssertUnwindSafe(f));
        SILENCE_PANICS.with(|s| s.set(false));
        panic_message(caught.expect_err("expected a panic"))
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check_with(&cfg(64), "always_pass", &(0u32..10), |_| {
            counter.set(counter.get() + 1);
            TestResult::Pass
        });
        seen += counter.get();
        assert_eq!(seen, 64);
    }

    #[test]
    fn same_seed_same_cases() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            check_with(&cfg(32), "determinism_probe", &(0u64..1_000_000), |&v| {
                seen.borrow_mut().push(v);
                TestResult::Pass
            });
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn different_properties_draw_different_streams() {
        let collect = |name: &str| {
            let seen = std::cell::RefCell::new(Vec::new());
            check_with(&cfg(16), name, &(0u64..1_000_000), |&v| {
                seen.borrow_mut().push(v);
                TestResult::Pass
            });
            seen.into_inner()
        };
        assert_ne!(collect("stream_a"), collect("stream_b"));
    }

    #[test]
    fn failure_shrinks_to_minimal_counterexample() {
        // Fails for any value >= 100: the minimal failing input is 100.
        let msg = expect_panic(|| {
            check_with(&cfg(64), "shrinks_to_boundary", &(0u32..1_000), |&v| {
                if v >= 100 {
                    TestResult::fail(format!("{v} too big"))
                } else {
                    TestResult::Pass
                }
            });
        });
        assert!(msg.contains("minimal input"), "{msg}");
        assert!(msg.contains(": 100"), "did not shrink to 100: {msg}");
    }

    #[test]
    fn vec_failures_shrink_structurally() {
        // Fails whenever the vec contains an 8; minimal case is one element.
        let msg = expect_panic(|| {
            check_with(
                &cfg(64),
                "vec_shrink",
                &vecs(0u32..10, 1..30),
                |v: &Vec<u32>| {
                    if v.contains(&8) {
                        TestResult::fail("contains 8")
                    } else {
                        TestResult::Pass
                    }
                },
            );
        });
        assert!(msg.contains("[8]"), "expected minimal [8], got: {msg}");
    }

    #[test]
    fn panics_are_caught_and_reported() {
        let msg = expect_panic(|| {
            check_with(&cfg(8), "panicking_prop", &(0u32..4), |&v| {
                panic!("boom at {v}");
            });
        });
        assert!(msg.contains("panicked: boom"), "{msg}");
    }

    #[test]
    fn discard_limit_reported() {
        let msg = expect_panic(|| {
            check_with(&cfg(8), "discard_everything", &(0u32..4), |_| {
                TestResult::Discard
            });
        });
        assert!(msg.contains("discarded"), "{msg}");
    }
}
