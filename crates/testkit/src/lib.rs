//! # ddn-testkit — deterministic property-based testing
//!
//! A small proptest-style framework with zero dependencies outside this
//! workspace, built on the `ddn-stats` RNG substrate so that every property
//! draws the same cases on every platform and every run (the same
//! determinism contract the paper's 50-run experiments rely on).
//!
//! ## Worked example
//!
//! ```
//! use ddn_testkit::{prop, prop_assert, prop_assert_eq, vecs};
//!
//! fn total(xs: &[f64]) -> f64 { xs.iter().sum() }
//!
//! prop! {
//!     // Each `name in generator` binding draws one input per case;
//!     // `0.0..10.0f64` IS the generator (ranges implement `Gen`).
//!     fn sum_is_order_independent(xs in vecs(0.0..10.0f64, 1..20)) {
//!         let mut reversed = xs.clone();
//!         reversed.reverse();
//!         prop_assert!((total(&xs) - total(&reversed)).abs() < 1e-9);
//!         prop_assert_eq!(xs.len(), reversed.len());
//!     }
//! }
//! // `cargo test` picks up `sum_is_order_independent` like any `#[test]`.
//! ```
//!
//! Each property runs [`DEFAULT_CASES`](runner::DEFAULT_CASES) cases
//! (override with `DDN_TESTKIT_CASES`) from a fixed seed (override with
//! `DDN_TESTKIT_SEED`). On failure the input is shrunk to a minimal
//! counterexample and reported with a reproduction hint.
//!
//! ## Vocabulary
//!
//! - Generators: numeric `Range`s, tuples of generators, [`vecs`],
//!   [`strings_from`], [`just`], [`map`] — see [`gen`].
//! - Assertions inside `prop!`: [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], and [`prop_assume!`] for preconditions.
//! - Escape hatch: [`check`] / [`check_with`] take a generator and a
//!   closure returning [`TestResult`] when the macro form is too rigid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod composite;
pub mod fault;
pub mod gen;
pub mod runner;

pub use composite::{composite_scenarios, CompositeScenario, CompositeScenarioGen};
pub use fault::{
    fault_plans, lifecycle_plans, Dir, FaultCounts, FaultCursor, FaultEvent, FaultKind,
    FaultPlan, FaultPlanConfig, FaultPlanGen, IoDecision, KillRestart, LifecycleDriver,
    LifecyclePlan, LifecyclePlanConfig, LifecyclePlanGen,
};
pub use gen::{just, map, strings_from, vecs, Gen, JustGen, MapGen, StringGen, VecGen};
pub use runner::{check, check_with, Config, TestResult, DEFAULT_CASES, DEFAULT_SEED};

/// Defines `#[test]` functions that check properties over generated inputs.
///
/// Each `fn name(arg in generator, ...) { body }` item expands to a test
/// that runs the body against [`runner::Config::default`]-many generated
/// cases; the body uses [`prop_assert!`]-family macros (or plain panics —
/// they are caught and shrunk too).
#[macro_export]
macro_rules! prop {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let __gen = ($($gen,)+);
            $crate::check(
                concat!(module_path!(), "::", stringify!($name)),
                &__gen,
                |__value: &_| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(__value);
                    $body
                    #[allow(unreachable_code)]
                    $crate::TestResult::Pass
                },
            );
        }
    )+};
}

/// Asserts a condition inside a [`prop!`] body; on failure the case is
/// reported (and shrunk) instead of aborting the whole test process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return $crate::TestResult::fail(format!(
                "assertion failed: `{}` at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::TestResult::fail(format!(
                "assertion failed: `{}` at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts two expressions compare equal inside a [`prop!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return $crate::TestResult::fail(format!(
                        "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        file!(),
                        line!(),
                        __l,
                        __r
                    ));
                }
            }
        }
    };
}

/// Asserts two expressions compare unequal inside a [`prop!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return $crate::TestResult::fail(format!(
                        "assertion failed: `{} != {}` at {}:{}\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        file!(),
                        line!(),
                        __l
                    ));
                }
            }
        }
    };
}

/// Discards the current case when a precondition does not hold; the runner
/// draws a replacement input (bounded by a discard limit).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return $crate::TestResult::Discard;
        }
    };
}

#[cfg(test)]
mod macro_tests {
    // `#[macro_export]` macros are textually in scope; only `vecs` needs
    // importing.
    use crate::vecs;

    prop! {
        fn addition_commutes(a in 0u32..1_000, b in 0u32..1_000) {
            prop_assert_eq!(a + b, b + a);
        }

        fn assume_filters_inputs(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0, "assume should have filtered odd {}", x);
        }

        fn single_binding_works(xs in vecs(0.0..1.0f64, 1..10)) {
            prop_assert!(!xs.is_empty());
            prop_assert_ne!(xs.len(), 0);
        }

        fn trailing_comma_accepted(x in 0u32..3,) {
            prop_assert!(x < 3);
        }
    }
}
