//! Thin shim over [`ddn_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ddn_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            // Diagnostics go to stderr so stdout stays parseable; usage
            // mistakes exit 2, runtime failures exit 1.
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    }
}
