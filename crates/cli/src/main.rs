//! Thin shim over [`ddn_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ddn_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
