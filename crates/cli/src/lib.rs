//! # ddn-cli — trace-driven evaluation from the command line
//!
//! A small operator-facing tool over JSONL traces (the interchange format
//! of `ddn-trace`):
//!
//! ```text
//! ddn stats    <trace.jsonl>
//! ddn evaluate <trace.jsonl> --decision <name> [--estimator dr|dm|ips|snips|matching]
//!                            [--model tabular|knn] [--confidence 0.95]
//! ddn compare  <trace.jsonl> [--estimator ...] [--model ...]
//! ddn overlap  <trace.jsonl> --decision <name>
//! ddn repair   <in.jsonl> <out.jsonl> [--smoothing 0.5]
//! ddn generate <out.jsonl> --world cfa|wise|relay|netsim [--n 1000] [--seed 7]
//! ```
//!
//! `evaluate` scores the constant policy "always take `--decision`" —
//! the what-if question operators actually ask of a trace ("what if we
//! pinned everyone to CDN 2?"). `compare` ranks every constant policy.
//! `repair` fills missing propensities with trace-estimated ones so
//! legacy telemetry becomes IPS/DR-capable.
//!
//! The library surface ([`run`]) takes argv-style strings and returns the
//! rendered output, which is what the tests drive; `main.rs` is a thin
//! shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ddn_estimators::{
    DirectMethod, DoublyRobust, ErrorTable, Estimate, Estimator, Ips, MatchingEstimator,
    OverlapReport, PolicyComparator, SelfNormalizedIps,
};
use ddn_models::{KnnConfig, KnnRegressor, RewardModel, TabularMeanModel};
use ddn_policy::{LookupPolicy, Policy};
use ddn_scenarios::ablations::{ablation_menu, ablation_menu_instrumented, MenuConfig};
use ddn_scenarios::figure7a::{figure7a_instrumented, figure7a_with, Figure7aConfig};
use ddn_scenarios::figure7b::{figure7b_instrumented, figure7b_with, Figure7bConfig};
use ddn_scenarios::figure7c::{figure7c_instrumented, figure7c_with, Figure7cConfig};
use ddn_scenarios::health::{health_suite_with, HealthConfig};
use ddn_stats::bootstrap::bootstrap_ci;
use ddn_stats::rng::Xoshiro256;
use ddn_stats::Json;
use ddn_telemetry::TelemetrySnapshot;
use ddn_trace::{CoverageReport, EmpiricalPropensity, Trace, TraceStats};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};

/// CLI errors, with user-facing messages.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (usage is included in the message).
    Usage(String),
    /// Trace loading/validation failed.
    Trace(ddn_trace::TraceError),
    /// Estimation failed.
    Estimator(ddn_estimators::EstimatorError),
    /// Filesystem error.
    Io(std::io::Error),
    /// A telemetry file failed validation (bad JSON or missing health keys).
    Telemetry(String),
    /// The streaming evaluation service (or its client) failed.
    Serve(String),
    /// A benchmark artifact failed the regression gate (bench-diff) or
    /// could not be read/compared.
    Bench(String),
}

impl CliError {
    /// Process exit code for this error: usage mistakes exit 2, runtime
    /// failures (I/O, bad traces, estimation, telemetry validation) exit 1.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Trace(e) => write!(f, "trace error: {e}"),
            CliError::Estimator(e) => write!(f, "estimation error: {e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Telemetry(m) => write!(f, "telemetry error: {m}"),
            CliError::Serve(m) => write!(f, "serve error: {m}"),
            CliError::Bench(m) => write!(f, "bench error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ddn_trace::TraceError> for CliError {
    fn from(e: ddn_trace::TraceError) -> Self {
        CliError::Trace(e)
    }
}
impl From<ddn_estimators::EstimatorError> for CliError {
    fn from(e: ddn_estimators::EstimatorError) -> Self {
        CliError::Estimator(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

const USAGE: &str = "\
ddn — trace-driven evaluation toolkit

USAGE:
  ddn stats    <trace.jsonl>
  ddn evaluate <trace.jsonl> --decision <name> [--estimator dr|dm|ips|snips|matching]
                             [--model tabular|knn] [--confidence 0.95]
                             [--telemetry <out.json>]
  ddn compare  <trace.jsonl> [--estimator dr|dm|ips|snips|matching] [--model tabular|knn]
  ddn overlap  <trace.jsonl> --decision <name>
  ddn repair   <in.jsonl> <out.jsonl> [--smoothing 0.5]
  ddn generate <out.jsonl> --world cfa|wise|relay|netsim [--n 1000] [--seed 7]
  ddn figure7  [7a|7b|7c|all|menu] [--panel <name>] [--runs 50] [--no-batch]
               [--telemetry <out.json>]
  ddn selftest [--runs 16] [--telemetry <out.json>]
  ddn telemetry-check <telemetry.json>   (expects a full-menu snapshot,
                                          i.e. one written by selftest)
  ddn serve    [--addr 127.0.0.1:0] [--shards 4] [--dispatchers 2] [--queue 256]
               [--port-file <path>] [--data-dir <dir>] [--snapshot-every 256]
               [--failpoint <marker>]
  ddn replay-to <trace.jsonl> --addr <host:port> --decision <name>
               [--estimator ips|snips|clipped|dm|dr] [--session replay]
               [--batch 256] [--model-value 0] [--window <n>] [--binary]
               [--shutdown]
  ddn query    --addr <host:port> --session <name>
               [--estimator <name>] [--shutdown]
  ddn top      --addr <host:port> [--once] [--json] [--flight]
               [--interval-ms 1000] [--count <n>] [--shutdown]
  ddn flight   <flightrec.jsonl>
  ddn chaos    [--seed 7] [--faults 0.01] [--duration-records 20000]
               [--batch 256] [--shards 4]
  ddn loadgen  [--sessions 100000] [--records 3] [--batch 2] [--workers 0]
               [--shards 4] [--dispatchers 2] [--queue 256] [--seed 7]
               [--rate 25000] [--profile constant|diurnal] [--framing mixed]
               [--faults 0] [--timescale 1] [--open-loop] [--smoke]
               [--addr <host:port>] [--bench-json <out.json>]
               [--health-every 512] [--stats-every 4096]
  ddn bench-diff <bench-dir> [--floors bench_floors.json] [--pin]

figure7's `menu` panel (also reachable as `--panel menu`) runs the
estimator-menu ablation instead of a paper panel: three breaking
scenarios (adaptive logging, composite actions, multi-step sessions)
swept over trace size, each challenger against its incumbents. `all`
still means the paper's three panels.

With --telemetry, the full snapshot (estimator health, span timings) is
written as JSON to the given path and a summary table goes to stderr.
--no-batch disables the shared-score evaluation batch (per-estimator
scoring, the pre-batching code path) for A/B timing; the estimates are
bit-identical either way. For 7b, --no-batch is accepted but is a
documented no-op: 7b replays sessions chunk-by-chunk and has no shared
batch to disable, so it always runs the same code path.

serve starts the streaming evaluation service (DESIGN.md §10): it prints
the bound address to stderr (and to --port-file, if given) and blocks
until a client sends the shutdown verb. replay-to streams an existing
JSONL trace into a running server without ever loading the whole file,
then asks for the online estimate; with --shutdown it stops the server
afterwards, and with --binary each batch travels as one binary columnar
frame (DESIGN.md §14) instead of a JSON ingest line — same estimates,
a fraction of the wire cost. With --data-dir, serve write-ahead-logs every state-bearing
request and snapshots session state every --snapshot-every frames
(DESIGN.md §12): restarting on the same directory recovers every session
bit-identically. query reads the current estimate of an existing session
without re-initializing it — the way to inspect state recovered from a
--data-dir restart.

chaos is a self-contained soak (DESIGN.md §11): it starts an in-process
server, streams --duration-records synthetic records through a client
whose transport injects a seeded fault plan (partial I/O, delays,
mid-line disconnects, error returns — at least one disconnect always
fires), and exits non-zero unless every acknowledged record was counted
exactly once and the streamed estimate is bit-identical to the offline
estimator. --faults is the per-record fault rate.

top polls a running server's stats verb (DESIGN.md §13) and renders a
per-verb, per-shard table: request counts, rates since the previous
poll, and p50/p99 queue-wait and handler latencies derived from the
served histogram buckets. --once polls a single time; --json prints the
raw stats response instead of the table (scripting mode); --flight also
asks for every shard's flight-recorder ring (rewriting the on-disk
dumps when the server has a --data-dir). flight validates a
flightrec-<shard>.jsonl dump — every line parses, event indices are
consecutive — and summarizes it. serve --failpoint <marker> arms the
test-only panic failpoint: an ingest whose session contains the marker
panics its shard worker, which quarantines the session and dumps that
shard's flight recorder.

loadgen drives a fleet of simulated clients through a live server
(DESIGN.md §15): a seeded nonhomogeneous-Poisson schedule spawns mixed
ABR/CDN/relay sessions that init, ingest their simulator-logged records
(JSON or binary frames per --framing), and ask for estimates, with
sparse health/stats polls. Default is closed-loop; --open-loop issues
arrivals on the schedule clock (divided by --timescale) and measures
init latency from the intended arrival, making coordinated omission
visible. --faults wires the chaos fault plane into every worker's
transport. The run fails unless the server counted every record exactly
once and every session's streamed estimate is bit-identical to the
offline estimator. --smoke runs a small fixed configuration against an
ephemeral self-hosted server and additionally re-derives the schedule to
prove digest-level determinism. --bench-json writes the
BENCH_loadgen.json summary (records/sec, per-verb p50/p99, stalls,
retries) the bench-diff gate consumes.

bench-diff is the perf-trajectory regression gate: it reads the pinned
floors file (repo root bench_floors.json), looks up each metric in the
named BENCH_*.json inside <bench-dir>, and fails (exit 1) if any value
fell below its floor. --pin rewrites the floors file from the current
values times its pin_margin — the one-command way to re-baseline after
an intentional perf change.
";

/// Flags that stand alone (no value follows them).
const BOOL_FLAGS: &[&str] = &[
    "no-batch",
    "shutdown",
    "once",
    "json",
    "flight",
    "binary",
    "open-loop",
    "smoke",
    "pin",
];

/// Parsed flag set (very small; hand-rolled on purpose — no CLI deps).
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut positional = Vec::new();
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&name) {
                    switches.push(name.to_string());
                    continue;
                }
                let value = it.next().ok_or_else(|| {
                    CliError::Usage(format!("flag --{name} needs a value\n\n{USAGE}"))
                })?;
                pairs.push((name.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self {
            positional,
            pairs,
            switches,
        })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|n| n == name)
    }
}

fn load_trace(path: &str) -> Result<Trace, CliError> {
    let file = File::open(path)?;
    Ok(Trace::read_jsonl(BufReader::new(file))?)
}

enum ModelChoice {
    Tabular(TabularMeanModel),
    Knn(KnnRegressor),
}

impl RewardModel for ModelChoice {
    fn predict(&self, c: &ddn_trace::Context, d: ddn_trace::Decision) -> f64 {
        match self {
            ModelChoice::Tabular(m) => m.predict(c, d),
            ModelChoice::Knn(m) => m.predict(c, d),
        }
    }
}

fn fit_model(trace: &Trace, which: &str) -> Result<ModelChoice, CliError> {
    match which {
        "tabular" => Ok(ModelChoice::Tabular(TabularMeanModel::fit_trace(
            trace, 1.0,
        ))),
        "knn" => Ok(ModelChoice::Knn(KnnRegressor::fit(
            trace,
            KnnConfig::default(),
        ))),
        other => Err(CliError::Usage(format!(
            "unknown model {other:?} (expected tabular|knn)\n\n{USAGE}"
        ))),
    }
}

fn estimate_with(
    estimator: &str,
    trace: &Trace,
    policy: &dyn Policy,
    model: &ModelChoice,
) -> Result<Estimate, CliError> {
    let est = match estimator {
        "dr" => DoublyRobust::new(model).estimate(trace, policy),
        "dm" => DirectMethod::new(model).estimate(trace, policy),
        "ips" => Ips::new().estimate(trace, policy),
        "snips" => SelfNormalizedIps::new().estimate(trace, policy),
        "matching" => MatchingEstimator::new().estimate(trace, policy),
        other => {
            return Err(CliError::Usage(format!(
                "unknown estimator {other:?} (expected dr|dm|ips|snips|matching)\n\n{USAGE}"
            )))
        }
    };
    Ok(est?)
}

/// Runs the CLI on argv-style arguments (excluding the program name) and
/// returns the rendered output.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage(format!("missing subcommand\n\n{USAGE}")));
    };
    match cmd.as_str() {
        "stats" => cmd_stats(rest),
        "evaluate" => cmd_evaluate(rest),
        "compare" => cmd_compare(rest),
        "overlap" => cmd_overlap(rest),
        "repair" => cmd_repair(rest),
        "generate" => cmd_generate(rest),
        "figure7" => cmd_figure7(rest),
        "selftest" => cmd_selftest(rest),
        "telemetry-check" => cmd_telemetry_check(rest),
        "serve" => cmd_serve(rest),
        "replay-to" => cmd_replay_to(rest),
        "query" => cmd_query(rest),
        "top" => cmd_top(rest),
        "flight" => cmd_flight(rest),
        "chaos" => cmd_chaos(rest),
        "loadgen" => cmd_loadgen(rest),
        "bench-diff" => cmd_bench_diff(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown subcommand {other:?}\n\n{USAGE}"
        ))),
    }
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "stats needs exactly one trace path\n\n{USAGE}"
        )));
    };
    let trace = load_trace(path)?;
    let stats = TraceStats::of(&trace);
    let coverage = CoverageReport::of(&trace);
    let mut out = stats.render();
    out.push_str(&format!(
        "coverage: {} distinct contexts, {}/{} decisions seen, cell fill {:.1}%\n",
        coverage.distinct_contexts,
        coverage.decisions_seen,
        coverage.decisions_total,
        100.0 * coverage.cell_fill,
    ));
    if coverage.has_unseen_decisions() {
        out.push_str(
            "WARNING: some decisions never appear — IPS/DR for policies using them is undefined\n",
        );
    }
    Ok(out)
}

fn cmd_evaluate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "evaluate needs exactly one trace path\n\n{USAGE}"
        )));
    };
    let decision = flags
        .get("decision")
        .ok_or_else(|| CliError::Usage(format!("evaluate needs --decision <name>\n\n{USAGE}")))?;
    let estimator = flags.get("estimator").unwrap_or("dr");
    let model_name = flags.get("model").unwrap_or("tabular");
    let confidence: f64 = flags
        .get("confidence")
        .unwrap_or("0.95")
        .parse()
        .map_err(|_| CliError::Usage("confidence must be a number".into()))?;

    let trace = load_trace(path)?;
    let idx = trace.space().position(decision).ok_or_else(|| {
        CliError::Usage(format!(
            "decision {decision:?} not in the trace's space {:?}",
            trace.space().names()
        ))
    })?;
    let policy = LookupPolicy::constant(trace.space().clone(), idx);
    let model = fit_model(&trace, model_name)?;
    let est = if let Some(telemetry_path) = flags.get("telemetry") {
        let (est, collector) = ddn_telemetry::collect(|| {
            let _span = ddn_telemetry::span("evaluate");
            estimate_with(estimator, &trace, &policy, &model)
        });
        let mut snap = TelemetrySnapshot::from_runs(std::slice::from_ref(&collector));
        snap.set_threads(1);
        write_telemetry(telemetry_path, &snap)?;
        est?
    } else {
        estimate_with(estimator, &trace, &policy, &model)?
    };
    let mut rng = Xoshiro256::seed_from(0xDDCC);
    let ci = bootstrap_ci(&est.per_record, confidence, 2_000, &mut rng);
    Ok(format!(
        "policy: always {decision}\nestimator: {estimator} (model: {model_name})\n\
         estimate: {:.6}\n{:.0}% CI: [{:.6}, {:.6}]\n\
         effective sample size: {:.0} of {} | max weight {:.2}\n",
        est.value,
        confidence * 100.0,
        ci.lo,
        ci.hi,
        est.diagnostics.effective_sample_size,
        trace.len(),
        est.diagnostics.max_weight,
    ))
}

fn cmd_compare(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "compare needs exactly one trace path\n\n{USAGE}"
        )));
    };
    let estimator = flags.get("estimator").unwrap_or("dr");
    let model_name = flags.get("model").unwrap_or("tabular");
    let trace = load_trace(path)?;
    let model = fit_model(&trace, model_name)?;

    let policies: Vec<(String, LookupPolicy)> = trace
        .space()
        .names()
        .iter()
        .enumerate()
        .map(|(i, n)| {
            (
                format!("always {n}"),
                LookupPolicy::constant(trace.space().clone(), i),
            )
        })
        .collect();
    let slate: Vec<(&str, &dyn Policy)> = policies
        .iter()
        .map(|(n, p)| (n.as_str(), p as &dyn Policy))
        .collect();

    // Wrap the chosen estimator so PolicyComparator can drive it.
    struct Chosen<'a> {
        name: String,
        model: &'a ModelChoice,
    }
    impl Estimator for Chosen<'_> {
        fn name(&self) -> &str {
            &self.name
        }
        fn estimate(
            &self,
            trace: &Trace,
            policy: &dyn Policy,
        ) -> Result<Estimate, ddn_estimators::EstimatorError> {
            match self.name.as_str() {
                "dr" => DoublyRobust::new(self.model).estimate(trace, policy),
                "dm" => DirectMethod::new(self.model).estimate(trace, policy),
                "ips" => Ips::new().estimate(trace, policy),
                "snips" => SelfNormalizedIps::new().estimate(trace, policy),
                _ => MatchingEstimator::new().estimate(trace, policy),
            }
        }
    }
    if !matches!(estimator, "dr" | "dm" | "ips" | "snips" | "matching") {
        return Err(CliError::Usage(format!(
            "unknown estimator {estimator:?} (expected dr|dm|ips|snips|matching)\n\n{USAGE}"
        )));
    }
    let chosen = Chosen {
        name: estimator.to_string(),
        model: &model,
    };
    let mut rng = Xoshiro256::seed_from(0xCCDD);
    let cmp = PolicyComparator::new(&chosen).compare(&trace, &slate, &mut rng);
    let mut out = format!("estimator: {estimator} (model: {model_name})\n");
    out.push_str(&cmp.render());
    match cmp.decisive() {
        Some(true) => out.push_str("verdict: decisive (winner's CI clears the runner-up)\n"),
        Some(false) => out.push_str(
            "verdict: NOT decisive — CIs overlap; collect more (or more randomized) data\n",
        ),
        None => out.push_str("verdict: no candidate evaluable\n"),
    }
    Ok(out)
}

fn cmd_overlap(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "overlap needs exactly one trace path\n\n{USAGE}"
        )));
    };
    let decision = flags
        .get("decision")
        .ok_or_else(|| CliError::Usage(format!("overlap needs --decision <name>\n\n{USAGE}")))?;
    let trace = load_trace(path)?;
    let idx = trace.space().position(decision).ok_or_else(|| {
        CliError::Usage(format!(
            "decision {decision:?} not in the trace's space {:?}",
            trace.space().names()
        ))
    })?;
    let policy = LookupPolicy::constant(trace.space().clone(), idx);
    let report = OverlapReport::analyze(&trace, &policy)?;
    Ok(format!("policy: always {decision}\n{}", report.render()))
}

fn cmd_repair(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let [input, output] = flags.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "repair needs input and output paths\n\n{USAGE}"
        )));
    };
    let smoothing: f64 = flags
        .get("smoothing")
        .unwrap_or("0.5")
        .parse()
        .map_err(|_| CliError::Usage("smoothing must be a number".into()))?;
    let trace = load_trace(input)?;
    let missing = trace
        .records()
        .iter()
        .filter(|r| r.propensity.is_none())
        .count();
    let fitted = EmpiricalPropensity::fit(&trace, smoothing);
    let repaired_records: Vec<_> = trace
        .records()
        .iter()
        .map(|r| {
            if r.propensity.is_some() {
                r.clone()
            } else {
                let p = fitted.prob(&r.context, r.decision).clamp(1e-9, 1.0);
                let mut r = r.clone();
                r.propensity = Some(p);
                r
            }
        })
        .collect();
    let repaired = Trace::from_records(
        trace.schema().clone(),
        trace.space().clone(),
        repaired_records,
    )?;
    let file = File::create(output)?;
    repaired.write_jsonl(BufWriter::new(file))?;
    Ok(format!(
        "repaired {missing} of {} records with empirical propensities (smoothing {smoothing}); \
         wrote {output}\n",
        repaired.len(),
    ))
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let [output] = flags.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "generate needs an output path\n\n{USAGE}"
        )));
    };
    let world = flags
        .get("world")
        .ok_or_else(|| CliError::Usage(format!("generate needs --world <name>\n\n{USAGE}")))?;
    let n: usize = flags
        .get("n")
        .unwrap_or("1000")
        .parse()
        .map_err(|_| CliError::Usage("n must be a positive integer".into()))?;
    let seed: u64 = flags
        .get("seed")
        .unwrap_or("7")
        .parse()
        .map_err(|_| CliError::Usage("seed must be an integer".into()))?;
    if n == 0 {
        return Err(CliError::Usage("n must be at least 1".into()));
    }

    let trace = match world {
        "cfa" => {
            let w = ddn_cdn::cfa::CfaWorld::new(ddn_cdn::cfa::CfaConfig::default(), seed);
            let mut rng = Xoshiro256::seed_from(seed ^ 0xAAAA);
            let clients = w.sample_clients(n, &mut rng);
            let old = ddn_policy::UniformRandomPolicy::new(w.space().clone());
            w.log_trace(&clients, &old, seed ^ 0xBBBB)
        }
        "wise" => {
            let w = ddn_cdn::wise::WiseWorld::new(ddn_cdn::wise::WiseConfig::default());
            // Scale the canonical population to roughly n clients.
            let pop = w.population();
            let take = n.min(pop.len()).max(1);
            w.log_trace(&pop[..take], &w.old_policy(), seed)
        }
        "relay" => {
            let w = ddn_relay::RelayWorld::new(ddn_relay::RelayConfig::default(), seed);
            let mut rng = Xoshiro256::seed_from(seed ^ 0xCCCC);
            let calls = w.sample_calls(n, &mut rng);
            let old = w.nat_only_relay_policy(0.2);
            w.log_trace(&calls, &old, seed ^ 0xDDDD)
        }
        "netsim" => {
            // Horizon sized so ~n requests arrive at 10 req/s.
            let horizon = (n as f64 / 10.0).max(1.0);
            let w = ddn_netsim::small_world(ddn_netsim::RateProfile::Constant(10.0), horizon);
            let old = ddn_policy::EpsilonSmoothedPolicy::new(
                Box::new(LookupPolicy::constant(w.space().clone(), 0)),
                0.3,
            );
            w.run(&old, seed).trace
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown world {other:?} (expected cfa|wise|relay|netsim)\n\n{USAGE}"
            )))
        }
    };
    let file = File::create(output)?;
    trace.write_jsonl(BufWriter::new(file))?;
    Ok(format!(
        "generated {} records from the {world} world (seed {seed}) into {output}\n\
         decisions: {:?}\n",
        trace.len(),
        trace.space().names(),
    ))
}

/// Writes the telemetry snapshot as JSON to `path` and prints the
/// human-readable summary table to stderr (results stay on stdout).
fn write_telemetry(path: &str, snap: &TelemetrySnapshot) -> Result<(), CliError> {
    let mut body = snap.to_json().to_string();
    body.push('\n');
    std::fs::write(path, body)?;
    eprint!("{}", snap.render());
    Ok(())
}

/// Runs one Figure 7 panel, instrumented or plain. `use_batch: false`
/// is the `--no-batch` escape hatch (a documented no-op for 7b, whose
/// session replay has no shared batch).
fn run_panel(
    panel: &str,
    runs: usize,
    with_telemetry: bool,
    use_batch: bool,
) -> (ErrorTable, Option<TelemetrySnapshot>) {
    match panel {
        "7a" => {
            let cfg = Figure7aConfig {
                runs,
                use_batch,
                ..Default::default()
            };
            if with_telemetry {
                let (t, s) = figure7a_instrumented(&cfg);
                (t, Some(s))
            } else {
                (figure7a_with(&cfg), None)
            }
        }
        "7b" => {
            let cfg = Figure7bConfig {
                runs,
                ..Default::default()
            };
            if with_telemetry {
                let (t, s) = figure7b_instrumented(&cfg);
                (t, Some(s))
            } else {
                (figure7b_with(&cfg), None)
            }
        }
        _ => {
            let cfg = Figure7cConfig {
                runs,
                use_batch,
                ..Default::default()
            };
            if with_telemetry {
                let (t, s) = figure7c_instrumented(&cfg);
                (t, Some(s))
            } else {
                (figure7c_with(&cfg), None)
            }
        }
    }
}

fn cmd_figure7(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    // The panel can arrive positionally (`ddn figure7 menu`) or as a
    // flag (`ddn figure7 --panel menu`); the flag wins if both appear.
    let panel = flags
        .get("panel")
        .or_else(|| flags.positional.first().map(String::as_str))
        .unwrap_or("all");
    let runs: usize = flags
        .get("runs")
        .unwrap_or("50")
        .parse()
        .map_err(|_| CliError::Usage("runs must be a positive integer".into()))?;
    if runs == 0 {
        return Err(CliError::Usage("runs must be at least 1".into()));
    }
    let telemetry_path = flags.get("telemetry");
    let use_batch = !flags.has("no-batch");

    if panel == "menu" {
        let cfg = MenuConfig {
            runs,
            ..Default::default()
        };
        let (scenarios, snap) = if telemetry_path.is_some() {
            let (s, snap) = ablation_menu_instrumented(&cfg);
            (s, Some(snap))
        } else {
            (ablation_menu(&cfg), None)
        };
        if let (Some(path), Some(snap)) = (telemetry_path, &snap) {
            write_telemetry(path, snap)?;
        }
        return Ok(ddn_scenarios::ablations::menu::render(&scenarios));
    }

    let panels: &[&str] = match panel {
        "7a" => &["7a"],
        "7b" => &["7b"],
        "7c" => &["7c"],
        "all" => &["7a", "7b", "7c"],
        other => {
            return Err(CliError::Usage(format!(
                "unknown panel {other:?} (expected 7a|7b|7c|all|menu)\n\n{USAGE}"
            )))
        }
    };

    let mut out = String::new();
    let mut merged: Option<TelemetrySnapshot> = None;
    for p in panels {
        let (table, snap) = run_panel(p, runs, telemetry_path.is_some(), use_batch);
        out.push_str(&table.render(&format!("Figure {p} — relative error ({runs} runs)")));
        out.push('\n');
        if let Some(snap) = snap {
            match &mut merged {
                Some(m) => m.merge(&snap),
                None => merged = Some(snap),
            }
        }
    }
    if let (Some(path), Some(snap)) = (telemetry_path, &merged) {
        write_telemetry(path, snap)?;
    }
    Ok(out)
}

fn cmd_selftest(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let runs: usize = flags
        .get("runs")
        .unwrap_or("16")
        .parse()
        .map_err(|_| CliError::Usage("runs must be a positive integer".into()))?;
    if runs == 0 {
        return Err(CliError::Usage("runs must be at least 1".into()));
    }
    let cfg = HealthConfig {
        runs,
        ..Default::default()
    };
    let (table, snap) = health_suite_with(&cfg);
    // The suite's contract: every estimator family reports its signature
    // diagnostic. A miss means the observability layer regressed.
    let mut missing = Vec::new();
    for (source, metric) in REQUIRED_HEALTH {
        if snap.health_metric(source, metric).is_none() {
            missing.push(format!("{source}/{metric}"));
        }
    }
    if !missing.is_empty() {
        return Err(CliError::Telemetry(format!(
            "selftest missing health metrics: {}",
            missing.join(", ")
        )));
    }
    if let Some(path) = flags.get("telemetry") {
        write_telemetry(path, &snap)?;
    }
    let mut out = table.render(&format!(
        "estimator health suite — relative error vs truth {} ({runs} runs)",
        ddn_scenarios::health::HEALTH_TRUTH
    ));
    out.push_str(&format!(
        "selftest ok: {} health sources, every signature metric present\n",
        snap.health_sources().len()
    ));
    Ok(out)
}

/// The health metrics a well-formed telemetry file must carry — one
/// signature diagnostic per estimator family.
const REQUIRED_HEALTH: &[(&str, &str)] = &[
    ("IPS", "ess"),
    ("ClippedIPS", "clip_rate"),
    ("Replay", "acceptance_rate"),
    ("CFA", "coverage"),
    ("AdaptiveIPS", "hsum"),
    ("AdaptiveDR", "hsum"),
    ("MarginalizedDR", "embedding_groups"),
    ("SeqDR", "trajectories"),
];

fn cmd_telemetry_check(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "telemetry-check needs exactly one telemetry JSON path\n\n{USAGE}"
        )));
    };
    let body = std::fs::read_to_string(path)?;
    let json =
        Json::parse(&body).map_err(|e| CliError::Telemetry(format!("{path}: bad JSON: {e:?}")))?;
    for key in ["version", "runs", "health", "counters", "timings"] {
        if json.get(key).is_none() {
            return Err(CliError::Telemetry(format!("{path}: missing {key:?} section")));
        }
    }
    let health = json.get("health").expect("checked above");
    let sources = health
        .as_object()
        .ok_or_else(|| CliError::Telemetry(format!("{path}: health must be an object")))?;
    let mut missing = Vec::new();
    for (source, metric) in REQUIRED_HEALTH {
        let present = health
            .get(source)
            .and_then(|m| m.get(metric))
            .and_then(|agg| agg.get("mean"))
            .and_then(Json::as_f64)
            .is_some();
        if !present {
            missing.push(format!("{source}/{metric}"));
        }
    }
    if !missing.is_empty() {
        return Err(CliError::Telemetry(format!(
            "{path}: missing required health metrics: {}",
            missing.join(", ")
        )));
    }
    Ok(format!(
        "{path}: ok — {} runs, {} health sources, all required metrics present\n",
        json.get("runs").and_then(Json::as_i64).unwrap_or(0),
        sources.len(),
    ))
}

fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    if !flags.positional.is_empty() {
        return Err(CliError::Usage(format!(
            "serve takes no positional arguments\n\n{USAGE}"
        )));
    }
    let mut config = ddn_serve::ServeConfig::default();
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.to_string();
    }
    if let Some(shards) = flags.get("shards") {
        config.shards = shards
            .parse()
            .ok()
            .filter(|&s: &usize| s > 0)
            .ok_or_else(|| CliError::Usage("shards must be a positive integer".into()))?;
    }
    if let Some(dispatchers) = flags.get("dispatchers") {
        config.dispatchers = dispatchers
            .parse()
            .ok()
            .filter(|&d: &usize| d > 0)
            .ok_or_else(|| CliError::Usage("dispatchers must be a positive integer".into()))?;
    }
    if let Some(queue) = flags.get("queue") {
        config.queue_capacity = queue
            .parse()
            .ok()
            .filter(|&q: &usize| q > 0)
            .ok_or_else(|| CliError::Usage("queue must be a positive integer".into()))?;
    }
    if let Some(dir) = flags.get("data-dir") {
        config.data_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(marker) = flags.get("failpoint") {
        // Test-only: arms the deterministic worker-panic path so the
        // flight-recorder dump flow can be exercised end to end.
        config.failpoint = Some(marker.to_string());
    }
    if let Some(every) = flags.get("snapshot-every") {
        if config.data_dir.is_none() {
            return Err(CliError::Usage(
                "--snapshot-every needs --data-dir".into(),
            ));
        }
        config.snapshot_every = every
            .parse()
            .ok()
            .filter(|&n: &u64| n > 0)
            .ok_or_else(|| {
                CliError::Usage("snapshot-every must be a positive integer".into())
            })?;
    }
    let handle = ddn_serve::serve(&config)
        .map_err(|e| CliError::Serve(format!("cannot bind {}: {e}", config.addr)))?;
    let addr = handle.local_addr();
    if let Some(port_file) = flags.get("port-file") {
        std::fs::write(port_file, format!("{addr}\n"))?;
    }
    eprintln!("ddn-serve listening on {addr} (send the shutdown verb to stop)");
    handle.join();
    Ok(format!("server on {addr} shut down cleanly\n"))
}

fn cmd_replay_to(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "replay-to needs exactly one trace path\n\n{USAGE}"
        )));
    };
    let addr = flags
        .get("addr")
        .ok_or_else(|| CliError::Usage(format!("replay-to needs --addr <host:port>\n\n{USAGE}")))?;
    let decision = flags
        .get("decision")
        .ok_or_else(|| CliError::Usage(format!("replay-to needs --decision <name>\n\n{USAGE}")))?;
    let estimator = flags.get("estimator").unwrap_or("ips");
    let session = flags.get("session").unwrap_or("replay");
    let batch: usize = flags
        .get("batch")
        .unwrap_or("256")
        .parse()
        .ok()
        .filter(|&b| b > 0)
        .ok_or_else(|| CliError::Usage("batch must be a positive integer".into()))?;
    let model_value: f64 = flags
        .get("model-value")
        .unwrap_or("0")
        .parse()
        .map_err(|_| CliError::Usage("model-value must be a number".into()))?;
    let window: Option<usize> = match flags.get("window") {
        None => None,
        Some(w) => Some(
            w.parse()
                .ok()
                .filter(|&w: &usize| w > 0)
                .ok_or_else(|| CliError::Usage("window must be a positive integer".into()))?,
        ),
    };

    // Stream the file: the full trace is never resident — only one
    // `--batch`-sized chunk at a time.
    let mut stream = Trace::stream_file(path)?;
    let serve_err = |e: ddn_serve::ClientError| CliError::Serve(e.to_string());
    let mut client = ddn_serve::ServeClient::connect(addr).map_err(serve_err)?;
    client
        .init(
            session,
            stream.schema(),
            stream.space(),
            &[estimator],
            decision,
            model_value,
            window,
        )
        .map_err(serve_err)?;

    let mut chunk = Vec::with_capacity(batch);
    let mut sent = 0usize;
    loop {
        chunk.clear();
        for rec in &mut stream {
            chunk.push(rec?);
            if chunk.len() == batch {
                break;
            }
        }
        if chunk.is_empty() {
            break;
        }
        if flags.has("binary") {
            client.ingest_binary(session, &chunk).map_err(serve_err)?;
        } else {
            client.ingest(session, &chunk).map_err(serve_err)?;
        }
        sent += chunk.len();
    }

    let resp = client.estimate(session).map_err(serve_err)?;
    let body = resp
        .get("estimates")
        .and_then(|e| e.get(estimator))
        .ok_or_else(|| CliError::Serve(format!("response lacks estimate for {estimator:?}")))?;
    let mut out = format!("policy: always {decision}\nestimator: {estimator} (online)\n");
    match body.get("value").and_then(Json::as_f64) {
        Some(value) => {
            out.push_str(&format!("estimate: {value:.6}\n"));
            if let (Some(ess), Some(max_w)) = (
                body.get("ess").and_then(Json::as_f64),
                body.get("max_weight").and_then(Json::as_f64),
            ) {
                out.push_str(&format!(
                    "effective sample size: {ess:.0} of {sent} | max weight {max_w:.2}\n"
                ));
            }
        }
        None => {
            let msg = body
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("estimator produced no value");
            return Err(CliError::Serve(msg.to_string()));
        }
    }
    if let Some(coupling) = resp.get("coupling") {
        if coupling.get("coupled") == Some(&Json::Bool(true)) {
            out.push_str(&format!(
                "WARNING: coupling detected — {} change point(s) in the trailing reward window\n",
                coupling
                    .get("changepoints")
                    .and_then(Json::as_array)
                    .map(|c| c.len())
                    .unwrap_or(0),
            ));
        }
    }
    out.push_str(&format!(
        "streamed {sent} records{}\n",
        if flags.has("binary") {
            " over binary frames"
        } else {
            ""
        }
    ));
    if flags.has("shutdown") {
        client.shutdown().map_err(serve_err)?;
        out.push_str("server shutdown requested\n");
    }
    Ok(out)
}

fn cmd_query(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    if !flags.positional.is_empty() {
        return Err(CliError::Usage(format!(
            "query takes no positional arguments\n\n{USAGE}"
        )));
    }
    let addr = flags
        .get("addr")
        .ok_or_else(|| CliError::Usage(format!("query needs --addr <host:port>\n\n{USAGE}")))?;
    let session = flags
        .get("session")
        .ok_or_else(|| CliError::Usage(format!("query needs --session <name>\n\n{USAGE}")))?;

    let serve_err = |e: ddn_serve::ClientError| CliError::Serve(e.to_string());
    let mut client = ddn_serve::ServeClient::connect(addr).map_err(serve_err)?;
    // Unlike replay-to, query never re-initializes: a session restored
    // from a --data-dir recovery keeps its accumulated state.
    let resp = client.estimate(session).map_err(serve_err)?;
    let estimates = resp
        .get("estimates")
        .and_then(Json::as_object)
        .ok_or_else(|| CliError::Serve(format!("response lacks estimates: {resp}")))?;
    let n = resp.get("n").and_then(Json::as_i64).unwrap_or(0);

    let mut out = format!("session: {session} ({n} records)\n");
    let wanted = flags.get("estimator");
    let mut printed = 0usize;
    for (name, body) in estimates {
        if wanted.is_some_and(|w| w != name) {
            continue;
        }
        match body.get("value").and_then(Json::as_f64) {
            Some(value) => {
                out.push_str(&format!("{name}: {value:.6}"));
                if let (Some(ess), Some(max_w)) = (
                    body.get("ess").and_then(Json::as_f64),
                    body.get("max_weight").and_then(Json::as_f64),
                ) {
                    out.push_str(&format!("  (ess {ess:.0}, max weight {max_w:.2})"));
                }
                out.push('\n');
            }
            None => {
                let msg = body
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("no value");
                out.push_str(&format!("{name}: unavailable ({msg})\n"));
            }
        }
        printed += 1;
    }
    if printed == 0 {
        return Err(CliError::Serve(format!(
            "session {session:?} has no estimator {:?}",
            wanted.unwrap_or("<any>")
        )));
    }
    if let Some(coupling) = resp.get("coupling") {
        if coupling.get("coupled") == Some(&Json::Bool(true)) {
            out.push_str(&format!(
                "WARNING: coupling detected — {} change point(s) in the trailing reward window\n",
                coupling
                    .get("changepoints")
                    .and_then(Json::as_array)
                    .map(|c| c.len())
                    .unwrap_or(0),
            ));
        }
    }
    if flags.has("shutdown") {
        client.shutdown().map_err(serve_err)?;
        out.push_str("server shutdown requested\n");
    }
    Ok(out)
}

/// Renders a nanosecond quantity at human scale.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The `(le, count)` pairs of a served histogram snapshot
/// (`{"count":..,"sum":..,"buckets":[{"le":..,"count":..},..]}`).
fn le_buckets(hist: &Json) -> Vec<(u64, u64)> {
    hist.get("buckets")
        .and_then(Json::as_array)
        .map(|buckets| {
            buckets
                .iter()
                .filter_map(|b| {
                    Some((
                        b.get("le").and_then(Json::as_u64)?,
                        b.get("count").and_then(Json::as_u64)?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// One row of the `ddn top` table: a verb on one shard (or handled on
/// the connection thread, shard `conn`).
struct TopRow {
    verb: String,
    shard: String,
    count: u64,
    queue: Vec<(u64, u64)>,
    handle: Vec<(u64, u64)>,
}

/// Extracts table rows from a `stats` snapshot by walking the
/// `serve.req.<verb>.handle_ns[.s<shard>]` histogram names.
fn top_rows(snap: &Json) -> Vec<TopRow> {
    let Some(histograms) = snap.get("histograms").and_then(Json::as_object) else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for (name, hist) in histograms {
        let Some(rest) = name.strip_prefix("serve.req.") else {
            continue;
        };
        let Some((verb, kind)) = rest.split_once('.') else {
            continue;
        };
        let (kind, shard) = match kind.split_once('.') {
            Some((k, s)) => (k, s.to_string()),
            None => (kind, "conn".to_string()),
        };
        if kind != "handle_ns" {
            continue;
        }
        let queue_name = format!("serve.req.{verb}.queue_ns.{shard}");
        let queue = histograms
            .iter()
            .find(|(n, _)| *n == queue_name)
            .map(|(_, h)| le_buckets(h))
            .unwrap_or_default();
        rows.push(TopRow {
            verb: verb.to_string(),
            shard,
            count: hist.get("count").and_then(Json::as_u64).unwrap_or(0),
            queue,
            handle: le_buckets(hist),
        });
    }
    rows.sort_by(|a, b| (&a.verb, &a.shard).cmp(&(&b.verb, &b.shard)));
    rows
}

/// Renders one `ddn top` frame from a `stats` snapshot. `prev` is the
/// previous poll's per-row counts plus the seconds since it, for the
/// rate column. Returns the rendered table and this poll's counts.
fn render_top_table(
    snap: &Json,
    prev: Option<(&std::collections::HashMap<(String, String), u64>, f64)>,
) -> (String, std::collections::HashMap<(String, String), u64>) {
    let rows = top_rows(snap);
    let mut out = format!(
        "{:<10} {:>6} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
        "verb", "shard", "reqs", "rate/s", "p50 queue", "p99 queue", "p50 handle", "p99 handle"
    );
    let mut counts = std::collections::HashMap::new();
    let quant = |buckets: &[(u64, u64)], q: f64| -> String {
        if buckets.is_empty() {
            "-".to_string()
        } else {
            fmt_ns(ddn_telemetry::quantile_from_le_buckets(buckets, q))
        }
    };
    // A count below the previous poll's means the server restarted (its
    // counters start over at zero). Deltas against the old baseline are
    // meaningless for the whole frame — `saturating_sub` would quietly
    // render 0.0 forever on busy verbs — so the frame shows no rates,
    // marks itself reset, and this poll's counts become the new baseline.
    let reset = match prev {
        Some((before, _)) => rows.iter().any(|r| {
            before
                .get(&(r.verb.clone(), r.shard.clone()))
                .is_some_and(|&was| was > r.count)
        }),
        None => false,
    };
    for row in &rows {
        let key = (row.verb.clone(), row.shard.clone());
        let rate = match prev {
            Some((before, dt)) if dt > 0.0 && !reset => {
                let was = before.get(&key).copied().unwrap_or(0);
                format!("{:.1}", row.count.saturating_sub(was) as f64 / dt)
            }
            _ => "-".to_string(),
        };
        counts.insert(key, row.count);
        out.push_str(&format!(
            "{:<10} {:>6} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            row.verb,
            row.shard,
            row.count,
            rate,
            quant(&row.queue, 0.50),
            quant(&row.queue, 0.99),
            quant(&row.handle, 0.50),
            quant(&row.handle, 0.99),
        ));
    }
    let gauge = |name: &str| {
        snap.get("gauges")
            .and_then(|g| g.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let gauge_sum = |prefix: &str| {
        snap.get("gauges")
            .and_then(Json::as_object)
            .map(|gs| {
                gs.iter()
                    .filter(|(n, _)| n.starts_with(prefix))
                    .filter_map(|(_, v)| v.as_f64())
                    .sum::<f64>()
            })
            .unwrap_or(0.0)
    };
    let counter = |name: &str| {
        snap.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    out.push_str(&format!(
        "conns {:.0} | queued {:.0} | live sessions {:.0} | wal lag {:.0} frames\n",
        gauge("serve.conn.active"),
        gauge("serve.queue.depth"),
        gauge_sum("serve.sessions.live."),
        gauge_sum("serve.wal.lag_frames."),
    ));
    out.push_str(&format!(
        "ingested {} records | {} stalls | {} dedup replays | {} worker restarts\n",
        counter("serve.ingest.records"),
        counter("serve.backpressure.stalls"),
        counter("serve.dedup.replays"),
        counter("serve.fault.worker_restarts"),
    ));
    if reset {
        out.push_str("counters reset (server restarted); rates re-baseline next poll\n");
    }
    (out, counts)
}

fn cmd_top(args: &[String]) -> Result<String, CliError> {
    use std::time::{Duration, Instant};

    let flags = Flags::parse(args)?;
    if !flags.positional.is_empty() {
        return Err(CliError::Usage(format!(
            "top takes no positional arguments\n\n{USAGE}"
        )));
    }
    let addr = flags
        .get("addr")
        .ok_or_else(|| CliError::Usage(format!("top needs --addr <host:port>\n\n{USAGE}")))?;
    let json = flags.has("json");
    let flight = flags.has("flight");
    let interval_ms: u64 = flags
        .get("interval-ms")
        .unwrap_or("1000")
        .parse()
        .ok()
        .filter(|&ms: &u64| ms > 0)
        .ok_or_else(|| CliError::Usage("interval-ms must be a positive integer".into()))?;
    let count: u64 = if flags.has("once") {
        1
    } else {
        match flags.get("count") {
            None => u64::MAX, // poll until the process is interrupted
            Some(c) => c
                .parse()
                .ok()
                .filter(|&n: &u64| n > 0)
                .ok_or_else(|| CliError::Usage("count must be a positive integer".into()))?,
        }
    };

    let serve_err = |e: ddn_serve::ClientError| CliError::Serve(e.to_string());
    let mut client = ddn_serve::ServeClient::connect(addr).map_err(serve_err)?;
    let mut out = String::new();
    let mut prev: Option<(std::collections::HashMap<(String, String), u64>, Instant)> = None;
    let mut polled = 0u64;
    while polled < count {
        if polled > 0 {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
        let resp = client.server_stats(flight).map_err(serve_err)?;
        let now = Instant::now();
        let rendered = if json {
            format!("{}\n", resp.to_string())
        } else {
            let snap = resp.get("stats").ok_or_else(|| {
                CliError::Serve(format!("stats response lacks \"stats\": {resp}"))
            })?;
            let last = prev.take();
            let (table, counts) = render_top_table(
                snap,
                last.as_ref()
                    .map(|(c, t)| (c, now.duration_since(*t).as_secs_f64())),
            );
            prev = Some((counts, now));
            format!("ddn top — {addr} — poll {}\n{table}", polled + 1)
        };
        polled += 1;
        if count == 1 {
            // Single poll: the frame IS the command output (scripting).
            out.push_str(&rendered);
        } else {
            // Live mode streams frames as they happen.
            print!("{rendered}");
        }
    }
    if flags.has("shutdown") {
        client.shutdown().map_err(serve_err)?;
        out.push_str("server shutdown requested\n");
    }
    if count > 1 {
        out.push_str(&format!("polled {polled} times\n"));
    }
    Ok(out)
}

fn cmd_flight(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "flight needs exactly one dump path\n\n{USAGE}"
        )));
    };
    fn bump(list: &mut Vec<(String, u64)>, key: &str) {
        if let Some((_, c)) = list.iter_mut().find(|(k, _)| k == key) {
            *c += 1;
        } else {
            list.push((key.to_string(), 1));
        }
    }
    let text = std::fs::read_to_string(path)?;
    let mut events = 0u64;
    let mut first_n = 0u64;
    let mut expected: Option<u64> = None;
    let mut verbs: Vec<(String, u64)> = Vec::new();
    let mut outcomes: Vec<(String, u64)> = Vec::new();
    let mut last: Option<Json> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Json::parse(line).map_err(|e| {
            CliError::Serve(format!("{path}:{}: bad flight event: {e}", lineno + 1))
        })?;
        let n = event.get("n").and_then(Json::as_u64).ok_or_else(|| {
            CliError::Serve(format!("{path}:{}: event lacks \"n\"", lineno + 1))
        })?;
        match expected {
            // The ring never skips an index, so a gap in a dump means
            // the file was corrupted or hand-edited.
            Some(want) if n != want => {
                return Err(CliError::Serve(format!(
                    "{path}:{}: event index jumped to {n}, expected {want}",
                    lineno + 1
                )));
            }
            Some(_) => {}
            None => first_n = n,
        }
        expected = Some(n + 1);
        bump(&mut verbs, event.get("verb").and_then(Json::as_str).unwrap_or("?"));
        bump(
            &mut outcomes,
            event.get("outcome").and_then(Json::as_str).unwrap_or("?"),
        );
        events += 1;
        last = Some(event);
    }
    let Some(last) = last else {
        return Err(CliError::Serve(format!("{path}: empty flight dump")));
    };
    let mut out = format!(
        "flight dump {path}: {events} events, indices {first_n}..={} (consecutive)\n",
        expected.expect("events > 0") - 1
    );
    let tally = |list: &[(String, u64)]| {
        list.iter()
            .map(|(k, c)| format!("{k} {c}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str(&format!("verbs: {}\n", tally(&verbs)));
    out.push_str(&format!("outcomes: {}\n", tally(&outcomes)));
    out.push_str(&format!("last event: {last}\n"));
    Ok(out)
}

fn cmd_chaos(args: &[String]) -> Result<String, CliError> {
    use ddn_testkit::{Dir, FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
    use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};
    use std::time::{Duration, Instant};

    let flags = Flags::parse(args)?;
    if !flags.positional.is_empty() {
        return Err(CliError::Usage(format!(
            "chaos takes no positional arguments\n\n{USAGE}"
        )));
    }
    let seed: u64 = flags
        .get("seed")
        .unwrap_or("7")
        .parse()
        .map_err(|_| CliError::Usage("seed must be an integer".into()))?;
    let fault_rate: f64 = flags
        .get("faults")
        .unwrap_or("0.01")
        .parse()
        .ok()
        .filter(|&r: &f64| (0.0..=1.0).contains(&r))
        .ok_or_else(|| CliError::Usage("faults must be a rate in [0, 1]".into()))?;
    let n_records: usize = flags
        .get("duration-records")
        .unwrap_or("20000")
        .parse()
        .ok()
        .filter(|&n: &usize| n > 0)
        .ok_or_else(|| CliError::Usage("duration-records must be a positive integer".into()))?;
    let batch: usize = flags
        .get("batch")
        .unwrap_or("256")
        .parse()
        .ok()
        .filter(|&b: &usize| b > 0)
        .ok_or_else(|| CliError::Usage("batch must be a positive integer".into()))?;
    let shards: usize = flags
        .get("shards")
        .unwrap_or("4")
        .parse()
        .ok()
        .filter(|&s: &usize| s > 0)
        .ok_or_else(|| CliError::Usage("shards must be a positive integer".into()))?;

    // Deterministic synthetic workload: a tiny two-armed CDN-style world.
    let schema = ContextSchema::builder().categorical("g", 2).build();
    let space = DecisionSpace::of(&["a", "b"]);
    let mut rng = Xoshiro256::seed_from(seed);
    use ddn_stats::rng::Rng;
    let records: Vec<TraceRecord> = (0..n_records)
        .map(|_| {
            let g = rng.index(2) as u32;
            let c = Context::build(&schema).set_cat("g", g).finish();
            let d = rng.index(2);
            let p = if d == 0 { 0.75 } else { 0.25 };
            let r = 2.0 + g as f64 + 3.0 * d as f64;
            TraceRecord::new(c, Decision::from_index(d), r).with_propensity(p)
        })
        .collect();

    // Size the fault plan from the actual wire format: --faults is per
    // record, and offsets are spread over the byte stream the run will
    // actually produce.
    let bytes_per_record = records[0].to_json().to_string().len() as u64 + 16;
    let write_horizon = (n_records as u64).saturating_mul(bytes_per_record).max(1 << 12);
    let n_batches = n_records.div_ceil(batch) as u64;
    let read_horizon = (n_batches * 96).max(1 << 10);
    let n_faults = ((n_records as f64 * fault_rate).round() as usize).max(1);
    let mut plan = FaultPlan::generate(
        seed,
        &FaultPlanConfig {
            faults: n_faults,
            write_horizon,
            read_horizon,
            max_delay_micros: 50,
            max_partial_bytes: 32,
        },
    );
    // The headline failure mode — a mid-stream disconnect forcing a
    // retry through the dedup window — must always be exercised.
    if !plan.has_kind(&FaultKind::Disconnect) {
        plan.push(FaultEvent {
            dir: Dir::Read,
            offset: read_horizon / 3,
            kind: FaultKind::Disconnect,
        });
    }

    let handle = ddn_serve::serve(&ddn_serve::ServeConfig {
        shards,
        ..ddn_serve::ServeConfig::default()
    })
    .map_err(|e| CliError::Serve(format!("cannot bind chaos server: {e}")))?;
    let addr = handle.local_addr().to_string();

    let state = ddn_serve::FaultState::new(plan.cursor());
    let connector_state = state.clone();
    let connect_addr = addr.clone();
    let serve_err = |e: ddn_serve::ClientError| CliError::Serve(e.to_string());
    let mut client = ddn_serve::ServeClient::from_connector(
        Box::new(move || {
            let inner = Box::new(ddn_serve::TcpTransport::connect(&connect_addr)?)
                as Box<dyn ddn_serve::Transport>;
            Ok(
                Box::new(ddn_serve::FaultyTransport::new(inner, connector_state.clone()))
                    as Box<dyn ddn_serve::Transport>,
            )
        }),
        ddn_serve::ClientConfig {
            read_timeout: Duration::from_secs(10),
            // Every failed attempt consumes at least one scheduled fault,
            // so any finite plan is outlasted.
            max_retries: plan.len() as u32 + 2,
            backoff_base: Duration::from_millis(1),
        },
    )
    .map_err(serve_err)?;

    let start = Instant::now();
    client
        .init("chaos", &schema, &space, &["ips"], "b", 0.0, None)
        .map_err(serve_err)?;
    for chunk in records.chunks(batch) {
        client.ingest("chaos", chunk).map_err(serve_err)?;
    }
    let est = client.estimate("chaos").map_err(serve_err)?;
    let elapsed = start.elapsed();

    // Exactly once: the server-side tally must equal the records sent,
    // however many wire attempts the faults forced.
    let counted = handle.stats().ingest_records();
    if counted != n_records as u64 {
        return Err(CliError::Serve(format!(
            "exactly-once violated: sent {n_records} records, server counted {counted}"
        )));
    }
    let est_n = est.get("n").and_then(Json::as_i64).unwrap_or(-1);
    if est_n != n_records as i64 {
        return Err(CliError::Serve(format!(
            "estimate ran over {est_n} records, expected {n_records}"
        )));
    }

    // Bit-identical parity with the offline estimator over the same
    // records: the fault path added, dropped, and reordered nothing.
    let online = est
        .get("estimates")
        .and_then(|e| e.get("ips"))
        .and_then(|e| e.get("value"))
        .and_then(Json::as_f64)
        .ok_or_else(|| CliError::Serve(format!("no ips value in {est}")))?;
    let trace = Trace::from_records(schema, space.clone(), records)?;
    let offline = Ips::new()
        .estimate(&trace, &LookupPolicy::constant(space, 1))?
        .value;
    if online.to_bits() != offline.to_bits() {
        return Err(CliError::Serve(format!(
            "estimate parity violated: online {online:?} != offline {offline:?}"
        )));
    }

    // Observability invariant: the stats verb must agree with the
    // counters it mirrors — per verb, the handler-histogram totals equal
    // the request counter, however many retries the fault plan forced
    // (each delivered attempt records both together).
    let stats_resp = client.server_stats(false).map_err(serve_err)?;
    let snap = stats_resp
        .get("stats")
        .ok_or_else(|| CliError::Serve(format!("stats verb returned no snapshot: {stats_resp}")))?;
    let counters = snap
        .get("counters")
        .and_then(Json::as_object)
        .unwrap_or_default();
    let histograms = snap
        .get("histograms")
        .and_then(Json::as_object)
        .unwrap_or_default();
    let mut verbs_checked = 0usize;
    for (name, value) in counters {
        let Some(verb) = name.strip_prefix("serve.req.") else {
            continue;
        };
        if verb.contains('.') {
            continue;
        }
        let want = value.as_u64().unwrap_or(0);
        let conn_name = format!("serve.req.{verb}.handle_ns");
        let shard_prefix = format!("{conn_name}.s");
        let total: u64 = histograms
            .iter()
            .filter(|(h, _)| *h == conn_name || h.starts_with(&shard_prefix))
            .filter_map(|(_, j)| j.get("count").and_then(Json::as_u64))
            .sum();
        if total != want {
            return Err(CliError::Serve(format!(
                "stats invariant violated for verb {verb:?}: counter {want} != histogram total {total}"
            )));
        }
        verbs_checked += 1;
    }

    let injected = state.injected();
    let stats = client.stats();
    let rps = n_records as f64 / elapsed.as_secs_f64().max(1e-9);
    let mut out = format!(
        "chaos: {n_records} records in {n_batches} batches over {shards} shards (seed {seed})\n"
    );
    out.push_str(&format!(
        "faults injected: {} partial, {} delay, {} disconnect, {} error ({} scheduled)\n",
        injected.partial,
        injected.delay,
        injected.disconnect,
        injected.error,
        plan.len(),
    ));
    out.push_str(&format!(
        "client: {} retries, {} reconnects, {} timeouts, {} giveups\n",
        stats.retry_attempts(),
        stats.reconnects(),
        stats.timeouts(),
        stats.giveups(),
    ));
    out.push_str(&format!(
        "server: {} dedup replays, {} worker restarts\n",
        handle.stats().dedup_replays(),
        handle.stats().fault_worker_restarts(),
    ));
    let latency = stats.latency();
    out.push_str(&format!(
        "latency: p50 {} | p99 {} over {} delivered responses\n",
        fmt_ns(latency.quantile(0.50)),
        fmt_ns(latency.quantile(0.99)),
        latency.total(),
    ));
    out.push_str(&format!(
        "stats invariant: ok ({verbs_checked} verbs, histogram totals == counters)\n"
    ));
    out.push_str(&format!(
        "exactly-once: ok ({counted} records counted once)\nestimate parity: ok (online == offline, bit-identical)\n"
    ));
    out.push_str(&format!("throughput: {rps:.0} records/sec\n"));
    drop(client);
    handle.shutdown();
    Ok(out)
}

fn cmd_loadgen(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    if !flags.positional.is_empty() {
        return Err(CliError::Usage(format!(
            "loadgen takes no positional arguments\n\n{USAGE}"
        )));
    }
    let usage = |m: String| CliError::Usage(format!("{m}\n\n{USAGE}"));
    let parse_usize = |name: &str, default: usize, min: usize| -> Result<usize, CliError> {
        match flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .ok()
                .filter(|&n: &usize| n >= min)
                .ok_or_else(|| usage(format!("{name} must be an integer >= {min}"))),
        }
    };
    let parse_f64 = |name: &str, default: f64| -> Result<f64, CliError> {
        match flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| usage(format!("{name} must be a number"))),
        }
    };

    let seed: u64 = match flags.get("seed") {
        None => 7,
        Some(v) => v.parse().map_err(|_| usage("seed must be a u64".into()))?,
    };
    let smoke = flags.has("smoke");
    let mut cfg = if smoke {
        ddn_loadgen::LoadgenConfig::smoke(seed)
    } else {
        let rate = parse_f64("rate", 25_000.0)?;
        let sessions = parse_usize("sessions", 100_000, 1)?;
        let profile = match flags.get("profile").unwrap_or("constant") {
            "constant" => ddn_netsim::RateProfile::Constant(rate),
            // One full diurnal cycle spanning the whole schedule, mean
            // offered load equal to --rate.
            "diurnal" => ddn_netsim::RateProfile::Diurnal {
                base: rate,
                amplitude: 0.6,
                period: (sessions as f64 / rate.max(1e-9)).max(1e-6),
                phase: 0.0,
            },
            other => {
                return Err(usage(format!(
                    "unknown profile {other:?} (expected constant|diurnal)"
                )))
            }
        };
        // Workers are I/O-bound (each blocks on its connection's round
        // trips), so even a single-core machine profits from a few of
        // them overlapping with the server's own threads.
        let workers = match parse_usize("workers", 0, 0)? {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(4, 8),
            n => n,
        };
        ddn_loadgen::LoadgenConfig {
            sessions,
            records_per_session: parse_usize("records", 3, 1)?,
            batch: parse_usize("batch", 2, 1)?,
            workers,
            seed,
            rate: profile,
            timescale: parse_f64("timescale", 1.0)?,
            open_loop: flags.has("open-loop"),
            framing: ddn_loadgen::Framing::parse(flags.get("framing").unwrap_or("mixed"))
                .map_err(usage)?,
            fault_rate: parse_f64("faults", 0.0)?,
            addr: flags.get("addr").map(str::to_string),
            serve: ddn_serve::ServeConfig {
                shards: parse_usize("shards", 4, 1)?,
                dispatchers: parse_usize("dispatchers", 2, 1)?,
                queue_capacity: parse_usize("queue", 256, 1)?,
                ..ddn_serve::ServeConfig::default()
            },
            health_every: parse_usize("health-every", 512, 0)?,
            stats_every: parse_usize("stats-every", 4096, 0)?,
        }
    };
    if smoke {
        if flags.has("open-loop") {
            cfg.open_loop = true;
            cfg.timescale = 1000.0;
        }
        if let Some(f) = flags.get("faults") {
            cfg.fault_rate = f
                .parse()
                .map_err(|_| usage("faults must be a number".into()))?;
        }
    }

    let report = ddn_loadgen::run(&cfg).map_err(|e| match e {
        ddn_loadgen::LoadgenError::Config(m) => usage(m),
        // CliError::Serve adds its own "serve error:" prefix, so unwrap
        // the variants rather than Display-ing a doubled one.
        ddn_loadgen::LoadgenError::Serve(m) => CliError::Serve(m),
        ddn_loadgen::LoadgenError::Parity(m) => {
            CliError::Serve(format!("estimate parity violation: {m}"))
        }
    })?;

    // Smoke doubles as the determinism proof: re-deriving the schedule
    // from the same seed must reproduce the digest byte-for-byte.
    let redigest = if smoke {
        let again = ddn_loadgen::Schedule::generate(cfg.sessions, &cfg.rate, cfg.seed, cfg.framing)
            .map_err(CliError::Serve)?
            .wire_digest();
        if again != report.schedule_digest {
            return Err(CliError::Serve(format!(
                "schedule not deterministic: digest {:016x} re-derived as {again:016x}",
                report.schedule_digest
            )));
        }
        true
    } else {
        false
    };

    if let Some(path) = flags.get("bench-json") {
        let doc = Json::Object(vec![
            ("suite".into(), Json::str("loadgen")),
            ("loadgen".into(), report.to_json()),
        ]);
        std::fs::write(path, format!("{doc}\n"))?;
    }

    let mut out = format!(
        "loadgen: {} sessions (abr {} / cdn {} / relay {}) x {} records, {} workers, {} shards{}\n",
        report.sessions,
        report.kind_counts[0],
        report.kind_counts[1],
        report.kind_counts[2],
        cfg.records_per_session,
        cfg.workers,
        cfg.serve.shards,
        if cfg.addr.is_some() { " (external server)" } else { "" },
    );
    out.push_str(&format!(
        "schedule: digest {:016x}, {} loop, faults {}\n",
        report.schedule_digest,
        if report.open_loop { "open" } else { "closed" },
        report.fault_rate,
    ));
    out.push_str(&format!(
        "throughput: {:.0} records/sec ({} records, {} requests in {:.2}s)\n",
        report.records_per_sec, report.records, report.requests, report.elapsed_secs,
    ));
    for (verb, hist) in &report.verb_latency {
        if hist.total() == 0 {
            continue;
        }
        out.push_str(&format!(
            "latency {:>8}: p50 {} | p99 {} over {} responses\n",
            verb,
            fmt_ns(hist.quantile(0.50)),
            fmt_ns(hist.quantile(0.99)),
            hist.total(),
        ));
    }
    out.push_str(&format!(
        "client: {} retries, {} reconnects, {} timeouts, {} giveups\n",
        report.retries, report.reconnects, report.timeouts, report.giveups,
    ));
    out.push_str(&format!(
        "server: {} backpressure stalls, {} dedup replays, {:.0} live sessions\n",
        report.backpressure_stalls, report.dedup_replays, report.live_sessions,
    ));
    out.push_str(&format!(
        "exactly-once: ok ({} records counted once)\n",
        report.server_ingested
    ));
    out.push_str(&format!(
        "estimate parity: ok ({} sessions, online == offline bit-identical)\n",
        report.parity_sessions
    ));
    if redigest {
        out.push_str("determinism: ok (schedule digest re-derived byte-for-byte)\n");
    }
    Ok(out)
}

/// One pinned metric of the bench-diff gate.
struct Floor {
    file: String,
    path: String,
    floor: f64,
}

fn load_floors(path: &str) -> Result<(f64, Vec<Floor>), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Bench(format!("cannot read floors file {path}: {e}")))?;
    let doc = Json::parse(&text)
        .map_err(|e| CliError::Bench(format!("floors file {path} is not JSON: {e}")))?;
    let margin = doc
        .get("pin_margin")
        .and_then(Json::as_f64)
        .filter(|m| (0.0..=1.0).contains(m))
        .ok_or_else(|| {
            CliError::Bench(format!("floors file {path} needs pin_margin in [0, 1]"))
        })?;
    let floors = doc
        .get("floors")
        .and_then(Json::as_array)
        .ok_or_else(|| CliError::Bench(format!("floors file {path} needs a floors array")))?
        .iter()
        .map(|f| {
            Some(Floor {
                file: f.get("file")?.as_str()?.to_string(),
                path: f.get("path")?.as_str()?.to_string(),
                floor: f.get("floor").and_then(Json::as_f64)?,
            })
        })
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| {
            CliError::Bench(format!(
                "every floors entry in {path} needs file, path and numeric floor"
            ))
        })?;
    Ok((margin, floors))
}

/// Looks up a dotted path (`"loadgen.records_per_sec"`) in a bench JSON.
fn lookup_metric(doc: &Json, path: &str) -> Option<f64> {
    let mut cur = doc;
    for key in path.split('.') {
        cur = cur.get(key)?;
    }
    cur.as_f64()
}

fn cmd_bench_diff(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let [bench_dir] = flags.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "bench-diff needs exactly one bench directory\n\n{USAGE}"
        )));
    };
    let floors_path = flags.get("floors").unwrap_or("bench_floors.json");
    let (margin, floors) = load_floors(floors_path)?;
    let pin = flags.has("pin");

    let mut out = String::new();
    let mut failures = Vec::new();
    let mut pinned = Vec::new();
    for f in &floors {
        let file = format!("{bench_dir}/{}", f.file);
        let text = std::fs::read_to_string(&file)
            .map_err(|e| CliError::Bench(format!("cannot read {file}: {e}")))?;
        let doc = Json::parse(&text)
            .map_err(|e| CliError::Bench(format!("{file} is not JSON: {e}")))?;
        let value = lookup_metric(&doc, &f.path).ok_or_else(|| {
            CliError::Bench(format!("{file} has no numeric metric at {:?}", f.path))
        })?;
        if pin {
            let new_floor = value * margin;
            out.push_str(&format!(
                "pin {} {}: floor {} -> {} (measured {value:.2} x margin {margin})\n",
                f.file, f.path, f.floor, new_floor,
            ));
            pinned.push(Floor {
                file: f.file.clone(),
                path: f.path.clone(),
                floor: new_floor,
            });
        } else if value >= f.floor {
            out.push_str(&format!(
                "ok   {} {}: {value:.2} >= floor {}\n",
                f.file, f.path, f.floor,
            ));
        } else {
            out.push_str(&format!(
                "FAIL {} {}: {value:.2} < floor {}\n",
                f.file, f.path, f.floor,
            ));
            failures.push(format!("{} {} ({value:.2} < {})", f.file, f.path, f.floor));
        }
    }

    if pin {
        let doc = Json::Object(vec![
            ("pin_margin".into(), Json::Num(margin)),
            (
                "floors".into(),
                Json::Array(
                    pinned
                        .iter()
                        .map(|f| {
                            Json::Object(vec![
                                ("file".into(), Json::str(f.file.clone())),
                                ("path".into(), Json::str(f.path.clone())),
                                ("floor".into(), Json::Num(f.floor)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(floors_path, format!("{doc}\n"))?;
        out.push_str(&format!(
            "bench-diff: pinned {} floors into {floors_path}\n",
            pinned.len()
        ));
        return Ok(out);
    }
    if !failures.is_empty() {
        return Err(CliError::Bench(format!(
            "{} of {} pinned metrics regressed below their floor:\n  {}\n{out}",
            failures.len(),
            floors.len(),
            failures.join("\n  "),
        )));
    }
    out.push_str(&format!(
        "bench-diff: ok ({} floors checked against {floors_path})\n",
        floors.len()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_policy::UniformRandomPolicy;
    use ddn_stats::rng::Rng;
    use ddn_trace::{Context, ContextSchema, DecisionSpace, TraceRecord};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Writes a small trace (reward = decision index) to a temp file and
    /// returns its path.
    fn write_temp_trace(name: &str, with_propensity: bool) -> String {
        let schema = ContextSchema::builder().categorical("g", 2).build();
        let space = DecisionSpace::of(&["alpha", "beta"]);
        let old = UniformRandomPolicy::new(space.clone());
        let mut rng = Xoshiro256::seed_from(1);
        let records: Vec<TraceRecord> = (0..400)
            .map(|_| {
                let g = rng.index(2) as u32;
                let c = Context::build(&schema).set_cat("g", g).finish();
                let (d, p) = old.sample_with_prob(&c, &mut rng);
                let r = TraceRecord::new(c, d, d.index() as f64 + 0.1 * g as f64);
                if with_propensity {
                    r.with_propensity(p)
                } else {
                    r
                }
            })
            .collect();
        let trace = Trace::from_records(schema, space, records).unwrap();
        let path =
            std::env::temp_dir().join(format!("ddn-cli-test-{name}-{}.jsonl", std::process::id()));
        let file = File::create(&path).unwrap();
        trace.write_jsonl(BufWriter::new(file)).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn stats_renders_summary() {
        let path = write_temp_trace("stats", true);
        let out = run(&args(&["stats", &path])).unwrap();
        assert!(out.contains("decision"));
        assert!(out.contains("alpha"));
        assert!(out.contains("coverage:"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn evaluate_constant_policy() {
        let path = write_temp_trace("eval", true);
        let out = run(&args(&[
            "evaluate",
            &path,
            "--decision",
            "beta",
            "--estimator",
            "ips",
        ]))
        .unwrap();
        assert!(out.contains("always beta"));
        // Truth for "always beta" is 1 + 0.1·E[g] ≈ 1.05.
        let line = out.lines().find(|l| l.starts_with("estimate:")).unwrap();
        let v: f64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((v - 1.05).abs() < 0.1, "estimate {v}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compare_ranks_beta_first() {
        let path = write_temp_trace("cmp", true);
        let out = run(&args(&["compare", &path])).unwrap();
        let beta_pos = out.find("always beta").unwrap();
        let alpha_pos = out.find("always alpha").unwrap();
        assert!(beta_pos < alpha_pos, "beta should rank above alpha:\n{out}");
        assert!(out.contains("verdict:"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn repair_fills_propensities() {
        let input = write_temp_trace("rep-in", false);
        let output = std::env::temp_dir()
            .join(format!("ddn-cli-test-rep-out-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let msg = run(&args(&["repair", &input, &output])).unwrap();
        assert!(msg.contains("repaired 400 of 400"));
        let repaired = load_trace(&output).unwrap();
        assert!(repaired.has_propensities());
        // Uniform logging → estimated propensities near 0.5.
        let mean_p: f64 = repaired
            .records()
            .iter()
            .map(|r| r.propensity.unwrap())
            .sum::<f64>()
            / repaired.len() as f64;
        assert!((mean_p - 0.5).abs() < 0.05, "mean propensity {mean_p}");
        std::fs::remove_file(input).ok();
        std::fs::remove_file(output).ok();
    }

    #[test]
    fn overlap_reports_feasibility() {
        let path = write_temp_trace("ovl", true);
        let out = run(&args(&["overlap", &path, "--decision", "beta"])).unwrap();
        assert!(out.contains("effective sample size"));
        assert!(out.contains("verdict:"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_then_full_workflow() {
        let out = std::env::temp_dir()
            .join(format!("ddn-cli-gen-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        for world in ["cfa", "wise", "relay", "netsim"] {
            let msg = run(&args(&[
                "generate", &out, "--world", world, "--n", "300", "--seed", "3",
            ]))
            .unwrap();
            assert!(msg.contains(world), "{msg}");
            // The generated trace must be consumable by the other verbs.
            let stats = run(&args(&["stats", &out])).unwrap();
            assert!(stats.contains("overall:"), "{world}: {stats}");
        }
        assert!(matches!(
            run(&args(&["generate", &out, "--world", "mars"])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(out).ok();
    }

    #[test]
    fn figure7_no_batch_is_a_standalone_switch() {
        // --no-batch must not swallow the following token: here it sits
        // right before --runs, which still has to parse.
        let batched = run(&args(&["figure7", "7c", "--runs", "1"])).unwrap();
        let plain = run(&args(&["figure7", "7c", "--no-batch", "--runs", "1"])).unwrap();
        assert!(plain.contains("Figure 7c"), "{plain}");
        // Bit-identical numbers → identical rendered tables.
        assert_eq!(batched, plain);
    }

    #[test]
    fn serve_and_replay_to_match_offline_evaluate() {
        let trace_path = write_temp_trace("serve", true);
        let port_file = std::env::temp_dir()
            .join(format!("ddn-cli-test-port-{}", std::process::id()))
            .to_string_lossy()
            .into_owned();

        let pf = port_file.clone();
        let server = std::thread::spawn(move || run(&args(&["serve", "--port-file", &pf])));

        // Wait for the server to write its bound address.
        let addr = {
            let mut tries = 0;
            loop {
                if let Ok(s) = std::fs::read_to_string(&port_file) {
                    let s = s.trim().to_string();
                    if !s.is_empty() {
                        break s;
                    }
                }
                tries += 1;
                assert!(tries < 100, "server never wrote {port_file}");
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        };

        let online = run(&args(&[
            "replay-to",
            &trace_path,
            "--addr",
            &addr,
            "--decision",
            "beta",
            "--estimator",
            "ips",
            "--batch",
            "64",
            "--shutdown",
        ]))
        .unwrap();
        let offline = run(&args(&[
            "evaluate",
            &trace_path,
            "--decision",
            "beta",
            "--estimator",
            "ips",
        ]))
        .unwrap();

        let pick = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("estimate:"))
                .map(str::to_string)
                .unwrap_or_else(|| panic!("no estimate line in:\n{out}"))
        };
        // The streamed online estimate renders the exact same line as the
        // offline batch path — this is the contract the CI smoke diffs.
        assert_eq!(pick(&online), pick(&offline), "online:\n{online}\noffline:\n{offline}");
        assert!(online.contains("streamed 400 records"), "{online}");
        assert!(online.contains("server shutdown requested"), "{online}");

        let served = server.join().unwrap().unwrap();
        assert!(served.contains("shut down cleanly"), "{served}");
        std::fs::remove_file(trace_path).ok();
        std::fs::remove_file(port_file).ok();
    }

    #[test]
    fn serve_data_dir_restart_and_query_see_the_same_estimate() {
        let trace_path = write_temp_trace("durable", true);
        let data_dir = std::env::temp_dir()
            .join(format!("ddn-cli-test-durable-{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        std::fs::remove_dir_all(&data_dir).ok();

        let wait_addr = |port_file: &str| {
            let mut tries = 0;
            loop {
                if let Ok(s) = std::fs::read_to_string(port_file) {
                    let s = s.trim().to_string();
                    if !s.is_empty() {
                        break s;
                    }
                }
                tries += 1;
                assert!(tries < 100, "server never wrote {port_file}");
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        };
        let start = |n: u32| {
            let port_file = std::env::temp_dir()
                .join(format!(
                    "ddn-cli-test-durable-port-{n}-{}",
                    std::process::id()
                ))
                .to_string_lossy()
                .into_owned();
            std::fs::remove_file(&port_file).ok();
            let (pf, dir) = (port_file.clone(), data_dir.clone());
            let server = std::thread::spawn(move || {
                run(&args(&[
                    "serve",
                    "--port-file",
                    &pf,
                    "--data-dir",
                    &dir,
                    "--snapshot-every",
                    "32",
                ]))
            });
            let addr = wait_addr(&port_file);
            std::fs::remove_file(port_file).ok();
            (server, addr)
        };

        let (server, addr) = start(1);
        run(&args(&[
            "replay-to",
            &trace_path,
            "--addr",
            &addr,
            "--decision",
            "beta",
            "--estimator",
            "ips",
            "--batch",
            "64",
        ]))
        .unwrap();
        let before = run(&args(&["query", "--addr", &addr, "--session", "replay"])).unwrap();
        assert!(before.contains("session: replay (400 records)"), "{before}");
        assert!(before.contains("ips: "), "{before}");
        run(&args(&[
            "query", "--addr", &addr, "--session", "replay", "--shutdown",
        ]))
        .unwrap();
        server.join().unwrap().unwrap();

        // Same data dir, new process-equivalent: the recovered session
        // must answer the same query with the same rendered numbers —
        // without any re-initialization.
        let (server, addr) = start(2);
        let after = run(&args(&[
            "query", "--addr", &addr, "--session", "replay", "--shutdown",
        ]))
        .unwrap();
        server.join().unwrap().unwrap();
        assert_eq!(
            before.lines().collect::<Vec<_>>(),
            after
                .lines()
                .filter(|l| !l.starts_with("server shutdown"))
                .collect::<Vec<_>>(),
            "recovered estimate differs:\nbefore:\n{before}\nafter:\n{after}"
        );

        std::fs::remove_file(trace_path).ok();
        std::fs::remove_dir_all(&data_dir).ok();
    }

    #[test]
    fn query_and_durability_usage_errors() {
        assert!(matches!(
            run(&args(&["query", "--session", "s"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["query", "--addr", "127.0.0.1:1"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["query", "positional", "--addr", "a", "--session", "s"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["serve", "--snapshot-every", "8"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["serve", "--data-dir", "/tmp/x", "--snapshot-every", "0"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn chaos_soak_passes_and_reports() {
        let out = run(&args(&[
            "chaos",
            "--seed",
            "7",
            "--faults",
            "0.01",
            "--duration-records",
            "2000",
            "--batch",
            "128",
            "--shards",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("exactly-once: ok"), "{out}");
        assert!(out.contains("estimate parity: ok"), "{out}");
        assert!(out.contains("disconnect"), "{out}");
        assert!(out.contains("records/sec"), "{out}");
        // The observability plane is checked on every run: per-verb
        // histogram totals must equal the request counters, and the
        // client-side latency histogram must have seen every delivered
        // response.
        // All six verbs are registered eagerly at serve() time, so the
        // count is stable whatever traffic the plan produced.
        assert!(
            out.contains("stats invariant: ok (6 verbs"),
            "{out}"
        );
        let lat = out.lines().find(|l| l.starts_with("latency:")).unwrap();
        assert!(lat.contains("p50") && lat.contains("p99"), "{lat}");
        // At least one disconnect is guaranteed by construction.
        let faults_line = out.lines().find(|l| l.starts_with("faults injected:")).unwrap();
        assert!(!faults_line.contains("0 disconnect"), "{faults_line}");
    }

    #[test]
    fn chaos_usage_errors() {
        assert!(matches!(
            run(&args(&["chaos", "--faults", "2.0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["chaos", "--duration-records", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["chaos", "positional"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_on_a_bound_address_is_a_serve_error() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let err = run(&args(&["serve", "--addr", &addr])).unwrap_err();
        assert!(matches!(err, CliError::Serve(_)), "{err:?}");
        assert_eq!(err.exit_code(), 1);
        assert!(format!("{err}").contains("cannot bind"), "{err}");
        assert!(format!("{err}").contains(&addr), "{err}");
    }

    #[test]
    fn replay_to_usage_errors() {
        assert!(matches!(
            run(&args(&["replay-to", "x.jsonl"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["replay-to", "x.jsonl", "--addr", "127.0.0.1:1"])),
            Err(CliError::Usage(_))
        ));
        // With flags present but no server listening, the failure is a
        // serve error (exit 1), not a usage error.
        let path = write_temp_trace("rt-usage", true);
        let e = run(&args(&[
            "replay-to",
            &path,
            "--addr",
            "127.0.0.1:1",
            "--decision",
            "beta",
        ]))
        .unwrap_err();
        assert!(matches!(e, CliError::Serve(_)), "{e:?}");
        assert_eq!(e.exit_code(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn top_usage_errors() {
        assert!(matches!(run(&args(&["top"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["top", "positional", "--addr", "127.0.0.1:1"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["top", "--addr", "127.0.0.1:1", "--interval-ms", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["top", "--addr", "127.0.0.1:1", "--count", "zero"])),
            Err(CliError::Usage(_))
        ));
        // A dead address with valid flags is a serve error, not usage.
        let e = run(&args(&["top", "--addr", "127.0.0.1:1", "--once"])).unwrap_err();
        assert!(matches!(e, CliError::Serve(_)), "{e:?}");
    }

    #[test]
    fn top_renders_a_live_server_and_json_is_greppable() {
        let handle = ddn_serve::serve(&ddn_serve::ServeConfig::default()).unwrap();
        let addr = handle.local_addr().to_string();

        let out = run(&args(&["top", "--addr", &addr, "--once"])).unwrap();
        assert!(out.contains("verb"), "{out}");
        assert!(out.contains("p99 handle"), "{out}");
        assert!(out.contains("live sessions"), "{out}");
        // Every shard verb appears even before any traffic: metric names
        // are registered at serve() time, so the key set is stable.
        for verb in ["init", "ingest", "estimate"] {
            assert!(out.contains(verb), "missing {verb} row in {out}");
        }

        let json = run(&args(&["top", "--addr", &addr, "--once", "--json"])).unwrap();
        assert!(json.contains("\"serve.req.ingest\":0"), "{json}");
        assert!(json.contains("\"serve.conn.active\""), "{json}");
        // The previous --once poll recorded its own stats request.
        assert!(json.contains("\"serve.req.stats\":1"), "{json}");

        // --flight inlines the per-shard ring (empty here: no traffic).
        let flight = run(&args(&["top", "--addr", &addr, "--once", "--json", "--flight"]))
            .unwrap();
        assert!(flight.contains("\"flight\":{\"shard-0\":["), "{flight}");

        let bye = run(&args(&["top", "--addr", &addr, "--once", "--shutdown"])).unwrap();
        assert!(bye.contains("server shutdown requested"), "{bye}");
        handle.shutdown();
    }

    #[test]
    fn top_rates_rebaseline_after_a_counter_regression() {
        let snap = |count: i64| {
            Json::object(vec![(
                "histograms",
                Json::object(vec![(
                    "serve.req.ingest.handle_ns.s0",
                    Json::object(vec![
                        ("count", Json::Int(count)),
                        ("buckets", Json::Array(vec![])),
                    ]),
                )]),
            )])
        };
        // Baseline poll: 100 requests seen so far.
        let (_, counts) = render_top_table(&snap(100), None);
        // The server restarts between polls, so its counters start over
        // below the baseline. The frame must declare the reset instead
        // of rendering a silent saturating 0.0 rate.
        let (table, counts2) = render_top_table(&snap(5), Some((&counts, 1.0)));
        assert!(table.contains("counters reset"), "{table}");
        assert!(!table.contains("0.0"), "{table}");
        // The regressed poll becomes the new baseline: the next delta is
        // computed from 5, not from the pre-restart 100.
        assert_eq!(counts2.get(&("ingest".into(), "s0".into())), Some(&5));
        let (table, _) = render_top_table(&snap(25), Some((&counts2, 2.0)));
        assert!(table.contains("10.0"), "{table}");
        assert!(!table.contains("counters reset"), "{table}");
    }

    #[test]
    fn flight_validates_dumps_and_rejects_gaps() {
        let dir = std::env::temp_dir().join("ddn-cli-flight-test");
        std::fs::create_dir_all(&dir).unwrap();
        let line = |n: u64, outcome: &str| {
            format!(
                "{{\"n\":{n},\"verb\":\"ingest\",\"session\":\"s\",\"seq\":{n},\"records\":8,\"outcome\":\"{outcome}\",\"dur_ns\":100}}"
            )
        };

        let good = dir.join("good.jsonl");
        std::fs::write(
            &good,
            format!("{}\n{}\n{}\n", line(3, "ok"), line(4, "ok"), line(5, "panic")),
        )
        .unwrap();
        let out = run(&args(&["flight", good.to_str().unwrap()])).unwrap();
        assert!(out.contains("3 events, indices 3..=5 (consecutive)"), "{out}");
        assert!(out.contains("ok 2"), "{out}");
        assert!(out.contains("panic 1"), "{out}");
        assert!(out.contains("last event"), "{out}");

        let gap = dir.join("gap.jsonl");
        std::fs::write(&gap, format!("{}\n{}\n", line(3, "ok"), line(5, "ok"))).unwrap();
        let e = run(&args(&["flight", gap.to_str().unwrap()])).unwrap_err();
        assert!(format!("{e}").contains("jumped to 5, expected 4"), "{e}");

        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "not json\n").unwrap();
        let e = run(&args(&["flight", bad.to_str().unwrap()])).unwrap_err();
        assert!(format!("{e}").contains("bad flight event"), "{e}");

        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        let e = run(&args(&["flight", empty.to_str().unwrap()])).unwrap_err();
        assert!(format!("{e}").contains("empty flight dump"), "{e}");

        assert!(matches!(run(&args(&["flight"])), Err(CliError::Usage(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fmt_ns_picks_human_scales() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.50s");
    }

    #[test]
    fn usage_text_documents_the_7b_no_batch_no_op() {
        let help = run(&args(&["help"])).unwrap();
        assert!(help.contains("no-op"), "{help}");
        assert!(help.contains("serve"), "{help}");
        assert!(help.contains("replay-to"), "{help}");
    }

    #[test]
    fn usage_errors_are_informative() {
        assert!(matches!(run(&args(&[])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["bogus"])), Err(CliError::Usage(_))));
        let path = write_temp_trace("use", true);
        assert!(matches!(
            run(&args(&["evaluate", &path])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["evaluate", &path, "--decision", "nope"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&[
                "evaluate",
                &path,
                "--decision",
                "beta",
                "--estimator",
                "magic"
            ])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(path).ok();
        let help = run(&args(&["help"])).unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn loadgen_usage_errors_exit_2() {
        // Every bad-config path must surface as a usage error (exit 2),
        // never a panic: these all once aborted inside RateProfile /
        // WorldConfig validate().
        for bad in [
            vec!["loadgen", "--sessions", "0"],
            vec!["loadgen", "--sessions", "many"],
            vec!["loadgen", "--rate", "-5"],
            vec!["loadgen", "--rate", "0"],
            vec!["loadgen", "--framing", "carrier-pigeon"],
            vec!["loadgen", "--profile", "square-wave"],
            vec!["loadgen", "--faults", "1.5"],
            vec!["loadgen", "--timescale", "-1"],
            vec!["loadgen", "--batch", "0"],
            vec!["loadgen", "stray-positional"],
        ] {
            let err = run(&args(&bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?}: {err}");
            assert_eq!(err.exit_code(), 2, "{bad:?}");
        }
    }

    #[test]
    fn serve_dispatchers_usage_error() {
        let err = run(&args(&["serve", "--dispatchers", "0"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let err = run(&args(&["serve", "--dispatchers", "lots"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn loadgen_small_run_reports_and_writes_bench_json() {
        let bench = std::env::temp_dir().join(format!(
            "ddn-cli-loadgen-bench-{}.json",
            std::process::id()
        ));
        let out = run(&args(&[
            "loadgen",
            "--sessions",
            "90",
            "--records",
            "3",
            "--batch",
            "2",
            "--workers",
            "3",
            "--shards",
            "2",
            "--rate",
            "5000",
            "--seed",
            "21",
            "--faults",
            "0.01",
            "--bench-json",
            bench.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("exactly-once: ok (270 records counted once)"), "{out}");
        assert!(
            out.contains("estimate parity: ok (90 sessions"),
            "{out}"
        );
        assert!(out.contains("schedule: digest "), "{out}");
        assert!(out.contains("latency   ingest:"), "{out}");
        let doc = Json::parse(&std::fs::read_to_string(&bench).unwrap()).unwrap();
        assert_eq!(
            doc.get("loadgen")
                .and_then(|l| l.get("records"))
                .and_then(Json::as_u64),
            Some(270)
        );
        assert!(lookup_metric(&doc, "loadgen.records_per_sec").unwrap() > 0.0);
        assert!(doc.get("loadgen").unwrap().get("verbs").unwrap().get("estimate").is_some());
        std::fs::remove_file(&bench).ok();
    }

    #[test]
    fn loadgen_smoke_proves_determinism() {
        let out = run(&args(&["loadgen", "--smoke", "--seed", "3"])).unwrap();
        assert!(out.contains("determinism: ok"), "{out}");
        assert!(out.contains("estimate parity: ok (600 sessions"), "{out}");
    }

    #[test]
    fn bench_diff_gates_pins_and_reports() {
        let dir = std::env::temp_dir().join(format!("ddn-cli-bench-diff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bench_file = dir.join("BENCH_loadgen.json");
        std::fs::write(
            &bench_file,
            r#"{"suite":"loadgen","loadgen":{"records_per_sec":50000.0}}"#,
        )
        .unwrap();
        let floors = dir.join("floors.json");
        let floors_arg = floors.to_str().unwrap().to_string();
        let dir_arg = dir.to_str().unwrap().to_string();
        let write_floors = |floor: f64| {
            std::fs::write(
                &floors,
                format!(
                    r#"{{"pin_margin":0.5,"floors":[{{"file":"BENCH_loadgen.json","path":"loadgen.records_per_sec","floor":{floor}}}]}}"#
                ),
            )
            .unwrap()
        };

        // At floor: passes and says so.
        write_floors(40_000.0);
        let out = run(&args(&["bench-diff", &dir_arg, "--floors", &floors_arg])).unwrap();
        assert!(out.contains("bench-diff: ok (1 floors"), "{out}");

        // Injected regression: the measured value sits below the floor, so
        // the gate must fail with exit code 1.
        write_floors(60_000.0);
        let err = run(&args(&["bench-diff", &dir_arg, "--floors", &floors_arg])).unwrap_err();
        assert!(matches!(err, CliError::Bench(_)), "{err}");
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("records_per_sec"), "{err}");

        // One-command re-pin: floors become measured x margin, after which
        // the gate passes again.
        let out = run(&args(&[
            "bench-diff",
            &dir_arg,
            "--floors",
            &floors_arg,
            "--pin",
        ]))
        .unwrap();
        assert!(out.contains("pinned 1 floors"), "{out}");
        let repinned = Json::parse(&std::fs::read_to_string(&floors).unwrap()).unwrap();
        let new_floor = repinned.get("floors").and_then(Json::as_array).unwrap()[0]
            .get("floor")
            .and_then(Json::as_f64)
            .unwrap();
        assert!((new_floor - 25_000.0).abs() < 1e-6, "{new_floor}");
        let out = run(&args(&["bench-diff", &dir_arg, "--floors", &floors_arg])).unwrap();
        assert!(out.contains("bench-diff: ok"), "{out}");

        // Missing metrics and unreadable files are bench errors too.
        std::fs::write(
            &floors,
            r#"{"pin_margin":0.5,"floors":[{"file":"BENCH_loadgen.json","path":"loadgen.nope","floor":1}]}"#,
        )
        .unwrap();
        let err = run(&args(&["bench-diff", &dir_arg, "--floors", &floors_arg])).unwrap_err();
        assert!(matches!(err, CliError::Bench(_)), "{err}");
        let err = run(&args(&["bench-diff"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
