//! Exit-code and stream-discipline contract of the `ddn` binary: usage
//! mistakes exit 2, runtime failures exit 1, diagnostics go to stderr
//! (never stdout), and the telemetry round-trip (selftest → file →
//! telemetry-check) holds end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ddn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ddn"))
        .args(args)
        .output()
        .expect("ddn binary runs")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ddn-exit-{}-{name}", std::process::id()))
}

#[test]
fn usage_errors_exit_2_with_stderr_only() {
    for args in [
        &[][..],
        &["bogus"][..],
        &["figure7", "7z"][..],
        &["telemetry-check"][..],
        &["selftest", "--runs", "zero"][..],
    ] {
        let out = ddn(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(out.stdout.is_empty(), "stdout must stay clean for {args:?}");
        assert!(
            !out.stderr.is_empty(),
            "the diagnostic must land on stderr for {args:?}"
        );
    }
}

#[test]
fn runtime_failures_exit_1_with_stderr_only() {
    let missing = tmp("does-not-exist.jsonl");
    let out = ddn(&["stats", missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "missing trace is a runtime error");
    assert!(out.stdout.is_empty());
    assert!(!out.stderr.is_empty());

    // A present-but-invalid telemetry file is a runtime failure too.
    let bad = tmp("bad-telemetry.json");
    std::fs::write(&bad, "{\"version\":1}").unwrap();
    let out = ddn(&["telemetry-check", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("telemetry error"), "stderr: {err}");
    std::fs::remove_file(bad).ok();
}

#[test]
fn serve_on_an_already_bound_address_exits_1_with_a_clear_message() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let out = ddn(&["serve", "--addr", &addr]);
    assert_eq!(out.status.code(), Some(1), "a bind failure is a runtime error");
    assert!(out.stdout.is_empty());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot bind"), "stderr: {err}");
    assert!(err.contains(&addr), "stderr: {err}");
}

#[test]
fn chaos_smoke_exits_0_and_reports_exactly_once() {
    let out = ddn(&[
        "chaos",
        "--seed",
        "7",
        "--faults",
        "0.01",
        "--duration-records",
        "1000",
        "--batch",
        "128",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exactly-once: ok"), "{stdout}");
    assert!(stdout.contains("estimate parity: ok"), "{stdout}");
}

#[test]
fn selftest_telemetry_round_trips_through_check() {
    let path = tmp("selftest-telemetry.json");
    let out = ddn(&["selftest", "--runs", "2", "--telemetry", path.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("selftest ok"), "{stdout}");
    // The summary table goes to stderr, the results to stdout.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("telemetry:"), "{stderr}");
    assert!(!stdout.contains("telemetry:"), "{stdout}");

    let out = ddn(&["telemetry-check", path.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("ok"), "{report}");
    std::fs::remove_file(path).ok();
}
