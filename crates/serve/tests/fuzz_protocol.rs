//! Protocol-robustness fuzz: arbitrary byte junk, truncated JSON lines,
//! and oversized lines must fail the *request* — never the connection,
//! never the server.

use ddn_serve::{serve, ServeConfig, ServerHandle};
use ddn_stats::Json;
use ddn_testkit::{prop, prop_assert, prop_assert_eq, vecs};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start(max_line_bytes: usize) -> (ServerHandle, String) {
    let handle = serve(&ServeConfig {
        shards: 1,
        max_line_bytes,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

/// A raw connection with a response-line reader; the read timeout keeps
/// a wrong "server never answered" failure fast instead of hanging.
fn raw_conn(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("server must answer");
    Json::parse(line.trim()).expect("server answers valid JSON")
}

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn init_line(session: &str) -> String {
    format!(
        r#"{{"verb":"init","session":{},"schema":{},"space":{},"estimators":["ips"],"policy":{{"kind":"constant","decision":"b"}}}}"#,
        Json::str(session).to_string(),
        schema().to_json().to_string(),
        space().to_json().to_string(),
    )
}

fn ingest_line(session: &str, n: usize) -> String {
    let recs: Vec<String> = (0..n)
        .map(|i| {
            let c = Context::build(&schema())
                .set_cat("g", (i % 2) as u32)
                .finish();
            TraceRecord::new(c, Decision::from_index(i % 2), 1.0 + i as f64)
                .with_propensity(0.5)
                .to_json()
                .to_string()
        })
        .collect();
    format!(
        r#"{{"verb":"ingest","session":{},"records":[{}]}}"#,
        Json::str(session).to_string(),
        recs.join(",")
    )
}

/// Checks the connection is still alive and fully functional by running
/// a real request over it.
fn assert_conn_usable(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    session: &str,
) {
    writeln!(stream, "{}", init_line(session)).unwrap();
    let resp = read_response(reader);
    assert_eq!(
        resp.get("ok"),
        Some(&Json::Bool(true)),
        "connection no longer usable: {resp:?}"
    );
}

prop! {
    /// Arbitrary bytes (any value but the line terminator, so one "line"
    /// arrives; invalid UTF-8 included) get an error response on a live
    /// connection.
    fn byte_junk_fails_the_request_not_the_connection(
        junk in vecs(0u32..256, 1..120),
    ) {
        let (handle, addr) = start(1 << 20);
        let (mut stream, mut reader) = raw_conn(&addr);
        // Keep it one line (no '\n'), and non-blank (leading 'x') so the
        // server replies rather than skipping an empty line.
        let mut bytes: Vec<u8> = junk.iter().map(|&b| b as u8).collect();
        for b in &mut bytes {
            if *b == b'\n' {
                *b = b'?';
            }
        }
        let mut line = vec![b'x'];
        line.extend_from_slice(&bytes);
        line.push(b'\n');
        stream.write_all(&line).unwrap();

        let resp = read_response(&mut reader);
        prop_assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        prop_assert!(
            resp.get("error").and_then(Json::as_str).is_some(),
            "error responses carry a message: {:?}",
            resp
        );
        assert_conn_usable(&mut stream, &mut reader, "after-junk");
        handle.shutdown();
    }

    /// Any strict prefix of a valid ingest line is invalid JSON: the
    /// request fails, the session state is untouched, and the full line
    /// still works on the same connection afterwards.
    fn truncated_json_lines_fail_cleanly(
        cut_permille in 1u32..999,
        n_records in 1usize..6,
    ) {
        let (handle, addr) = start(1 << 20);
        let (mut stream, mut reader) = raw_conn(&addr);
        writeln!(stream, "{}", init_line("trunc")).unwrap();
        prop_assert_eq!(read_response(&mut reader).get("ok"), Some(&Json::Bool(true)));

        let full = ingest_line("trunc", n_records);
        let cut = (full.len() * cut_permille as usize / 1000).clamp(1, full.len() - 1);
        stream.write_all(full[..cut].as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let resp = read_response(&mut reader);
        prop_assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));

        // The same connection still ingests the intact line, and the
        // truncated garbage contributed zero records.
        writeln!(stream, "{}", full).unwrap();
        let resp = read_response(&mut reader);
        prop_assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        prop_assert_eq!(
            resp.get("total").and_then(Json::as_i64),
            Some(n_records as i64)
        );
        handle.shutdown();
    }

    /// Lines beyond the configured cap are discarded without buffering
    /// them: the request errors, the connection survives, and the next
    /// request parses fine.
    fn oversized_lines_are_rejected_without_killing_the_connection(
        extra in 1usize..4096,
    ) {
        let cap = 256;
        let (handle, addr) = start(cap);
        let (mut stream, mut reader) = raw_conn(&addr);

        let big = vec![b'a'; cap + extra];
        stream.write_all(&big).unwrap();
        stream.write_all(b"\n").unwrap();
        let resp = read_response(&mut reader);
        prop_assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        let msg = resp.get("error").and_then(Json::as_str).unwrap_or("");
        prop_assert!(
            msg.contains("exceeds"),
            "expected an oversized-line error, got {:?}",
            resp
        );
        prop_assert!(handle.stats().fault_conn_errors() >= 1);
        assert_conn_usable(&mut stream, &mut reader, "after-oversized");
        handle.shutdown();
    }
}

#[test]
fn an_oversized_init_line_is_survivable_even_when_valid_json() {
    // The cap applies before parsing: a *valid* request that is simply
    // too long is rejected by size, proving the reader never buffers
    // unbounded lines.
    let (handle, addr) = start(64);
    let (mut stream, mut reader) = raw_conn(&addr);
    let line = init_line("way-too-long-for-this-cap");
    assert!(line.len() > 64);
    writeln!(stream, "{line}").unwrap();
    let resp = read_response(&mut reader);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert!(resp
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("exceeds"));
    handle.shutdown();
}
