//! Chaos property suite: the serve protocol under scripted transport
//! faults.
//!
//! Every case draws a seeded [`FaultPlan`] and wires it between the
//! client and the TCP socket, so partial I/O, delays, mid-line
//! disconnects, and error returns hit at scripted byte offsets. The
//! properties assert the paper-level invariant the whole subsystem
//! exists for: *faults must not bias the data* — every acknowledged
//! ingest is counted exactly once, and the streamed estimate stays
//! bit-identical to the offline estimator over the acknowledged records,
//! no matter what the wire did.

use ddn_estimators::Estimator;
use ddn_policy::LookupPolicy;
use ddn_serve::{
    serve, ClientConfig, FaultState, FaultyTransport, ServeClient, ServeConfig, TcpTransport,
    Transport,
};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_testkit::{
    fault_plans, prop, prop_assert, prop_assert_eq, Dir, FaultEvent, FaultKind, FaultPlan,
    FaultPlanConfig,
};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};
use std::time::Duration;

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn records(n: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            let g = rng.index(2) as u32;
            let c = Context::build(&schema()).set_cat("g", g).finish();
            let d = rng.index(2);
            let p = if d == 0 { 0.75 } else { 0.25 };
            let r = 2.0 + g as f64 + 3.0 * d as f64;
            TraceRecord::new(c, Decision::from_index(d), r).with_propensity(p)
        })
        .collect()
}

/// A client whose transport consumes `plan`, with a retry budget big
/// enough that any finite plan is eventually outlasted.
fn faulty_client(addr: &str, plan: &FaultPlan) -> (ServeClient, FaultState) {
    let state = FaultState::new(plan.cursor());
    let connector_state = state.clone();
    let addr = addr.to_string();
    let client = ServeClient::from_connector(
        Box::new(move || {
            let inner = Box::new(TcpTransport::connect(&addr)?) as Box<dyn Transport>;
            Ok(Box::new(FaultyTransport::new(inner, connector_state.clone()))
                as Box<dyn Transport>)
        }),
        ClientConfig {
            read_timeout: Duration::from_secs(5),
            // Every failed attempt consumes at least one scheduled fault,
            // so this budget guarantees eventual success.
            max_retries: plan.len() as u32 + 2,
            backoff_base: Duration::from_millis(2),
        },
    )
    .expect("initial connect");
    (client, state)
}

fn ips_value(estimate_resp: &Json) -> f64 {
    estimate_resp
        .get("estimates")
        .and_then(|e| e.get("ips"))
        .and_then(|e| e.get("value"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("no ips value in {estimate_resp:?}"))
}

fn offline_ips(records: &[TraceRecord]) -> f64 {
    let trace = Trace::from_records(schema(), space(), records.to_vec()).unwrap();
    let policy = LookupPolicy::constant(space(), 1);
    ddn_estimators::Ips::new()
        .estimate(&trace, &policy)
        .unwrap()
        .value
}

prop! {
    /// THE chaos property: under an arbitrary seeded fault plan, every
    /// batch is eventually acknowledged, the server's exactly-once tally
    /// equals the number of records sent, the streamed estimate is
    /// bit-identical to the offline estimator over those records, and
    /// shutdown joins every thread.
    fn exactly_once_under_arbitrary_fault_plans(
        plan in fault_plans(FaultPlanConfig {
            faults: 6,
            write_horizon: 8 << 10,
            read_horizon: 512,
            max_delay_micros: 200,
            max_partial_bytes: 16,
        }),
        rec_seed in 0u64..1_000_000,
    ) {
        let handle = serve(&ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = handle.local_addr().to_string();
        let (mut client, state) = faulty_client(&addr, &plan);

        client
            .init("chaos", &schema(), &space(), &["ips"], "b", 0.0, None)
            .expect("init should outlast the plan");
        let recs = records(200, rec_seed);
        for chunk in recs.chunks(16) {
            let resp = client.ingest("chaos", chunk).expect("ingest should outlast the plan");
            prop_assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        }

        // Exactly once: the server-side tally counts every record exactly
        // one time, however many wire-level attempts (and dedup replays)
        // it took.
        prop_assert_eq!(handle.stats().ingest_records(), recs.len() as u64);

        // Bit-identity with the offline estimator over the acknowledged
        // records: the fault path added or dropped nothing.
        let est = client.estimate("chaos").expect("estimate should outlast the plan");
        prop_assert_eq!(est.get("n").and_then(Json::as_i64), Some(recs.len() as i64));
        let online_bits = ips_value(&est).to_bits();
        let offline_bits = offline_ips(&recs).to_bits();
        prop_assert!(
            online_bits == offline_bits,
            "streamed estimate diverged under plan {:?} (injected {:?})",
            plan,
            state.injected()
        );

        // If anything was deduplicated, the counter saw it; and a replay
        // requires at least one retry to have happened.
        let replays = handle.stats().dedup_replays();
        let retries = client.stats().retry_attempts();
        prop_assert!(
            replays <= retries,
            "{} replays but only {} retries",
            replays,
            retries
        );

        // Clean stop: shutdown() joins acceptor, workers, and every
        // connection thread — returning at all proves no thread hangs.
        handle.shutdown();
    }
}

#[test]
fn a_disconnect_during_the_ack_is_deduplicated() {
    // Script a read-side disconnect that lands exactly while the client
    // is reading the first ingest acknowledgement: the batch applies on
    // the server, the ack is lost, the retry must be answered from the
    // dedup window — counted once, not twice.
    let handle = serve(&ServeConfig::default()).expect("bind");
    let addr = handle.local_addr().to_string();

    // The client stamps request ids starting at 0 and the server echoes
    // them, so the init ack on the wire carries `"id":0`.
    let init_ack = ddn_serve::protocol::attach_id(
        ddn_serve::protocol::ok_response(vec![("session", Json::str("det"))]),
        Some(Json::Int(0)),
    )
    .to_string();
    let mut plan = FaultPlan::new();
    plan.push(FaultEvent {
        dir: Dir::Read,
        // A few bytes into the second response line (the ingest ack).
        offset: init_ack.len() as u64 + 1 + 3,
        kind: FaultKind::Disconnect,
    });
    let (mut client, state) = faulty_client(&addr, &plan);

    client
        .init("det", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    let recs = records(50, 11);
    let resp = client.ingest("det", &recs).expect("retry recovers the ack");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    // The recovered ack is the stored one, marked as a replay.
    assert_eq!(resp.get("duplicate"), Some(&Json::Bool(true)));

    assert_eq!(state.injected().disconnect, 1, "the scripted fault fired");
    assert_eq!(client.stats().retry_attempts(), 1);
    assert_eq!(client.stats().reconnects(), 1);
    assert_eq!(handle.stats().dedup_replays(), 1);
    // Exactly once despite the double send.
    assert_eq!(handle.stats().ingest_records(), recs.len() as u64);
    let est = client.estimate("det").unwrap();
    assert_eq!(est.get("n").and_then(Json::as_i64), Some(50));
    assert_eq!(
        ips_value(&est).to_bits(),
        offline_ips(&recs).to_bits(),
        "dedup must not change the estimate"
    );
    handle.shutdown();
}

#[test]
fn a_worker_panic_degrades_one_session_not_the_server() {
    // One shard so both sessions share a worker: the panic must cost the
    // poisoned session only, not its shard-mates.
    let handle = serve(&ServeConfig {
        shards: 1,
        failpoint: Some("boom".to_string()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).unwrap();

    client
        .init("fine", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    client
        .init("boom", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();

    // The failpoint panics the worker mid-request; the client sees a
    // degraded error, not a hang or a dropped connection.
    let err = client
        .ingest("boom", &records(10, 1))
        .expect_err("failpoint should degrade the session");
    assert!(format!("{err}").contains("degraded"), "{err}");
    // Estimates on the poisoned session report degraded too (no hang).
    let err = client.estimate("boom").expect_err("poisoned session");
    assert!(format!("{err}").contains("degraded"), "{err}");

    // The shard-mate is untouched and the worker keeps serving it.
    client.ingest("fine", &records(30, 2)).unwrap();
    let est = client.estimate("fine").unwrap();
    assert_eq!(est.get("n").and_then(Json::as_i64), Some(30));

    // Health: the restart is counted and the poisoned session is visible
    // as a degraded source.
    assert_eq!(handle.stats().fault_worker_restarts(), 1);
    let health = client.health().unwrap();
    let telemetry = health.get("telemetry").unwrap();
    assert!(
        telemetry
            .get("health")
            .and_then(|h| h.get("serve/boom/degraded"))
            .is_some(),
        "degraded source missing: {telemetry:?}"
    );
    assert_eq!(
        telemetry
            .get("counters")
            .and_then(|c| c.get("serve.fault.worker_restarts"))
            .and_then(Json::as_u64),
        Some(1)
    );

    // Re-init lifts the quarantine; a fresh session under a different
    // name would too, but the point is recovery in place. The failpoint
    // still matches the session id, so use a non-matching replacement.
    client
        .init("recovered", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    client.ingest("recovered", &records(5, 3)).unwrap();
    handle.shutdown();
}

#[test]
fn client_timeout_is_typed_and_bounded() {
    // A server that accepts but never answers: bind a raw listener and
    // let the connection sit. The client must fail with Timeout (not
    // hang), once per attempt, then give up.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let silent = std::thread::spawn(move || {
        // Hold the connections open without answering until the client
        // has given up (one accept per attempt).
        let mut held = Vec::new();
        for stream in listener.incoming().take(2) {
            held.push(stream);
        }
        held
    });

    let mut client = ServeClient::connect_with(
        &addr,
        ClientConfig {
            read_timeout: Duration::from_millis(150),
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
        },
    )
    .unwrap();
    let start = std::time::Instant::now();
    let err = client.health().expect_err("silent server");
    match &err {
        ddn_serve::ClientError::Timeout(d) => {
            assert_eq!(*d, Duration::from_millis(150));
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(err.is_retryable());
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "timeout path took {:?}",
        start.elapsed()
    );
    assert_eq!(client.stats().timeouts(), 2, "one per attempt");
    assert_eq!(client.stats().giveups(), 1);
    let _ = silent.join();
}
