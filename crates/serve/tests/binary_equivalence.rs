//! Binary-vs-JSON equivalence suite: the columnar batch frame is a pure
//! *encoding* change, never a *semantics* change.
//!
//! Every test feeds the same seeded workload through both wire
//! encodings — the JSON `ingest` verb and the binary batch frame — and
//! demands the servers end up indistinguishable: bit-identical
//! estimates, identical health telemetry, identical (normalized) stats
//! snapshots. The chaos property repeats the claim under scripted
//! transport faults, where the binary path additionally has to prove
//! its retries are byte-identical re-sends the server's sequence
//! dedup recognises. The crash-resume test covers the WAL leg: binary
//! frames are logged verbatim and must replay to the same state.

use ddn_serve::{
    serve, ClientConfig, FaultState, FaultyTransport, ServeClient, ServeConfig, TcpTransport,
    Transport,
};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_testkit::{fault_plans, prop, prop_assert, prop_assert_eq, FaultPlanConfig};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, StateTag, TraceRecord};
use std::time::Duration;

fn schema() -> ContextSchema {
    ContextSchema::builder()
        .categorical("g", 3)
        .numeric("load")
        .build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b", "c"])
}

/// Seeded records exercising the frame's columns: mixed categorical +
/// numeric features, propensity on every record (the estimator menu
/// demands it), and per-record presence and absence of the timestamp
/// and state-tag columns (absent slots ride as NaN / sentinel).
fn records(n: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|i| {
            let g = rng.index(3) as u32;
            let load = rng.next_f64() * 10.0;
            let c = Context::build(&schema())
                .set_cat("g", g)
                .set_numeric("load", load)
                .finish();
            let d = rng.index(3);
            let r = 1.0 + g as f64 + 2.0 * d as f64 + load / 100.0;
            let mut rec = TraceRecord::new(c, Decision::from_index(d), r)
                .with_propensity(1.0 / (2.0 + d as f64));
            if i % 3 == 0 {
                rec = rec.with_timestamp(i as f64 * 0.5);
            }
            if i % 5 == 0 {
                rec = rec.with_state(StateTag(g));
            }
            rec
        })
        .collect()
}

/// Strips wall-clock noise from a `stats` snapshot: histogram bodies
/// become their counts, leaving counters, gauges, and the full metric
/// name set — the same normalization the stats-verb suite pins.
fn normalized(snap: &Json) -> Json {
    let section = |name: &str| snap.get(name).cloned().unwrap_or(Json::Null);
    let histograms = snap
        .get("histograms")
        .and_then(Json::as_object)
        .unwrap_or_default()
        .iter()
        .map(|(name, h)| (name.clone(), h.get("count").cloned().unwrap_or(Json::Int(0))))
        .collect::<Vec<_>>();
    Json::Object(vec![
        ("counters".to_string(), section("counters")),
        ("gauges".to_string(), section("gauges")),
        ("histograms".to_string(), Json::Object(histograms)),
    ])
}

/// Drops the `"id"` echo so responses from different request orderings
/// compare on content.
fn strip_id(resp: &Json) -> Json {
    match resp {
        Json::Object(fields) => {
            Json::Object(fields.iter().filter(|(k, _)| k != "id").cloned().collect())
        }
        other => other.clone(),
    }
}

/// Runs one full workload (init, chunked ingest, estimate, health,
/// stats) against a fresh server, ingesting through `binary` or JSON.
/// The request *sequence* is identical either way, so request ids line
/// up and the responses may be compared verbatim.
fn run_workload(recs: &[TraceRecord], chunk: usize, binary: bool) -> (Json, Json, Json) {
    let handle = serve(&ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();
    client
        .init("equiv", &schema(), &space(), &["ips", "snips"], "b", 0.0, None)
        .unwrap();
    for batch in recs.chunks(chunk) {
        let resp = if binary {
            client.ingest_binary("equiv", batch).unwrap()
        } else {
            client.ingest("equiv", batch).unwrap()
        };
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    }
    let estimate = client.estimate("equiv").unwrap();
    let health = client.health().unwrap();
    let stats = client.server_stats(false).unwrap();
    assert_eq!(handle.stats().ingest_records(), recs.len() as u64);
    handle.shutdown();
    (estimate, health, stats)
}

#[test]
fn binary_and_json_workloads_serve_bit_identical_state() {
    let recs = records(96, 42);
    let (est_j, health_j, stats_j) = run_workload(&recs, 16, false);
    let (est_b, health_b, stats_b) = run_workload(&recs, 16, true);

    // Estimates: the whole response object, bit for bit (floats travel
    // through `Json` untouched, so string equality is bit equality).
    assert_eq!(est_j.to_string(), est_b.to_string());

    // Health: counters and per-session health sources are identical.
    // (Timing sections are wall-clock and excluded, as everywhere else.)
    let telemetry = |resp: &Json, section: &str| {
        resp.get("telemetry")
            .and_then(|t| t.get(section))
            .cloned()
            .unwrap_or(Json::Null)
            .to_string()
    };
    assert_eq!(telemetry(&health_j, "counters"), telemetry(&health_b, "counters"));
    assert_eq!(telemetry(&health_j, "health"), telemetry(&health_b, "health"));

    // Stats: identical normalized snapshots — same metric name set, same
    // counter and gauge values, same per-verb request tallies. A binary
    // ingest books exactly the metrics a JSON ingest books.
    let norm = |resp: &Json| normalized(resp.get("stats").expect("stats section")).to_string();
    assert_eq!(norm(&stats_j), norm(&stats_b));
}

#[test]
fn encode_failures_are_client_side_and_consume_no_sequence() {
    // A batch the frame cannot carry (here: a session name longer than
    // the u16 length field) fails before touching the wire; the JSON
    // path still works afterwards and the sequence was not burned.
    let handle = serve(&ServeConfig::default()).expect("bind");
    let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();
    let long = "s".repeat(70_000);
    let err = client
        .ingest_binary(&long, &records(1, 7))
        .expect_err("unencodable batch");
    assert!(matches!(err, ddn_serve::ClientError::Protocol(_)), "{err}");
    assert_eq!(handle.stats().ingest_records(), 0);
    handle.shutdown();
}

prop! {
    /// Chaos equivalence: under an arbitrary seeded fault plan on the
    /// binary client's transport, every binary batch is still
    /// acknowledged exactly once and the final estimate is bit-identical
    /// to a clean JSON run over the same records. This is what "retries
    /// re-send byte-identical frames" buys: a replayed frame lands in
    /// the server's dedup window exactly like a replayed JSON line.
    fn binary_ingest_survives_fault_plans_bit_identically(
        plan in fault_plans(FaultPlanConfig {
            faults: 5,
            write_horizon: 6 << 10,
            read_horizon: 384,
            max_delay_micros: 200,
            max_partial_bytes: 16,
        }),
        rec_seed in 0u64..1_000_000,
    ) {
        let recs = records(120, rec_seed);

        // Clean JSON reference run.
        let (est_json, _, _) = run_workload(&recs, 12, false);

        // Faulted binary run.
        let handle = serve(&ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = handle.local_addr().to_string();
        let state = FaultState::new(plan.cursor());
        let connector_state = state.clone();
        let dial = addr.clone();
        let mut client = ServeClient::from_connector(
            Box::new(move || {
                let inner = Box::new(TcpTransport::connect(&dial)?) as Box<dyn Transport>;
                Ok(Box::new(FaultyTransport::new(inner, connector_state.clone()))
                    as Box<dyn Transport>)
            }),
            ClientConfig {
                read_timeout: Duration::from_secs(5),
                max_retries: plan.len() as u32 + 2,
                backoff_base: Duration::from_millis(2),
            },
        )
        .expect("initial connect");

        client
            .init("equiv", &schema(), &space(), &["ips", "snips"], "b", 0.0, None)
            .expect("init should outlast the plan");
        for batch in recs.chunks(12) {
            let resp = client
                .ingest_binary("equiv", batch)
                .expect("binary ingest should outlast the plan");
            prop_assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        }

        // Exactly once, then bit identity with the clean JSON run.
        prop_assert_eq!(handle.stats().ingest_records(), recs.len() as u64);
        let est = client.estimate("equiv").expect("estimate should outlast the plan");
        prop_assert!(
            est.to_string() == est_json.to_string(),
            "binary estimate diverged under plan {:?} (injected {:?}):\n  binary {}\n  json   {}",
            plan,
            state.injected(),
            est.to_string(),
            est_json.to_string()
        );

        let replays = handle.stats().dedup_replays();
        let retries = client.stats().retry_attempts();
        prop_assert!(
            replays <= retries,
            "{} replays but only {} retries",
            replays,
            retries
        );
        handle.shutdown();
    }
}

#[test]
fn binary_wal_frames_replay_verbatim_across_a_restart() {
    // Durability leg: the WAL stores binary frames untouched, so a
    // restart replays them through the same decoder and reaches the
    // same state the acknowledgements promised.
    let dir = std::env::temp_dir().join(format!(
        "ddn-binary-equiv-wal-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        shards: 2,
        data_dir: Some(dir.clone()),
        snapshot_every: 10_000, // never: every batch must come back from the WAL
        ..ServeConfig::default()
    };
    let recs = records(64, 9);
    let before = {
        let handle = serve(&config).expect("bind");
        let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();
        client
            .init("equiv", &schema(), &space(), &["ips", "snips"], "b", 0.0, None)
            .unwrap();
        for batch in recs.chunks(16) {
            client.ingest_binary("equiv", batch).unwrap();
        }
        let est = client.estimate("equiv").unwrap();
        handle.shutdown();
        est
    };
    let after = {
        let handle = serve(&config).expect("bind and recover");
        let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();
        let est = client.estimate("equiv").unwrap();
        handle.shutdown();
        est
    };
    // Request ids differ across the two processes; everything else is
    // bit-identical, n included.
    assert_eq!(strip_id(&before).to_string(), strip_id(&after).to_string());
    assert_eq!(before.get("n").and_then(Json::as_i64), Some(recs.len() as i64));
    let _ = std::fs::remove_dir_all(&dir);
}
