//! Flight-recorder integration: a worker panic must leave a readable
//! post-mortem on disk — the final pre-panic requests, in order, ending
//! with the event that killed the worker.

use ddn_serve::{serve, flightrec_path, ServeClient, ServeConfig};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};
use std::path::PathBuf;

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn records(n: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            let g = rng.index(2) as u32;
            let c = Context::build(&schema()).set_cat("g", g).finish();
            let d = rng.index(2);
            let p = if d == 0 { 0.75 } else { 0.25 };
            let r = 2.0 + g as f64 + 3.0 * d as f64;
            TraceRecord::new(c, Decision::from_index(d), r).with_propensity(p)
        })
        .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ddn-flight-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_events(path: &PathBuf) -> Vec<Json> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("flight dump {} unreadable: {e}", path.display()));
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad flight line {l:?}: {e}")))
        .collect()
}

#[test]
fn a_worker_panic_dumps_the_final_requests_in_order() {
    let dir = temp_dir("panic");
    let handle = serve(&ServeConfig {
        shards: 1,
        failpoint: Some("boom".to_string()),
        data_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();

    // A healthy session does real work first, so the ring holds history
    // from BEFORE the doomed request — the dump must preserve it.
    client
        .init("fine", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    for chunk in records(64, 1).chunks(32) {
        client.ingest("fine", chunk).unwrap();
    }
    client
        .init("boom", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    client
        .ingest("boom", &records(16, 2))
        .expect_err("failpoint should degrade the session");

    let path = flightrec_path(&dir, 0);
    let events = read_events(&path);

    // The dump is the worker's whole history: init, both ingests, the
    // second init, then the ingest that tripped the failpoint.
    let verbs: Vec<&str> = events
        .iter()
        .map(|e| e.get("verb").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(verbs, ["init", "ingest", "ingest", "init", "ingest"]);
    for (i, event) in events.iter().enumerate() {
        assert_eq!(event.get("n").and_then(Json::as_u64), Some(i as u64), "{event}");
    }
    let last = events.last().unwrap();
    assert_eq!(last.get("outcome"), Some(&Json::str("panic")), "{last}");
    assert_eq!(last.get("session"), Some(&Json::str("boom")), "{last}");
    assert_eq!(last.get("records").and_then(Json::as_u64), Some(16), "{last}");
    // Everything before the panic completed normally.
    for event in &events[..events.len() - 1] {
        assert_eq!(event.get("outcome"), Some(&Json::str("ok")), "{event}");
    }

    // The server is still alive after the dump: the healthy session
    // keeps working and the dump is also served inline.
    client.ingest("fine", &records(8, 3)).unwrap();
    let resp = client.server_stats(true).unwrap();
    let ring = resp
        .get("flight")
        .and_then(|f| f.get("shard-0"))
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(ring.len(), events.len() + 1, "{resp}");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn the_ring_keeps_only_the_newest_events() {
    // Capacity 4: after 6 requests the dump holds the last 4, still
    // consecutively numbered — the recorder drops the oldest, never the
    // newest, and never leaves gaps.
    let dir = temp_dir("ring");
    let handle = serve(&ServeConfig {
        shards: 1,
        failpoint: Some("boom".to_string()),
        data_dir: Some(dir.clone()),
        flight_capacity: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();

    client
        .init("fine", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    for chunk in records(96, 4).chunks(32) {
        client.ingest("fine", chunk).unwrap(); // events 1, 2, 3
    }
    client
        .init("boom", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap(); // event 4
    client
        .ingest("boom", &records(4, 5))
        .expect_err("failpoint"); // event 5, panic

    let events = read_events(&flightrec_path(&dir, 0));
    assert_eq!(events.len(), 4, "capacity bounds the dump");
    let ns: Vec<u64> = events
        .iter()
        .map(|e| e.get("n").and_then(Json::as_u64).unwrap())
        .collect();
    assert_eq!(ns, [2, 3, 4, 5], "oldest dropped, no gaps");
    assert_eq!(
        events.last().unwrap().get("outcome"),
        Some(&Json::str("panic"))
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn on_demand_dump_rewrites_the_file_without_a_panic() {
    let dir = temp_dir("demand");
    let handle = serve(&ServeConfig {
        shards: 1,
        data_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();
    client
        .init("s", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    client.ingest("s", &records(8, 6)).unwrap();

    let path = flightrec_path(&dir, 0);
    assert!(!path.exists(), "no dump before it is asked for");
    client.server_stats(true).unwrap();
    let events = read_events(&path);
    assert_eq!(events.len(), 2, "init + ingest");
    assert!(events
        .iter()
        .all(|e| e.get("outcome") == Some(&Json::str("ok"))));
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
