//! Integration tests for the live observability plane: the `stats`
//! verb, request-id echo, and the determinism of the metrics registry.
//!
//! The paper's thesis is that collection infrastructure must not bias
//! the data it collects; the observability plane holds itself to the
//! same bar. Two identical seeded workloads must produce identical
//! stats (modulo wall-clock duration fields), and the per-verb
//! histogram totals must agree exactly with the request counters at
//! every observable moment.

use ddn_serve::{serve, ServeClient, ServeConfig};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};
use std::io::{BufRead, BufReader, Write};

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn records(n: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            let g = rng.index(2) as u32;
            let c = Context::build(&schema()).set_cat("g", g).finish();
            let d = rng.index(2);
            let p = if d == 0 { 0.75 } else { 0.25 };
            let r = 2.0 + g as f64 + 3.0 * d as f64;
            TraceRecord::new(c, Decision::from_index(d), r).with_propensity(p)
        })
        .collect()
}

/// Runs the reference workload against a fresh server and returns the
/// final `stats` snapshot.
fn workload_snapshot(shards: usize) -> Json {
    let handle = serve(&ServeConfig {
        shards,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();
    for session in ["alpha", "beta"] {
        client
            .init(session, &schema(), &space(), &["ips"], "b", 0.0, None)
            .unwrap();
    }
    let recs = records(120, 42);
    for chunk in recs.chunks(32) {
        client.ingest("alpha", chunk).unwrap();
        client.ingest("beta", chunk).unwrap();
    }
    client.estimate("alpha").unwrap();
    client.health().unwrap();
    let resp = client.server_stats(false).unwrap();
    let snap = resp.get("stats").expect("stats key").clone();
    handle.shutdown();
    snap
}

/// Strips wall-clock-dependent fields: every histogram is reduced to
/// its name and total count (bucket placement and sums depend on real
/// durations; the count does not).
fn normalized(snap: &Json) -> Json {
    let section = |name: &str| snap.get(name).cloned().unwrap_or(Json::Null);
    let histograms = snap
        .get("histograms")
        .and_then(Json::as_object)
        .unwrap_or_default()
        .iter()
        .map(|(name, h)| {
            (
                name.clone(),
                h.get("count").cloned().unwrap_or(Json::Int(0)),
            )
        })
        .collect::<Vec<_>>();
    Json::Object(vec![
        ("counters".to_string(), section("counters")),
        ("gauges".to_string(), section("gauges")),
        ("histograms".to_string(), Json::Object(histograms)),
    ])
}

#[test]
fn identical_workloads_produce_identical_stats() {
    // Collection must not perturb what it reports: replaying the same
    // seeded workload twice yields byte-identical stats JSON once the
    // only nondeterministic inputs — wall-clock durations — are
    // stripped. Counter values, gauge values, the full metric name set,
    // and every histogram's total all have to match.
    let a = normalized(&workload_snapshot(2));
    let b = normalized(&workload_snapshot(2));
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn stats_key_set_is_workload_independent() {
    // Metric names are registered at serve() time, not first use, so a
    // monitoring pipeline sees a stable schema: an idle server and a
    // busy one expose the same counter and histogram names.
    let idle = {
        let handle = serve(&ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();
        let resp = client.server_stats(false).unwrap();
        let snap = resp.get("stats").unwrap().clone();
        handle.shutdown();
        snap
    };
    let busy = workload_snapshot(2);
    let names = |snap: &Json, section: &str| -> Vec<String> {
        snap.get(section)
            .and_then(Json::as_object)
            .unwrap_or_default()
            .iter()
            .map(|(n, _)| n.clone())
            .collect()
    };
    for section in ["counters", "gauges", "histograms"] {
        assert_eq!(
            names(&idle, section),
            names(&busy, section),
            "{section} name set depends on traffic"
        );
    }
}

#[test]
fn histogram_totals_equal_per_verb_counters() {
    let snap = workload_snapshot(3);
    let counters = snap.get("counters").and_then(Json::as_object).unwrap();
    let histograms = snap.get("histograms").and_then(Json::as_object).unwrap();
    let mut verbs = 0;
    for (name, value) in counters {
        let Some(verb) = name.strip_prefix("serve.req.") else {
            continue;
        };
        if verb.contains('.') {
            continue;
        }
        let conn_name = format!("serve.req.{verb}.handle_ns");
        let shard_prefix = format!("{conn_name}.s");
        let total: u64 = histograms
            .iter()
            .filter(|(h, _)| *h == conn_name || h.starts_with(&shard_prefix))
            .filter_map(|(_, j)| j.get("count").and_then(Json::as_u64))
            .sum();
        assert_eq!(
            Some(total),
            value.as_u64(),
            "verb {verb}: histogram total != counter"
        );
        verbs += 1;
    }
    // init / ingest / estimate / health / stats at least; shutdown has
    // not been sent yet.
    assert!(verbs >= 5, "only {verbs} verbs checked: {snap}");
}

#[test]
fn stats_snapshots_before_recording_itself() {
    // The snapshot is taken BEFORE the stats request books its own
    // metrics, so the invariant (totals == counters) holds at every
    // observable moment: the first response reports zero stats
    // requests, the second exactly one.
    let handle = serve(&ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();

    let counter = |resp: &Json| {
        resp.get("stats")
            .and_then(|s| s.get("counters"))
            .and_then(|c| c.get("serve.req.stats"))
            .and_then(Json::as_u64)
    };
    let first = client.server_stats(false).unwrap();
    assert_eq!(counter(&first), Some(0), "{first}");
    let second = client.server_stats(false).unwrap();
    assert_eq!(counter(&second), Some(1), "{second}");
    handle.shutdown();
}

#[test]
fn sessions_and_ingest_gauges_track_the_workload() {
    let handle = serve(&ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();
    client
        .init("one", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    client
        .init("two", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    client.ingest("one", &records(48, 9)).unwrap();

    let resp = client.server_stats(false).unwrap();
    let snap = resp.get("stats").unwrap();
    let gauges = snap.get("gauges").unwrap();
    assert_eq!(
        gauges.get("serve.sessions.live.s0").and_then(Json::as_f64),
        Some(2.0),
        "{gauges}"
    );
    assert_eq!(
        gauges.get("serve.conn.active").and_then(Json::as_f64),
        Some(1.0),
        "{gauges}"
    );
    assert_eq!(
        snap.get("counters")
            .and_then(|c| c.get("serve.ingest.records"))
            .and_then(Json::as_u64),
        Some(48),
        "{snap}"
    );
    handle.shutdown();
}

/// Sends one raw JSON line and reads one response line.
fn raw_roundtrip(stream: &mut std::net::TcpStream, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut out = String::new();
    reader.read_line(&mut out).unwrap();
    Json::parse(out.trim()).unwrap()
}

#[test]
fn request_ids_echo_verbatim_for_any_json_value() {
    let handle = serve(&ServeConfig::default()).unwrap();
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();

    // String, integer, and structured ids all echo bit-for-bit.
    let resp = raw_roundtrip(&mut stream, r#"{"verb":"health","id":"req-7"}"#);
    assert_eq!(resp.get("id"), Some(&Json::str("req-7")), "{resp}");
    let resp = raw_roundtrip(&mut stream, r#"{"verb":"health","id":12345}"#);
    assert_eq!(resp.get("id"), Some(&Json::Int(12345)), "{resp}");
    let resp = raw_roundtrip(&mut stream, r#"{"verb":"health","id":{"x":[1,2]}}"#);
    assert_eq!(resp.get("id").map(Json::to_string).as_deref(), Some(r#"{"x":[1,2]}"#));

    // Error responses carry the id too — the caller can correlate its
    // failures, not just its successes.
    let resp = raw_roundtrip(&mut stream, r#"{"verb":"no-such-verb","id":9}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp}");
    assert_eq!(resp.get("id"), Some(&Json::Int(9)), "{resp}");

    // A request with no id gets no id key invented for it.
    let resp = raw_roundtrip(&mut stream, r#"{"verb":"health"}"#);
    assert!(resp.get("id").is_none(), "{resp}");

    // Unparseable lines have no extractable id; the error comes back
    // without one rather than with a guess.
    let resp = raw_roundtrip(&mut stream, "not json at all");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp}");
    assert!(resp.get("id").is_none(), "{resp}");

    drop(stream);
    handle.shutdown();
}

#[test]
fn inline_flight_rings_are_ordered_and_complete() {
    let handle = serve(&ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();
    client
        .init("ring", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    for chunk in records(96, 5).chunks(32) {
        client.ingest("ring", chunk).unwrap();
    }
    client.estimate("ring").unwrap();

    let resp = client.server_stats(true).unwrap();
    let events = resp
        .get("flight")
        .and_then(|f| f.get("shard-0"))
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("no shard-0 flight ring in {resp}"));

    // init, 3 ingests, estimate — in submission order, with consecutive
    // indices and per-event detail intact.
    let verbs: Vec<&str> = events
        .iter()
        .map(|e| e.get("verb").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(verbs, ["init", "ingest", "ingest", "ingest", "estimate"]);
    for (i, event) in events.iter().enumerate() {
        assert_eq!(event.get("n").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(event.get("outcome"), Some(&Json::str("ok")), "{event}");
        assert_eq!(event.get("session"), Some(&Json::str("ring")), "{event}");
    }
    let seqs: Vec<Option<i64>> = events
        .iter()
        .map(|e| e.get("seq").and_then(Json::as_i64))
        .collect();
    assert_eq!(seqs, [None, Some(0), Some(1), Some(2), None]);
    handle.shutdown();
}
