//! End-to-end tests over a real TCP loopback: a server on an ephemeral
//! port, driven by the blocking client.

use ddn_estimators::Estimator;
use ddn_policy::LookupPolicy;
use ddn_serve::{serve, ServeClient, ServeConfig};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, Trace, TraceRecord};

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn records(n: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            let g = rng.index(2) as u32;
            let c = Context::build(&schema()).set_cat("g", g).finish();
            let d = rng.index(2);
            let p = if d == 0 { 0.75 } else { 0.25 };
            let r = 2.0 + g as f64 + 3.0 * d as f64;
            TraceRecord::new(c, Decision::from_index(d), r).with_propensity(p)
        })
        .collect()
}

fn start() -> (ddn_serve::ServerHandle, String) {
    let handle = serve(&ServeConfig::default()).expect("bind ephemeral port");
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

#[test]
fn ingest_then_estimate_matches_offline_bits() {
    let (handle, addr) = start();
    let mut client = ServeClient::connect(&addr).unwrap();
    client
        .init("e2e", &schema(), &space(), &["ips", "snips", "dr"], "b", 0.0, None)
        .unwrap();

    let recs = records(300, 7);
    // Feed in several batches to exercise repeated ingest.
    for chunk in recs.chunks(64) {
        let resp = client.ingest("e2e", chunk).unwrap();
        assert_eq!(
            resp.get("accepted").and_then(Json::as_i64),
            Some(chunk.len() as i64)
        );
    }
    let resp = client.estimate("e2e").unwrap();
    assert_eq!(resp.get("n").and_then(Json::as_i64), Some(300));

    let trace = Trace::from_records(schema(), space(), recs).unwrap();
    let policy = LookupPolicy::constant(space(), 1);
    for (name, offline) in [
        ("ips", ddn_estimators::Ips::new().estimate(&trace, &policy)),
        (
            "snips",
            ddn_estimators::SelfNormalizedIps::new().estimate(&trace, &policy),
        ),
        (
            "dr",
            ddn_estimators::DoublyRobust::new(&ddn_models::ConstantModel::zero())
                .estimate(&trace, &policy),
        ),
    ] {
        let online = resp
            .get("estimates")
            .and_then(|e| e.get(name))
            .and_then(|e| e.get("value"))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{name} missing from {resp:?}"));
        let offline = offline.unwrap().value;
        assert_eq!(
            online.to_bits(),
            offline.to_bits(),
            "{name}: online {online} != offline {offline}"
        );
    }
    client.shutdown().unwrap();
    handle.shutdown();
}

#[test]
fn health_reports_serve_counters_and_session_sources() {
    let (handle, addr) = start();
    let mut client = ServeClient::connect(&addr).unwrap();
    client
        .init("h", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    client.ingest("h", &records(50, 3)).unwrap();
    let resp = client.health().unwrap();
    let telemetry = resp.get("telemetry").expect("health carries telemetry");
    let counters = telemetry.get("counters").expect("counters section");
    for key in [
        "serve.ingest.records",
        "serve.queue.depth",
        "serve.conn.active",
        "serve.backpressure.stalls",
    ] {
        assert!(counters.get(key).is_some(), "missing {key}: {counters:?}");
    }
    assert_eq!(
        counters
            .get("serve.ingest.records")
            .and_then(Json::as_u64),
        Some(50)
    );
    assert_eq!(
        counters.get("serve.conn.active").and_then(Json::as_u64),
        Some(1)
    );
    let health = telemetry.get("health").expect("health section");
    assert!(
        health.get("serve/h/ips").is_some(),
        "per-session estimator health missing: {health:?}"
    );
    // shutdown() consumes the handle and joins every thread; returning
    // at all means the stop was clean.
    handle.shutdown();
}

#[test]
fn bad_lines_do_not_kill_the_connection() {
    let (handle, addr) = start();
    let mut client = ServeClient::connect(&addr).unwrap();

    // Garbage JSON → error response, connection stays usable.
    let err = client
        .request(&Json::str("not an object"))
        .expect_err("strings are not requests");
    assert!(format!("{err}").contains("verb"), "{err}");

    let err = client
        .request(&Json::object(vec![("verb", Json::str("estimate"))]))
        .expect_err("estimate without session");
    assert!(format!("{err}").contains("session"), "{err}");

    // Unknown session is an application error, still on a live socket.
    let err = client
        .request(&Json::object(vec![
            ("verb", Json::str("estimate")),
            ("session", Json::str("nope")),
        ]))
        .expect_err("unknown session");
    assert!(format!("{err}").contains("unknown session"), "{err}");

    // And the connection still works for real traffic.
    client
        .init("ok", &schema(), &space(), &["dm"], "a", 1.0, None)
        .unwrap();
    let resp = client.estimate("ok").unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    handle.shutdown();
}

#[test]
fn shutdown_verb_stops_accepting_new_connections() {
    let (handle, addr) = start();
    let mut client = ServeClient::connect(&addr).unwrap();
    let resp = client.shutdown().unwrap();
    assert_eq!(resp.get("shutting_down"), Some(&Json::Bool(true)));
    // Joining succeeds: acceptor and workers exit.
    handle.shutdown();
    // New connections are refused (or accepted-then-dropped by the dying
    // acceptor wake-up connection); either way no request succeeds.
    match ServeClient::connect(&addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(c.health().is_err(), "server answered after shutdown");
        }
    }
}

#[test]
fn sessions_are_isolated_across_connections() {
    let (handle, addr) = start();
    let mut a = ServeClient::connect(&addr).unwrap();
    let mut b = ServeClient::connect(&addr).unwrap();
    a.init("sa", &schema(), &space(), &["ips"], "b", 0.0, None)
        .unwrap();
    b.init("sb", &schema(), &space(), &["ips"], "a", 0.0, None)
        .unwrap();
    a.ingest("sa", &records(40, 1)).unwrap();
    b.ingest("sb", &records(60, 2)).unwrap();
    let ra = a.estimate("sa").unwrap();
    let rb = b.estimate("sb").unwrap();
    assert_eq!(ra.get("n").and_then(Json::as_i64), Some(40));
    assert_eq!(rb.get("n").and_then(Json::as_i64), Some(60));
    handle.shutdown();
}
