//! Corruption suite: what recovery does when the bytes on disk lie.
//!
//! The contract under test (DESIGN.md §12): recovery restores the
//! **longest valid prefix** of the log — a torn tail, a flipped byte, or
//! an empty file must never crash startup, never resurrect garbage, and
//! never lose an acknowledged frame *before* the corruption point. The
//! `serve.recover.truncated_frames` counter pins exactly what was
//! discarded. Two golden tests pin the on-disk byte layout itself, so an
//! accidental format change fails loudly instead of silently orphaning
//! every existing data directory.

use ddn_serve::engine::Engine;
use ddn_serve::protocol::DEFAULT_MAX_WEIGHT;
use ddn_serve::snapshot::{snapshot_path, wal_path, SNAPSHOT_MAGIC};
use ddn_serve::wal::{encode_frame, fnv1a, read_wal, FRAME_HEADER_BYTES, WAL_MAGIC};
use ddn_serve::{serve, Request, ServeClient, ServeConfig, ServerHandle, ShardDurability};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};
use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const MODEL_VALUE: f64 = 2.5;

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn records(n: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            let g = rng.index(2) as u32;
            let c = Context::build(&schema()).set_cat("g", g).finish();
            let d = rng.index(2);
            let p = if d == 0 { 0.75 } else { 0.25 };
            let r = 2.0 + g as f64 + 3.0 * d as f64;
            TraceRecord::new(c, Decision::from_index(d), r).with_propensity(p)
        })
        .collect()
}

fn test_dir(name: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ddn-wal-corruption-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

// ---- byte-layout goldens --------------------------------------------------

#[test]
fn golden_wal_frame_byte_layout() {
    // The exact bytes of frame id=1 carrying `{"verb":"noop"}`. Pinned
    // down to the FNV-1a checksum value: changing any of magic, header
    // field order/width/endianness, or the checksum input breaks this
    // test — which is the point, because it also breaks every WAL on
    // disk.
    let payload = br#"{"verb":"noop"}"#;
    let frame = encode_frame(1, payload);
    assert_eq!(WAL_MAGIC, b"DDNWAL01");
    assert_eq!(FRAME_HEADER_BYTES, 20);
    let mut want = Vec::new();
    want.extend_from_slice(&15u32.to_le_bytes()); // payload length
    want.extend_from_slice(&1u64.to_le_bytes()); // frame id
    want.extend_from_slice(&0x69af_5469_88a0_86a3u64.to_le_bytes()); // crc
    want.extend_from_slice(payload);
    assert_eq!(frame, want);
    // The checksum covers (id ‖ payload), so a frame misfiled under a
    // different id fails validation even with an intact payload.
    assert_eq!(fnv1a(&[&1u64.to_le_bytes()[..], payload].concat()), 0x69af_5469_88a0_86a3);
}

#[test]
fn golden_snapshot_byte_layout() {
    // A snapshot is magic ‖ len(u32 LE) ‖ crc(u64 LE) ‖ payload, with the
    // checksum over the payload alone.
    let dir = test_dir("golden-snap");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("golden.snap");
    ddn_serve::write_snapshot(&path, &Json::object(vec![("version", Json::Int(1))])).unwrap();
    let bytes = fs::read(&path).unwrap();
    let mut want = Vec::new();
    want.extend_from_slice(SNAPSHOT_MAGIC);
    assert_eq!(SNAPSHOT_MAGIC, b"DDNSNAP1");
    want.extend_from_slice(&13u32.to_le_bytes()); // payload length
    want.extend_from_slice(&0x07eb_e02b_9b5e_69f2u64.to_le_bytes()); // crc
    want.extend_from_slice(br#"{"version":1}"#);
    assert_eq!(bytes, want);
    assert_eq!(
        ddn_serve::read_snapshot(&path),
        Some(Json::object(vec![("version", Json::Int(1))]))
    );
    let _ = fs::remove_dir_all(&dir);
}

// ---- end-to-end corruption scenarios --------------------------------------

/// Boots a durable single-shard server on `dir`, ingests `batches`
/// sequenced batches into session `"c"`, and shuts down — leaving every
/// frame in the WAL (the huge snapshot interval prevents rotation).
fn build_log(dir: &Path, batches: &[&[TraceRecord]]) {
    let handle = serve(&ServeConfig {
        shards: 1,
        data_dir: Some(dir.to_path_buf()),
        snapshot_every: 1_000_000,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();
    client
        .init("c", &schema(), &space(), &["ips", "dm"], "b", MODEL_VALUE, None)
        .unwrap();
    for batch in batches {
        let resp = client.ingest("c", batch).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    }
    handle.shutdown();
}

/// Restarts the server on `dir` and returns (handle, fresh client).
fn reopen(dir: &Path) -> (ServerHandle, ServeClient) {
    let handle = serve(&ServeConfig {
        shards: 1,
        data_dir: Some(dir.to_path_buf()),
        snapshot_every: 1_000_000,
        ..ServeConfig::default()
    })
    .expect("rebind");
    let client = ServeClient::connect(&handle.local_addr().to_string()).unwrap();
    (handle, client)
}

/// Drops the `"id"` echo the server attaches to wire responses, so they
/// compare bitwise against bare engine responses (which carry none).
fn strip_id(resp: &Json) -> Json {
    match resp {
        Json::Object(fields) => Json::Object(
            fields
                .iter()
                .filter(|(k, _)| k != "id")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

/// The reference estimate for session `"c"` after exactly `batches`.
fn reference_estimate(batches: &[&[TraceRecord]]) -> Json {
    let mut engine = Engine::default();
    let line = Json::object(vec![
        ("verb", Json::str("init")),
        ("session", Json::str("c")),
        ("schema", schema().to_json()),
        ("space", space().to_json()),
        (
            "estimators",
            Json::Array(vec![Json::str("ips"), Json::str("dm")]),
        ),
        (
            "policy",
            Json::object(vec![
                ("kind", Json::str("constant")),
                ("decision", Json::str("b")),
            ]),
        ),
        ("model_value", Json::Num(MODEL_VALUE)),
        ("max_weight", Json::Num(DEFAULT_MAX_WEIGHT)),
    ])
    .to_string();
    let Ok(Request::Init(spec)) = Request::parse(&line) else {
        panic!("bad reference init");
    };
    engine.handle_init(spec);
    for (seq, batch) in batches.iter().enumerate() {
        let resp = engine.handle_ingest("c", batch, Some(seq as u64));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    }
    engine.handle_estimate("c")
}

/// Byte offset where frame `index` (0-based) starts in the WAL file.
fn frame_offset(path: &Path, index: usize) -> u64 {
    let wal = read_wal(path).unwrap();
    assert!(wal.frames.len() > index, "only {} frames", wal.frames.len());
    let mut off = WAL_MAGIC.len() as u64;
    for frame in &wal.frames[..index] {
        off += (FRAME_HEADER_BYTES + frame.payload.len()) as u64;
    }
    off
}

#[test]
fn a_truncated_tail_frame_recovers_the_longest_valid_prefix() {
    let dir = test_dir("truncate");
    let recs = records(48, 21);
    let batches: Vec<&[TraceRecord]> = recs.chunks(12).collect();
    build_log(&dir, &batches);

    // Cut the file mid-way through the last frame's payload: exactly the
    // bytes a power cut mid-append leaves behind.
    let wal = wal_path(&dir, 0);
    let last_start = frame_offset(&wal, batches.len()); // frame 0 is the init
    let len = fs::metadata(&wal).unwrap().len();
    let f = fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(last_start + (len - last_start) / 2).unwrap();
    drop(f);

    let (handle, mut client) = reopen(&dir);
    assert_eq!(handle.stats().recover_truncated_frames(), 1);
    assert_eq!(
        handle.stats().recover_frames_replayed(),
        batches.len() as u64, // init + all batches but the cut one
    );
    let est = strip_id(&client.estimate("c").unwrap());
    assert_eq!(
        est.to_string(),
        reference_estimate(&batches[..batches.len() - 1]).to_string(),
        "recovered state must be the acked prefix, nothing more or less"
    );
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_flipped_checksum_byte_drops_only_the_corrupt_tail_frame() {
    let dir = test_dir("bitflip");
    let recs = records(48, 22);
    let batches: Vec<&[TraceRecord]> = recs.chunks(12).collect();
    build_log(&dir, &batches);

    // Flip one bit in the last frame's payload; its checksum no longer
    // matches, so recovery must stop right before it.
    let wal = wal_path(&dir, 0);
    let mut bytes = fs::read(&wal).unwrap();
    let last_start = frame_offset(&wal, batches.len()) as usize;
    let victim = last_start + FRAME_HEADER_BYTES + 5;
    bytes[victim] ^= 0x01;
    fs::write(&wal, &bytes).unwrap();

    let (handle, mut client) = reopen(&dir);
    assert_eq!(handle.stats().recover_truncated_frames(), 1);
    let est = strip_id(&client.estimate("c").unwrap());
    assert_eq!(
        est.to_string(),
        reference_estimate(&batches[..batches.len() - 1]).to_string()
    );
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corruption_in_the_middle_cuts_the_log_there() {
    // Prefix semantics, not frame-skipping: a bad frame in the middle
    // invalidates everything after it (frame ids and session sequences
    // would no longer be trustworthy).
    let dir = test_dir("middle");
    let recs = records(48, 23);
    let batches: Vec<&[TraceRecord]> = recs.chunks(12).collect();
    build_log(&dir, &batches);

    let wal = wal_path(&dir, 0);
    let mut bytes = fs::read(&wal).unwrap();
    // Corrupt frame 2 = the *second* ingest batch (frame 1 is the init).
    let start = frame_offset(&wal, 2) as usize;
    bytes[start + FRAME_HEADER_BYTES] ^= 0xFF;
    fs::write(&wal, &bytes).unwrap();

    let (handle, mut client) = reopen(&dir);
    assert!(handle.stats().recover_truncated_frames() >= 1);
    assert_eq!(
        handle.stats().recover_frames_replayed(),
        2, // init + first batch only
    );
    let est = strip_id(&client.estimate("c").unwrap());
    assert_eq!(
        est.to_string(),
        reference_estimate(&batches[..1]).to_string()
    );
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_zero_length_wal_is_a_clean_empty_log_not_corruption() {
    let dir = test_dir("empty");
    build_log(&dir, &[&records(12, 24)]);
    let wal = wal_path(&dir, 0);
    fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(0)
        .unwrap();
    // The stale self-heal snapshot from the first boot covers nothing,
    // so with the WAL gone the server comes back empty — but *cleanly*:
    // a zero-length file is what a crash right after rotation leaves and
    // counts no truncated frames.
    let (handle, mut client) = reopen(&dir);
    assert_eq!(handle.stats().recover_truncated_frames(), 0);
    assert_eq!(handle.stats().recover_frames_replayed(), 0);
    assert_eq!(handle.stats().recover_sessions(), 0);
    let err = client.estimate("c").expect_err("session cannot exist");
    assert!(format!("{err}").contains("unknown session"), "{err}");
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_fresh_snapshot_with_an_older_wal_replays_nothing_twice() {
    // The crash window recovery itself leaves open: self-heal writes the
    // new snapshot, then rotates the WAL. A kill between the two leaves
    // a snapshot that already covers every frame id in the (old) WAL.
    // Those frames must replay as no-ops, not double-ingest.
    let dir = test_dir("overlap");
    let recs = records(36, 25);
    let batches: Vec<&[TraceRecord]> = recs.chunks(12).collect();
    build_log(&dir, &batches);
    let wal = wal_path(&dir, 0);
    let old_wal_bytes = fs::read(&wal).unwrap();

    // Run recovery once directly: it restores the state, writes a fresh
    // snapshot, and rotates the WAL...
    let mut engine = Engine::default();
    let mut poisoned = HashSet::new();
    let (d, report) =
        ShardDurability::open(&dir, 0, 1_000_000, None, &mut engine, &mut poisoned).unwrap();
    drop(d);
    assert_eq!(report.frames_replayed, 1 + batches.len() as u64);
    // ...then "crash" before the rotation reaches disk by putting the
    // old WAL back next to the new snapshot.
    fs::write(&wal, &old_wal_bytes).unwrap();

    let (handle, mut client) = reopen(&dir);
    assert_eq!(
        handle.stats().recover_frames_replayed(),
        0,
        "every old frame id is covered by the snapshot"
    );
    assert_eq!(handle.stats().recover_sessions(), 1);
    let est = strip_id(&client.estimate("c").unwrap());
    assert_eq!(est.to_string(), reference_estimate(&batches).to_string());
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_snapshot_falls_back_to_wal_replay() {
    // Flip a byte inside the snapshot body: the checksum fails, recovery
    // trusts none of it, and the state comes back from the WAL alone
    // (which here still holds every frame).
    let dir = test_dir("badsnap");
    let recs = records(36, 26);
    let batches: Vec<&[TraceRecord]> = recs.chunks(12).collect();
    build_log(&dir, &batches);

    let snap = snapshot_path(&dir, 0);
    let mut bytes = fs::read(&snap).unwrap();
    let mid = bytes.len() - 3;
    bytes[mid] ^= 0x10;
    fs::write(&snap, &bytes).unwrap();

    let (handle, mut client) = reopen(&dir);
    assert_eq!(handle.stats().recover_sessions(), 0, "snapshot rejected");
    assert_eq!(
        handle.stats().recover_frames_replayed(),
        1 + batches.len() as u64,
        "full WAL replay"
    );
    let est = strip_id(&client.estimate("c").unwrap());
    assert_eq!(est.to_string(), reference_estimate(&batches).to_string());
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
