//! Kill-and-restart chaos suite: durability must not bias the data.
//!
//! Every case runs a durable server (`data_dir` set) against an
//! in-process reference [`Engine`] fed the exact same sequenced batches.
//! A seeded [`LifecyclePlan`] kills the server at scripted record
//! offsets — optionally leaving torn garbage on the WAL tail, as a real
//! `kill -9` mid-append would — and restarts it on a fresh port. The
//! paper-level invariant under test: after any number of crashes and
//! recoveries, the served `estimate` (and per-session health) is
//! **bit-identical** to the unbroken reference run. Recovery may never
//! add, drop, or perturb a single acknowledged record.

use ddn_serve::engine::Engine;
use ddn_serve::protocol::DEFAULT_MAX_WEIGHT;
use ddn_serve::snapshot::wal_path;
use ddn_serve::{
    serve, ClientConfig, Request, ServeClient, ServeConfig, ServerHandle, TcpTransport, Transport,
};
use ddn_stats::rng::{Rng, Xoshiro256};
use ddn_stats::Json;
use ddn_testkit::{
    check_with, lifecycle_plans, prop_assert, prop_assert_eq, Config, LifecyclePlanConfig,
    TestResult,
};
use ddn_trace::{Context, ContextSchema, Decision, DecisionSpace, TraceRecord};
use std::collections::HashMap;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The full online estimator menu plus a windowed variant; recovery must
/// round-trip every accumulator shape, not just the easy ones. The menu
/// trio rides along: `seqdr` runs at horizon 4 while batches arrive at
/// arbitrary sizes, so kills land mid-trajectory and recovery must
/// restore its pending partial trajectory exactly.
const MENU: &[&str] = &[
    "ips",
    "snips",
    "clipped",
    "dm",
    "dr",
    "adaptive",
    "adaptive_dr",
    "mdr",
    "seqdr",
];
const MODEL_VALUE: f64 = 2.5;
const SEQ_HORIZON: usize = 4;

fn schema() -> ContextSchema {
    ContextSchema::builder().categorical("g", 2).build()
}

fn space() -> DecisionSpace {
    DecisionSpace::of(&["a", "b"])
}

fn records(n: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            let g = rng.index(2) as u32;
            let c = Context::build(&schema()).set_cat("g", g).finish();
            let d = rng.index(2);
            let p = if d == 0 { 0.75 } else { 0.25 };
            let r = 2.0 + g as f64 + 3.0 * d as f64;
            TraceRecord::new(c, Decision::from_index(d), r).with_propensity(p)
        })
        .collect()
}

/// Drops the `"id"` echo the server attaches to wire responses, so they
/// compare bitwise against bare engine responses (which carry none).
fn strip_id(resp: &Json) -> Json {
    match resp {
        Json::Object(fields) => Json::Object(
            fields
                .iter()
                .filter(|(k, _)| k != "id")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

fn test_dir(name: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ddn-crash-resume-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The init request the client sends, reconstructed so the reference
/// engine sees byte-for-byte the same spec the server parsed.
fn init_request(session: &str, estimators: &[&str], window: Option<usize>) -> Json {
    let mut fields = vec![
        ("verb", Json::str("init")),
        ("session", Json::str(session)),
        ("schema", schema().to_json()),
        ("space", space().to_json()),
        (
            "estimators",
            Json::Array(estimators.iter().map(|e| Json::str(*e)).collect()),
        ),
        (
            "policy",
            Json::object(vec![
                ("kind", Json::str("constant")),
                ("decision", Json::str("b")),
            ]),
        ),
        ("model_value", Json::Num(MODEL_VALUE)),
        ("max_weight", Json::Num(DEFAULT_MAX_WEIGHT)),
        ("horizon", Json::Int(SEQ_HORIZON as i64)),
        ("embedding", Json::Array(vec![Json::Int(0), Json::Int(0)])),
        (
            "logging",
            Json::object(vec![("kind", Json::str("uniform"))]),
        ),
    ];
    if let Some(w) = window {
        fields.push(("window", Json::Int(w as i64)));
    }
    Json::object(fields)
}

/// The unbroken reference: a plain in-process engine fed the same
/// sequenced batches the client acknowledged, with no server, no WAL,
/// and no crashes in between.
#[derive(Default)]
struct Reference {
    engine: Engine,
    seqs: HashMap<String, u64>,
}

impl Reference {
    fn init(&mut self, session: &str, estimators: &[&str], window: Option<usize>) {
        let line = init_request(session, estimators, window).to_string();
        let Ok(Request::Init(spec)) = Request::parse(&line) else {
            panic!("reference init line failed to parse: {line}");
        };
        let resp = self.engine.handle_init(spec);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        self.seqs.insert(session.to_string(), 0);
    }

    fn ingest(&mut self, session: &str, batch: &[TraceRecord]) {
        let seq = self.seqs[session];
        let resp = self.engine.handle_ingest(session, batch, Some(seq));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        *self.seqs.get_mut(session).unwrap() += 1;
    }
}

/// A durable server whose address survives kill-and-restart via a shared
/// cell the client's connector re-reads on every (re)connect.
struct DurableServer {
    dir: PathBuf,
    shards: usize,
    snapshot_every: u64,
    addr: Arc<Mutex<String>>,
    handle: Option<ServerHandle>,
}

impl DurableServer {
    fn start(dir: PathBuf, shards: usize, snapshot_every: u64) -> Self {
        let mut s = Self {
            dir,
            shards,
            snapshot_every,
            addr: Arc::new(Mutex::new(String::new())),
            handle: None,
        };
        s.boot();
        s
    }

    fn boot(&mut self) {
        let handle = serve(&ServeConfig {
            shards: self.shards,
            data_dir: Some(self.dir.clone()),
            snapshot_every: self.snapshot_every,
            ..ServeConfig::default()
        })
        .expect("bind durable server");
        *self.addr.lock().unwrap() = handle.local_addr().to_string();
        self.handle = Some(handle);
    }

    /// Simulates `kill -9` + restart. A crash cannot un-write
    /// acknowledged WAL frames (each is a single kernel-buffered write),
    /// but it *can* leave a torn partial frame from an append that was in
    /// flight — modeled by appending `torn_tail_bytes` of garbage.
    fn kill_and_restart(&mut self, torn_tail_bytes: usize) -> &ServerHandle {
        self.handle.take().expect("server running").shutdown();
        if torn_tail_bytes > 0 {
            for shard in 0..self.shards {
                if let Ok(mut f) = OpenOptions::new()
                    .append(true)
                    .open(wal_path(&self.dir, shard))
                {
                    let _ = f.write_all(&vec![0xAB; torn_tail_bytes]);
                }
            }
        }
        self.boot();
        self.handle.as_ref().unwrap()
    }

    fn stats(&self) -> &ddn_serve::ServerStats {
        self.handle.as_ref().expect("server running").stats()
    }

    /// A client that re-reads the (possibly updated) address on every
    /// reconnect, with a retry budget wide enough to ride out a restart.
    fn client(&self) -> ServeClient {
        let addr = Arc::clone(&self.addr);
        ServeClient::from_connector(
            Box::new(move || {
                let a = addr.lock().unwrap().clone();
                Ok(Box::new(TcpTransport::connect(&a)?) as Box<dyn Transport>)
            }),
            ClientConfig {
                read_timeout: Duration::from_secs(5),
                max_retries: 8,
                backoff_base: Duration::from_millis(2),
            },
        )
        .expect("initial connect")
    }

    fn finish(mut self) {
        if let Some(h) = self.handle.take() {
            h.shutdown();
        }
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Compares the served per-session health against the reference engine's
/// collector, metric by metric, bitwise. Single-run snapshots aggregate
/// each metric as `{runs:1, mean:v, min:v, max:v}`, so `mean` IS the
/// value.
fn assert_session_health_matches(
    health_resp: &Json,
    reference: &Engine,
    session: &str,
) -> Result<(), String> {
    let live = health_resp
        .get("telemetry")
        .and_then(|t| t.get("health"))
        .ok_or("health response missing telemetry.health")?;
    let prefix = format!("serve/{session}/");
    let mut compared = 0usize;
    for (source, metrics) in reference.collector().health {
        if !source.starts_with(&prefix) {
            continue;
        }
        let live_source = live
            .get(&source)
            .ok_or_else(|| format!("recovered health missing source {source:?}"))?;
        for (metric, want) in metrics {
            let got = live_source
                .get(metric)
                .and_then(|m| m.get("mean"))
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{source}: missing metric {metric:?}"))?;
            if got.to_bits() != want.to_bits() {
                return Err(format!(
                    "{source}/{metric}: recovered {got:?} != reference {want:?}"
                ));
            }
            compared += 1;
        }
    }
    if compared == 0 {
        return Err(format!("no health metrics found for session {session:?}"));
    }
    Ok(())
}

/// THE crash-resume property: under a seeded (ingest-schedule ×
/// kill-offset × torn-tail × snapshot-interval) plan, the estimates and
/// per-session health served after the final recovery are bit-identical
/// to the unbroken in-process reference.
#[test]
fn killed_and_restarted_server_matches_unbroken_reference() {
    // Each case boots real TCP servers several times; a handful of cases
    // is plenty and keeps the suite fast. DDN_TESTKIT_CASES still
    // overrides.
    let config = Config {
        cases: 5,
        ..Config::default()
    };
    let generator = (
        0u64..1_000_000,
        4usize..33,
        1u64..12,
        lifecycle_plans(LifecyclePlanConfig {
            kills: 2,
            record_horizon: 220,
            max_torn_bytes: 48,
        }),
    );
    check_with(
        &config,
        "crash_resume::killed_and_restarted_server_matches_unbroken_reference",
        &generator,
        |case| {
            let (rec_seed, batch_size, snapshot_every, plan) = case.clone();
            let server = DurableServer::start(test_dir("prop"), 2, snapshot_every);
            let mut client = server.client();
            let mut reference = Reference::default();

            let sessions: [(&str, &[&str], Option<usize>); 2] =
                [("menu", MENU, None), ("win", &["ips", "dm"], Some(16))];
            for (sid, ests, window) in sessions {
                client
                    .init_with(sid, &init_request(sid, ests, window))
                    .expect("init");
                reference.init(sid, ests, window);
            }

            let recs = records(260, rec_seed);
            let mut driver = plan.driver();
            let mut killed_with_torn_tail = false;
            let mut server = server;
            for (i, batch) in recs.chunks(batch_size).enumerate() {
                let sid = sessions[i % sessions.len()].0;
                let resp = client.ingest(sid, batch).expect("ingest");
                prop_assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
                reference.ingest(sid, batch);
                if let Some(kill) = driver.advance(batch.len() as u64) {
                    server.kill_and_restart(kill.torn_tail_bytes);
                    if kill.torn_tail_bytes > 0 {
                        killed_with_torn_tail = true;
                        prop_assert!(
                            server.stats().recover_truncated_frames() >= 1,
                            "torn tail of {} bytes went unnoticed by recovery",
                            kill.torn_tail_bytes
                        );
                    }
                }
            }
            let _ = killed_with_torn_tail;

            // One final crash so the served state is *entirely* the
            // recovered one, even when no scripted kill fired.
            server.kill_and_restart(0);
            let stats = server.stats();
            prop_assert!(
                stats.recover_sessions() == 2 || stats.recover_frames_replayed() >= 2,
                "final recovery found no trace of the two sessions \
                 (restored {}, replayed {})",
                stats.recover_sessions(),
                stats.recover_frames_replayed()
            );

            for (sid, _, _) in sessions {
                let est = strip_id(&client.estimate(sid).expect("estimate after recovery"));
                let want = reference.engine.handle_estimate(sid);
                prop_assert!(
                    est.to_string() == want.to_string(),
                    "session {:?} diverged after recovery under plan {:?}:\n  got {}\n want {}",
                    sid,
                    plan,
                    est,
                    want
                );
            }
            let health = client.health().expect("health after recovery");
            for (sid, _, _) in sessions {
                if let Err(e) = assert_session_health_matches(&health, &reference.engine, sid) {
                    return TestResult::fail(format!("under plan {plan:?}: {e}"));
                }
            }
            server.finish();
            TestResult::Pass
        },
    );
}

#[test]
fn a_kill_between_snapshot_and_newer_wal_frames_replays_the_tail() {
    // snapshot_every=3 guarantees a mid-stream snapshot; the batches
    // after it live only in the WAL. Recovery must stack exactly those
    // frames on top of the snapshot — not replay pre-snapshot frames
    // (which would double-count) and not drop the tail.
    let server = DurableServer::start(test_dir("tail"), 1, 3);
    let mut server = server;
    let mut client = server.client();
    let mut reference = Reference::default();
    client
        .init_with("tail", &init_request("tail", MENU, None))
        .unwrap();
    reference.init("tail", MENU, None);

    let recs = records(70, 7);
    for batch in recs.chunks(10) {
        client.ingest("tail", batch).unwrap();
        reference.ingest("tail", batch);
    }
    assert!(
        server.stats().snapshot_writes() >= 2,
        "cadence of 3 over 8 frames must have rotated a snapshot"
    );

    server.kill_and_restart(0);
    let stats = server.stats();
    assert!(
        stats.recover_sessions() >= 1 || stats.recover_frames_replayed() >= 1,
        "recovery found nothing"
    );
    let est = strip_id(&client.estimate("tail").unwrap());
    assert_eq!(
        est.to_string(),
        reference.engine.handle_estimate("tail").to_string()
    );
    // n proves no frame replayed twice and none was dropped.
    assert_eq!(est.get("n").and_then(Json::as_i64), Some(recs.len() as i64));
    server.finish();
}

#[test]
fn a_torn_mid_frame_append_is_discarded_and_acked_batches_survive() {
    // Large interval so nothing snapshots mid-stream: every acked batch
    // lives in the WAL when the torn tail lands on top of it.
    let mut server = DurableServer::start(test_dir("torn"), 1, 1_000);
    let mut client = server.client();
    let mut reference = Reference::default();
    client
        .init_with("torn", &init_request("torn", MENU, None))
        .unwrap();
    reference.init("torn", MENU, None);
    let recs = records(40, 13);
    for batch in recs.chunks(8) {
        client.ingest("torn", batch).unwrap();
        reference.ingest("torn", batch);
    }

    server.kill_and_restart(17);
    let stats = server.stats();
    assert_eq!(stats.recover_truncated_frames(), 1, "the torn tail");
    assert_eq!(
        stats.recover_frames_replayed(),
        1 + 5,
        "init + five acked batches replay; the torn garbage does not"
    );
    let est = strip_id(&client.estimate("torn").unwrap());
    assert_eq!(
        est.to_string(),
        reference.engine.handle_estimate("torn").to_string()
    );
    assert_eq!(est.get("n").and_then(Json::as_i64), Some(recs.len() as i64));

    // The healed log accepts new writes: ingest continues seamlessly on
    // the recovered sequence numbers.
    let more = records(16, 14);
    client.ingest("torn", &more).unwrap();
    reference.ingest("torn", &more);
    let est = strip_id(&client.estimate("torn").unwrap());
    assert_eq!(
        est.to_string(),
        reference.engine.handle_estimate("torn").to_string()
    );
    server.finish();
}

#[test]
fn windowed_eviction_and_negative_zero_rewards_survive_restart() {
    // The nastiest state to round-trip: a sliding window mid-eviction,
    // holding rewards whose sum crosses -0.0/+0.0 — the one f64 edge JSON
    // text cannot represent but raw bits must preserve.
    let mut server = DurableServer::start(test_dir("negzero"), 1, 4);
    let mut client = server.client();
    let mut reference = Reference::default();
    client
        .init(
            "edge",
            &schema(),
            &space(),
            &["ips", "dm", "snips"],
            "b",
            MODEL_VALUE,
            Some(8),
        )
        .unwrap();
    reference.init("edge", &["ips", "dm", "snips"], Some(8));

    let edge_records: Vec<TraceRecord> = (0..20)
        .map(|i| {
            let c = Context::build(&schema()).set_cat("g", (i % 2) as u32).finish();
            let d = i % 2;
            let p = if d == 0 { 0.75 } else { 0.25 };
            // Alternating -0.0 / 0.0 rewards: sums hit the signed-zero
            // identity, windows evict records holding each sign.
            let r = if i % 2 == 0 { -0.0 } else { 0.0 };
            TraceRecord::new(c, Decision::from_index(d), r).with_propensity(p)
        })
        .collect();
    for batch in edge_records.chunks(3) {
        client.ingest("edge", batch).unwrap();
        reference.ingest("edge", batch);
        server.kill_and_restart(0);
    }

    let est = strip_id(&client.estimate("edge").unwrap());
    assert_eq!(
        est.to_string(),
        reference.engine.handle_estimate("edge").to_string(),
        "signed-zero windowed state diverged across restarts"
    );
    server.finish();
}

#[test]
fn a_reused_data_dir_with_a_different_shard_count_is_refused() {
    // meta.json pins the shard count: session→shard routing is a hash
    // modulo shards, so reopening with a different count would look up
    // sessions in files that don't hold them. Refusing beats silence.
    let dir = test_dir("meta");
    let server = DurableServer::start(dir.clone(), 2, 64);
    server.finish_keeping_dir();
    let err = match serve(&ServeConfig {
        shards: 3,
        data_dir: Some(dir.clone()),
        ..ServeConfig::default()
    }) {
        Err(e) => e,
        Ok(h) => {
            h.shutdown();
            panic!("shard count mismatch must refuse startup");
        }
    };
    assert!(
        err.to_string().contains("shards"),
        "unhelpful refusal: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

impl DurableServer {
    fn finish_keeping_dir(mut self) {
        if let Some(h) = self.handle.take() {
            h.shutdown();
        }
    }
}
