//! The binary columnar batch frame — `ddn-serve`'s high-throughput
//! ingest encoding (DESIGN.md §14).
//!
//! JSON stays the debug/compat protocol; this frame exists because the
//! ingest hot path of a production-scale evaluation pipeline should not
//! spend itself parsing text. A frame carries one `ingest` batch for
//! one session as contiguous little-endian columns (features, decisions,
//! rewards, propensities), so decoding is bounds checks plus `memcpy`,
//! and it decodes to the *same* [`Request::Ingest`] the JSON verb
//! produces — bit-identical estimates are a test, not an aspiration.
//!
//! ## Byte layout (everything little-endian)
//!
//! ```text
//! magic      4B   DB 44 4E 31           ("\xDB" "DN1")
//! body_len   4B   u32, length of body below (crc excluded)
//! body:
//!   flags        u16   bit0 seq, bit1 id, bit2 propensity,
//!                      bit3 state, bit4 timestamp
//!   session_len  u16
//!   n_rows       u32
//!   n_features   u16
//!   kinds        n_features × u8    0 = categorical, 1 = numeric
//!   session      session_len bytes of UTF-8
//!   seq          u64               present iff flags bit0
//!   id           u64               present iff flags bit1
//!   timestamps   n_rows × f64      present iff flags bit4; NaN = absent
//!   features     n_features × n_rows × f64, column-major
//!                                  (categorical codes stored as f64)
//!   decisions    n_rows × u32
//!   rewards      n_rows × f64
//!   propensities n_rows × f64      present iff flags bit2; NaN = absent
//!   states       n_rows × u32      present iff flags bit3; u32::MAX = absent
//! crc        8B   u64, FNV-1a 64 over body
//! ```
//!
//! The first magic byte (0xDB) can never begin a JSON request line, so
//! the server's framer switches mode on it unambiguously. Optional
//! columns are whole-batch: a column is emitted when *any* record in
//! the batch carries the field, with in-band sentinels (NaN — never a
//! legal reward/propensity/timestamp value — and `u32::MAX`) marking
//! the rows that do not.
//!
//! Like [`Request::from_json`], decoding is structural only: schema
//! conformance (feature count, categorical ranges, propensity bounds)
//! is checked by the engine at ingest, so binary and JSON batches are
//! rejected by the same code with the same errors.

use crate::wal::{fnv1a, MAX_FRAME_BYTES};
use ddn_trace::{Context, Decision, FeatureValue, StateTag, TraceRecord};

/// The 4-byte frame magic. The leading 0xDB is not valid UTF-8 start
/// for any JSON token, making binary/JSON mode detection a 1-byte peek.
pub const FRAME_MAGIC: [u8; 4] = [0xDB, b'D', b'N', b'1'];

/// Bytes before the body: magic (4) + body_len (4).
pub const FRAME_PREFIX_BYTES: usize = 8;

/// Bytes after the body: crc (8).
pub const FRAME_CRC_BYTES: usize = 8;

const FLAG_SEQ: u16 = 1 << 0;
const FLAG_ID: u16 = 1 << 1;
const FLAG_PROPENSITY: u16 = 1 << 2;
const FLAG_STATE: u16 = 1 << 3;
const FLAG_TIMESTAMP: u16 = 1 << 4;

/// A decoded binary batch: everything the dispatcher needs to build the
/// same `Request::Ingest` the JSON verb would have produced.
#[derive(Debug)]
pub struct BinaryBatch {
    /// Target session name.
    pub session: String,
    /// The decoded records, row order preserved.
    pub records: Vec<TraceRecord>,
    /// Exactly-once sequence number, if the client sent one.
    pub seq: Option<u64>,
    /// Request id for response correlation, if the client sent one.
    pub id: Option<u64>,
}

/// Encodes one ingest batch as a complete frame (magic through crc).
///
/// Fails (rather than silently mis-encoding) when a feature column
/// mixes categorical and numeric values across rows, or when rows have
/// differing feature counts — the columnar layout requires homogeneous
/// columns. The JSON verb remains available for such batches.
pub fn encode(
    session: &str,
    records: &[TraceRecord],
    seq: Option<u64>,
    id: Option<u64>,
) -> Result<Vec<u8>, String> {
    let n_rows = records.len();
    let n_features = records.first().map_or(0, |r| r.context.values().len());
    if n_features > u16::MAX as usize {
        return Err(format!("{n_features} features exceed the frame's u16 limit"));
    }
    if n_rows > u32::MAX as usize {
        return Err(format!("{n_rows} rows exceed the frame's u32 limit"));
    }
    if session.len() > u16::MAX as usize {
        return Err(format!(
            "session name of {} bytes exceeds the frame's u16 limit",
            session.len()
        ));
    }
    for (row, r) in records.iter().enumerate() {
        if r.context.values().len() != n_features {
            return Err(format!(
                "row {row} has {} features, row 0 has {n_features}",
                r.context.values().len()
            ));
        }
    }

    // One kind byte per column, fixed by the first row; reject mixes.
    let mut kinds = Vec::with_capacity(n_features);
    for col in 0..n_features {
        let kind = match records[0].context.values()[col] {
            FeatureValue::Cat(_) => 0u8,
            FeatureValue::Num(_) => 1u8,
        };
        for (row, r) in records.iter().enumerate() {
            let got = match r.context.values()[col] {
                FeatureValue::Cat(_) => 0u8,
                FeatureValue::Num(_) => 1u8,
            };
            if got != kind {
                return Err(format!(
                    "feature column {col} mixes categorical and numeric \
                     values (row 0 vs row {row}); use the JSON verb"
                ));
            }
        }
        kinds.push(kind);
    }

    let has_propensity = records.iter().any(|r| r.propensity.is_some());
    let has_state = records.iter().any(|r| r.state.is_some());
    let has_timestamp = records.iter().any(|r| r.timestamp.is_some());
    let mut flags = 0u16;
    if seq.is_some() {
        flags |= FLAG_SEQ;
    }
    if id.is_some() {
        flags |= FLAG_ID;
    }
    if has_propensity {
        flags |= FLAG_PROPENSITY;
    }
    if has_state {
        flags |= FLAG_STATE;
    }
    if has_timestamp {
        flags |= FLAG_TIMESTAMP;
    }

    let mut body = Vec::with_capacity(
        16 + n_features
            + session.len()
            + n_rows * (8 * n_features + 4 + 8 + 8 + 8 + 4),
    );
    body.extend_from_slice(&flags.to_le_bytes());
    body.extend_from_slice(&(session.len() as u16).to_le_bytes());
    body.extend_from_slice(&(n_rows as u32).to_le_bytes());
    body.extend_from_slice(&(n_features as u16).to_le_bytes());
    body.extend_from_slice(&kinds);
    body.extend_from_slice(session.as_bytes());
    if let Some(s) = seq {
        body.extend_from_slice(&s.to_le_bytes());
    }
    if let Some(i) = id {
        body.extend_from_slice(&i.to_le_bytes());
    }
    if has_timestamp {
        for r in records {
            body.extend_from_slice(&r.timestamp.unwrap_or(f64::NAN).to_le_bytes());
        }
    }
    for col in 0..n_features {
        for r in records {
            let x = match r.context.values()[col] {
                FeatureValue::Cat(c) => f64::from(c),
                FeatureValue::Num(x) => x,
            };
            body.extend_from_slice(&x.to_le_bytes());
        }
    }
    for r in records {
        body.extend_from_slice(&(r.decision.index() as u32).to_le_bytes());
    }
    for r in records {
        body.extend_from_slice(&r.reward.to_le_bytes());
    }
    if has_propensity {
        for r in records {
            body.extend_from_slice(&r.propensity.unwrap_or(f64::NAN).to_le_bytes());
        }
    }
    if has_state {
        for r in records {
            let s = r.state.map_or(u32::MAX, |StateTag(s)| s);
            body.extend_from_slice(&s.to_le_bytes());
        }
    }

    let total = FRAME_PREFIX_BYTES + body.len() + FRAME_CRC_BYTES;
    if total > MAX_FRAME_BYTES {
        return Err(format!(
            "frame of {total} bytes exceeds the {MAX_FRAME_BYTES}-byte cap; \
             split the batch"
        ));
    }
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    Ok(out)
}

/// A cursor over the body with little-endian scalar reads.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("frame body truncated reading {what}"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self, what: &str) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

/// Decodes a complete frame (magic through crc) back into a batch.
///
/// `bytes` must be exactly one frame — the server's framer has already
/// split the stream using the length prefix. Verifies magic, length,
/// and crc; trailing bytes beyond the declared body are an error.
pub fn decode(bytes: &[u8]) -> Result<BinaryBatch, String> {
    if bytes.len() < FRAME_PREFIX_BYTES + FRAME_CRC_BYTES {
        return Err(format!("frame of {} bytes is shorter than its header", bytes.len()));
    }
    if bytes[..4] != FRAME_MAGIC {
        return Err(format!(
            "bad frame magic {:02x}{:02x}{:02x}{:02x}",
            bytes[0], bytes[1], bytes[2], bytes[3]
        ));
    }
    let body_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    if bytes.len() != FRAME_PREFIX_BYTES + body_len + FRAME_CRC_BYTES {
        return Err(format!(
            "frame declares a {body_len}-byte body but carries {} bytes total",
            bytes.len()
        ));
    }
    let body = &bytes[FRAME_PREFIX_BYTES..FRAME_PREFIX_BYTES + body_len];
    let crc = u64::from_le_bytes(bytes[FRAME_PREFIX_BYTES + body_len..].try_into().unwrap());
    let computed = fnv1a(body);
    if crc != computed {
        return Err(format!(
            "frame crc mismatch: stored {crc:#018x}, computed {computed:#018x}"
        ));
    }

    let mut c = Cursor { buf: body, pos: 0 };
    let flags = c.u16("flags")?;
    let session_len = c.u16("session_len")? as usize;
    let n_rows = c.u32("n_rows")? as usize;
    let n_features = c.u16("n_features")? as usize;
    let kinds = c.take(n_features, "feature kinds")?.to_vec();
    for (col, k) in kinds.iter().enumerate() {
        if *k > 1 {
            return Err(format!("feature column {col} has unknown kind byte {k}"));
        }
    }
    let session = std::str::from_utf8(c.take(session_len, "session")?)
        .map_err(|e| format!("session name is not UTF-8: {e}"))?
        .to_string();
    let seq = if flags & FLAG_SEQ != 0 {
        Some(c.u64("seq")?)
    } else {
        None
    };
    let id = if flags & FLAG_ID != 0 {
        Some(c.u64("id")?)
    } else {
        None
    };
    let timestamps = if flags & FLAG_TIMESTAMP != 0 {
        let mut v = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            v.push(c.f64("timestamp")?);
        }
        Some(v)
    } else {
        None
    };
    // Columns arrive column-major; build row-major values directly.
    let mut values: Vec<Vec<FeatureValue>> =
        (0..n_rows).map(|_| Vec::with_capacity(n_features)).collect();
    for kind in &kinds {
        for row in values.iter_mut() {
            let x = c.f64("feature")?;
            row.push(match kind {
                0 => {
                    if !(x.is_finite() && x >= 0.0 && x <= f64::from(u32::MAX) && x.fract() == 0.0)
                    {
                        return Err(format!(
                            "categorical code {x} is not an exact u32"
                        ));
                    }
                    FeatureValue::Cat(x as u32)
                }
                _ => FeatureValue::Num(x),
            });
        }
    }
    let mut decisions = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        decisions.push(c.u32("decision")?);
    }
    let mut rewards = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        rewards.push(c.f64("reward")?);
    }
    let propensities = if flags & FLAG_PROPENSITY != 0 {
        let mut v = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            v.push(c.f64("propensity")?);
        }
        Some(v)
    } else {
        None
    };
    let states = if flags & FLAG_STATE != 0 {
        let mut v = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            v.push(c.u32("state")?);
        }
        Some(v)
    } else {
        None
    };
    if c.pos != body.len() {
        return Err(format!(
            "frame body has {} trailing bytes after the last column",
            body.len() - c.pos
        ));
    }

    let mut records = Vec::with_capacity(n_rows);
    for (row, vals) in values.into_iter().enumerate() {
        records.push(TraceRecord {
            context: Context::from_wire_values(vals),
            decision: Decision::from_index(decisions[row] as usize),
            reward: rewards[row],
            propensity: propensities
                .as_ref()
                .map(|p| p[row])
                .filter(|p| !p.is_nan()),
            state: states
                .as_ref()
                .map(|s| s[row])
                .filter(|&s| s != u32::MAX)
                .map(StateTag),
            timestamp: timestamps
                .as_ref()
                .map(|t| t[row])
                .filter(|t| !t.is_nan()),
        });
    }
    Ok(BinaryBatch {
        session,
        records,
        seq,
        id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_trace::ContextSchema;

    fn schema() -> ContextSchema {
        ContextSchema::builder()
            .categorical("g", 4)
            .numeric("x")
            .build()
    }

    fn sample(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                let c = Context::build(&schema())
                    .set_cat("g", (i % 4) as u32)
                    .set_numeric("x", 0.5 + i as f64)
                    .finish();
                let mut r = TraceRecord::new(c, Decision::from_index(i % 3), i as f64 * 0.25)
                    .with_propensity(0.5);
                if i % 2 == 0 {
                    r = r.with_state(StateTag(i as u32));
                }
                r
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_every_field_bit_for_bit() {
        let records = sample(17);
        let bytes = encode("sess", &records, Some(9), Some(1234)).unwrap();
        let batch = decode(&bytes).unwrap();
        assert_eq!(batch.session, "sess");
        assert_eq!(batch.seq, Some(9));
        assert_eq!(batch.id, Some(1234));
        assert_eq!(batch.records.len(), records.len());
        for (a, b) in records.iter().zip(&batch.records) {
            assert_eq!(a.to_json().to_string(), b.to_json().to_string());
            assert_eq!(a.reward.to_bits(), b.reward.to_bits());
        }
    }

    #[test]
    fn optional_columns_are_omitted_when_absent() {
        let no_seq = encode("s", &sample(8), None, None).unwrap();
        let with_seq = encode("s", &sample(8), Some(0), Some(0)).unwrap();
        assert_eq!(with_seq.len() - no_seq.len(), 16, "seq + id are 8 bytes each");
        let batch = decode(&no_seq).unwrap();
        assert_eq!(batch.seq, None);
        assert_eq!(batch.id, None);
    }

    #[test]
    fn golden_byte_layout_is_pinned() {
        // One row, one numeric feature, no optional columns: the exact
        // bytes are part of the wire contract (DESIGN.md §14). Breaking
        // this test means old clients cannot talk to new servers.
        let c = Context::from_wire_values(vec![FeatureValue::Num(1.5)]);
        let rec = TraceRecord {
            context: c,
            decision: Decision::from_index(2),
            reward: -0.5,
            propensity: None,
            state: None,
            timestamp: None,
        };
        let bytes = encode("ab", std::slice::from_ref(&rec), None, None).unwrap();
        let mut expect = vec![
            0xDB, b'D', b'N', b'1', // magic
            33, 0, 0, 0, // body_len = 2+2+4+2+1+2 + 8 + 4 + 8 = 33
            0, 0, // flags: nothing optional
            2, 0, // session_len
            1, 0, 0, 0, // n_rows
            1, 0, // n_features
            1,    // kind: numeric
            b'a', b'b', // session
        ];
        expect.extend_from_slice(&1.5f64.to_le_bytes()); // feature col
        expect.extend_from_slice(&2u32.to_le_bytes()); // decision
        expect.extend_from_slice(&(-0.5f64).to_le_bytes()); // reward
        expect.extend_from_slice(&fnv1a(&expect[8..]).to_le_bytes());
        assert_eq!(bytes, expect);
    }

    #[test]
    fn corruption_is_rejected_at_every_layer() {
        let good = encode("s", &sample(5), Some(1), None).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[1] = b'X';
        assert!(decode(&bad_magic).unwrap_err().contains("magic"));

        let mut bad_crc = good.clone();
        *bad_crc.last_mut().unwrap() ^= 0x01;
        assert!(decode(&bad_crc).unwrap_err().contains("crc"));

        // A bit flip anywhere in the body trips the crc.
        let mut flipped = good.clone();
        let mid = FRAME_PREFIX_BYTES + 10;
        flipped[mid] ^= 0x80;
        assert!(decode(&flipped).unwrap_err().contains("crc"));

        let truncated = &good[..good.len() - 3];
        assert!(decode(truncated).unwrap_err().contains("body"));

        assert!(decode(&good[..6]).unwrap_err().contains("shorter"));
    }

    #[test]
    fn mixed_kind_columns_are_refused_at_encode_time() {
        let a = TraceRecord::new(
            Context::from_wire_values(vec![FeatureValue::Cat(1)]),
            Decision::from_index(0),
            1.0,
        );
        let b = TraceRecord::new(
            Context::from_wire_values(vec![FeatureValue::Num(1.0)]),
            Decision::from_index(0),
            1.0,
        );
        let err = encode("s", &[a, b], None, None).unwrap_err();
        assert!(err.contains("mixes"), "{err}");
    }

    #[test]
    fn ragged_rows_are_refused_at_encode_time() {
        let a = TraceRecord::new(
            Context::from_wire_values(vec![FeatureValue::Num(1.0)]),
            Decision::from_index(0),
            1.0,
        );
        let b = TraceRecord::new(
            Context::from_wire_values(vec![FeatureValue::Num(1.0), FeatureValue::Num(2.0)]),
            Decision::from_index(0),
            1.0,
        );
        let err = encode("s", &[a, b], None, None).unwrap_err();
        assert!(err.contains("features"), "{err}");
    }

    #[test]
    fn empty_batch_round_trips() {
        let bytes = encode("empty", &[], Some(3), None).unwrap();
        let batch = decode(&bytes).unwrap();
        assert_eq!(batch.session, "empty");
        assert_eq!(batch.seq, Some(3));
        assert!(batch.records.is_empty());
    }

    #[test]
    fn nan_sentinels_survive_partial_optional_columns() {
        // Batch where only SOME rows carry propensity/state/timestamp:
        // the column is emitted with sentinels and absent fields come
        // back as None, not as NaN values.
        let mk = |p: Option<f64>, t: Option<f64>| TraceRecord {
            context: Context::from_wire_values(vec![FeatureValue::Num(0.0)]),
            decision: Decision::from_index(0),
            reward: 1.0,
            propensity: p,
            state: None,
            timestamp: t,
        };
        let records = vec![mk(Some(0.25), None), mk(None, Some(7.5))];
        let batch = decode(&encode("s", &records, None, None).unwrap()).unwrap();
        assert_eq!(batch.records[0].propensity, Some(0.25));
        assert_eq!(batch.records[1].propensity, None);
        assert_eq!(batch.records[0].timestamp, None);
        assert_eq!(batch.records[1].timestamp, Some(7.5));
    }
}
