//! The wire protocol: one JSON object per line, in both directions.
//!
//! ## Grammar
//!
//! Every request is a single-line JSON object with a `"verb"` field:
//!
//! ```text
//! init     {"verb":"init","session":S,"schema":H,"space":P,
//!           "estimators":["ips","snips","clipped","dm","dr",
//!                         "adaptive","adaptive_dr","mdr","seqdr"],
//!           "policy":{"kind":"constant","decision":D}|{"kind":"uniform"},
//!           "model_value":V?,"max_weight":W?,"window":N?,
//!           "horizon":T?,"embedding":[G,...]?,"logging":POLICY?}
//! ingest   {"verb":"ingest","session":S,"records":[R,...],"seq":Q?}
//! estimate {"verb":"estimate","session":S}
//! health   {"verb":"health"}
//! stats    {"verb":"stats","flight":B?}
//! shutdown {"verb":"shutdown"}
//! ```
//!
//! Any request may additionally carry a client-assigned `"id"` (any
//! JSON value); the server echoes it verbatim as the `"id"` field of
//! the response — success or error — so clients can correlate
//! request/response pairs across retries (DESIGN.md §13).
//!
//! where `H`/`P`/`R` are the `ddn-trace` JSONL encodings of a context
//! schema, decision space, and trace record, `D` is a decision name or
//! index, `V` is an optional constant reward-model value (default 0) for
//! `dm`/`dr`, `W` an optional clip threshold (default 10) for `clipped`,
//! and `N` an optional sliding-window capacity (omitted = cumulative).
//! The menu extensions add `T`, an optional trajectory horizon (default
//! 1) for `seqdr`; `[G,...]`, an optional per-arm group assignment for
//! `mdr` (omitted = identity embedding, one group per arm); and
//! `"logging"`, an optional policy object giving `mdr` its marginal
//! denominators (omitted = uniform — `mdr` never reads per-record
//! propensities).
//!
//! `stats` returns a point-in-time snapshot of the server's live metric
//! [`ddn_telemetry::Registry`] (counters, gauges, log2 histogram
//! buckets) as deterministic sorted-key JSON; with `"flight":true` it
//! also returns (and, with durability on, dumps to disk) every shard's
//! flight-recorder ring. See DESIGN.md §13.
//!
//! `Q` is an optional per-session batch sequence number starting at 0.
//! A sequenced batch is applied atomically and exactly once: replaying
//! the last-acknowledged sequence returns the stored acknowledgement
//! (tagged `"duplicate":true`) without re-ingesting, which is what makes
//! client retries safe. Unsequenced ingests keep the legacy prefix
//! semantics (records before a bad one stay ingested). See DESIGN.md §11.
//!
//! Every response is `{"ok":true,...}` or `{"ok":false,"error":MSG}`.
//! A malformed line never kills the connection: the server answers with
//! an error object and keeps reading.
//!
//! ## Binary batch frames
//!
//! Alongside the JSON verbs, a connection may send an `ingest` as one
//! length-prefixed binary columnar frame (magic byte `0xDB`, which can
//! never open a JSON line). The frame decodes to exactly the same
//! [`Request::Ingest`] — session, records, optional `seq` and `id` —
//! and is answered by the same one-line JSON response. JSON stays the
//! debug/compat protocol; the frame is the high-throughput encoding.
//! Byte layout and invariants live in [`crate::frame`] and DESIGN.md
//! §14.

use ddn_stats::Json;
use ddn_trace::{ContextSchema, DecisionSpace, TraceRecord};

/// The default clip threshold for the `clipped` estimator when the init
/// request does not set `"max_weight"`.
pub const DEFAULT_MAX_WEIGHT: f64 = 10.0;

/// The target-policy specification carried by an `init` request.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// "always this decision", named or by index (resolved against the
    /// session's decision space at init time).
    ConstantName(String),
    /// "always this decision", by index.
    ConstantIndex(usize),
    /// Uniform random over the decision space.
    Uniform,
}

impl PolicySpec {
    /// The `"policy"` object of an init request line.
    pub fn to_json(&self) -> Json {
        match self {
            PolicySpec::Uniform => Json::object(vec![("kind", Json::str("uniform"))]),
            PolicySpec::ConstantName(name) => Json::object(vec![
                ("kind", Json::str("constant")),
                ("decision", Json::str(name.clone())),
            ]),
            PolicySpec::ConstantIndex(i) => Json::object(vec![
                ("kind", Json::str("constant")),
                ("decision", Json::Int(*i as i64)),
            ]),
        }
    }
}

/// An `init` request, parsed and type-checked (but with the policy's
/// decision not yet resolved against the space).
#[derive(Debug)]
pub struct InitSpec {
    /// Session identifier (routing key for sharding).
    pub session: String,
    /// Context schema the session's records must conform to.
    pub schema: ContextSchema,
    /// Decision space the session's records must conform to.
    pub space: DecisionSpace,
    /// Estimators to run, by protocol name (`ips`, `snips`, `clipped`,
    /// `dm`, `dr`, `adaptive`, `adaptive_dr`, `mdr`, `seqdr`).
    pub estimators: Vec<String>,
    /// Target policy to evaluate.
    pub policy: PolicySpec,
    /// Constant reward-model value for `dm`/`dr`/`adaptive_dr`/`mdr`/`seqdr`.
    pub model_value: f64,
    /// Clip threshold for `clipped`.
    pub max_weight: f64,
    /// Sliding-window capacity; `None` = cumulative estimators.
    pub window: Option<usize>,
    /// Trajectory horizon for `seqdr` (default 1 — single-step DR).
    pub horizon: usize,
    /// Per-arm group assignment for `mdr`; `None` = identity embedding.
    pub embedding: Option<Vec<usize>>,
    /// Logging policy supplying `mdr`'s marginal denominators.
    pub logging: PolicySpec,
}

impl InitSpec {
    /// Re-serializes the spec as a complete, parseable init request line
    /// (the `"verb":"init"` object). This is the WAL/snapshot encoding of
    /// a session's configuration: recovery feeds it back through
    /// [`Request::parse`], so replay exercises the same code path as live
    /// traffic. Round-tripping is exact — the workspace JSON float
    /// formatting is bit-preserving, and `parse_init`'s `.reindexed()` is
    /// idempotent on an already-reindexed schema.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("verb", Json::str("init")),
            ("session", Json::str(self.session.clone())),
            ("schema", self.schema.to_json()),
            ("space", self.space.to_json()),
            (
                "estimators",
                Json::Array(self.estimators.iter().map(Json::str).collect()),
            ),
            ("policy", self.policy.to_json()),
            ("model_value", Json::Num(self.model_value)),
            ("max_weight", Json::Num(self.max_weight)),
        ];
        if let Some(w) = self.window {
            fields.push(("window", Json::Int(w as i64)));
        }
        if self.horizon != 1 {
            fields.push(("horizon", Json::Int(self.horizon as i64)));
        }
        if let Some(groups) = &self.embedding {
            fields.push((
                "embedding",
                Json::Array(groups.iter().map(|&g| Json::Int(g as i64)).collect()),
            ));
        }
        if self.logging != PolicySpec::Uniform {
            fields.push(("logging", self.logging.to_json()));
        }
        Json::object(fields)
    }
}

/// The ingest request line for `records` — the WAL encoding of a
/// sequenced batch (the conn thread parses lines before shard dispatch,
/// so the worker rebuilds the wire form to log it).
pub fn ingest_request_json(session: &str, records: &[TraceRecord], seq: Option<u64>) -> Json {
    let mut fields = vec![
        ("verb", Json::str("ingest")),
        ("session", Json::str(session)),
        (
            "records",
            Json::Array(records.iter().map(TraceRecord::to_json).collect()),
        ),
    ];
    if let Some(q) = seq {
        fields.push(("seq", Json::Int(q as i64)));
    }
    Json::object(fields)
}

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Create (or replace) a session.
    Init(InitSpec),
    /// Feed records into a session.
    Ingest {
        /// Target session.
        session: String,
        /// Parsed records (validation against the session's schema
        /// happens in the shard worker).
        records: Vec<TraceRecord>,
        /// Optional batch sequence number for exactly-once retries.
        seq: Option<u64>,
    },
    /// Ask for the session's current estimates.
    Estimate {
        /// Target session.
        session: String,
    },
    /// Ask for a server-wide telemetry snapshot.
    Health,
    /// Ask for the live metric registry (and optionally the flight
    /// recorder rings).
    Stats {
        /// Include every shard's flight-recorder events in the response
        /// (and dump them to `flightrec-<shard>.jsonl` when durability
        /// is configured).
        flight: bool,
    },
    /// Begin graceful shutdown.
    Shutdown,
}

impl Request {
    /// Parses one request line. Errors are user-facing strings (they go
    /// straight into the `"error"` field of the response).
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        Self::from_json(&v)
    }

    /// Parses an already-decoded request object (the connection layer
    /// decodes once so it can echo the `"id"` field even on errors).
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let verb = v
            .get("verb")
            .and_then(Json::as_str)
            .ok_or("missing \"verb\"")?;
        match verb {
            "init" => Ok(Request::Init(parse_init(v)?)),
            "ingest" => {
                let session = required_session(v)?;
                let records = v
                    .get("records")
                    .and_then(Json::as_array)
                    .ok_or("ingest needs a \"records\" array")?
                    .iter()
                    .map(|r| TraceRecord::from_json(r).map_err(|e| format!("bad record: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
                let seq = match v.get("seq") {
                    None => None,
                    Some(x) => Some(
                        x.as_u64()
                            .ok_or("\"seq\" must be a non-negative integer")?,
                    ),
                };
                Ok(Request::Ingest {
                    session,
                    records,
                    seq,
                })
            }
            "estimate" => Ok(Request::Estimate {
                session: required_session(v)?,
            }),
            "health" => Ok(Request::Health),
            "stats" => {
                let flight = match v.get("flight") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err("\"flight\" must be a boolean".into()),
                };
                Ok(Request::Stats { flight })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown verb {other:?}")),
        }
    }
}

/// The client-assigned request id of a decoded request object, if any.
/// Ids are opaque: any JSON value is accepted and echoed verbatim.
pub fn request_id(v: &Json) -> Option<Json> {
    v.get("id").cloned()
}

/// Appends the echoed `"id"` field to a response object (no-op without
/// an id, or on a non-object response).
pub fn attach_id(mut resp: Json, id: Option<Json>) -> Json {
    if let (Json::Object(fields), Some(id)) = (&mut resp, id) {
        fields.push(("id".to_string(), id));
    }
    resp
}

fn required_session(v: &Json) -> Result<String, String> {
    v.get("session")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "missing \"session\"".to_string())
}

fn parse_policy(p: &Json) -> Result<PolicySpec, String> {
    let kind = p
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("policy needs a \"kind\"")?;
    match kind {
        "uniform" => Ok(PolicySpec::Uniform),
        "constant" => match p.get("decision") {
            Some(Json::Str(name)) => Ok(PolicySpec::ConstantName(name.clone())),
            Some(d) => {
                let idx = d
                    .as_u64()
                    .ok_or("constant policy needs a decision name or index")?;
                Ok(PolicySpec::ConstantIndex(idx as usize))
            }
            None => Err("constant policy needs \"decision\"".into()),
        },
        other => Err(format!("unknown policy kind {other:?}")),
    }
}

fn parse_init(v: &Json) -> Result<InitSpec, String> {
    let session = required_session(v)?;
    let schema = ContextSchema::from_json(v.get("schema").ok_or("init needs \"schema\"")?)
        .map_err(|e| format!("bad schema: {e}"))?
        .reindexed();
    let space = DecisionSpace::from_json(v.get("space").ok_or("init needs \"space\"")?)
        .map_err(|e| format!("bad space: {e}"))?;
    let estimators: Vec<String> = match v.get("estimators").and_then(Json::as_array) {
        Some(list) => list
            .iter()
            .map(|e| {
                e.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "estimator names must be strings".to_string())
            })
            .collect::<Result<_, _>>()?,
        None => vec!["ips".into(), "snips".into(), "dm".into(), "dr".into()],
    };
    if estimators.is_empty() {
        return Err("\"estimators\" must not be empty".into());
    }
    let policy = match v.get("policy") {
        None => PolicySpec::Uniform,
        Some(p) => parse_policy(p)?,
    };
    let model_value = match v.get("model_value") {
        None => 0.0,
        Some(x) => x.as_f64().ok_or("\"model_value\" must be a number")?,
    };
    let max_weight = match v.get("max_weight") {
        None => DEFAULT_MAX_WEIGHT,
        Some(x) => {
            let w = x.as_f64().ok_or("\"max_weight\" must be a number")?;
            if !(w > 0.0 && w.is_finite()) {
                return Err("\"max_weight\" must be positive and finite".into());
            }
            w
        }
    };
    let window = match v.get("window") {
        None => None,
        Some(x) => {
            let n = x.as_u64().ok_or("\"window\" must be a positive integer")?;
            if n == 0 {
                return Err("\"window\" must be at least 1".into());
            }
            Some(n as usize)
        }
    };
    let horizon = match v.get("horizon") {
        None => 1,
        Some(x) => {
            let n = x.as_u64().ok_or("\"horizon\" must be a positive integer")?;
            if n == 0 {
                return Err("\"horizon\" must be at least 1".into());
            }
            n as usize
        }
    };
    let embedding = match v.get("embedding") {
        None => None,
        Some(x) => {
            let arr = x
                .as_array()
                .ok_or("\"embedding\" must be an array of group ids")?;
            let groups = arr
                .iter()
                .map(|g| {
                    g.as_u64()
                        .map(|g| g as usize)
                        .ok_or_else(|| "\"embedding\" entries must be non-negative integers".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            if groups.len() != space.len() {
                return Err(format!(
                    "\"embedding\" covers {} arms but the space has {}",
                    groups.len(),
                    space.len()
                ));
            }
            Some(groups)
        }
    };
    let logging = match v.get("logging") {
        None => PolicySpec::Uniform,
        Some(p) => parse_policy(p)?,
    };
    Ok(InitSpec {
        session,
        schema,
        space,
        estimators,
        policy,
        model_value,
        max_weight,
        window,
        horizon,
        embedding,
        logging,
    })
}

/// `{"ok":false,"error":msg}`.
pub fn error_response(msg: &str) -> Json {
    Json::object(vec![("ok", Json::Bool(false)), ("error", Json::str(msg))])
}

/// `{"ok":true, ...fields}`.
pub fn ok_response(fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    Json::object(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_trace::{Context, Decision};

    fn schema_json() -> String {
        ContextSchema::builder()
            .categorical("g", 2)
            .build()
            .to_json()
            .to_string()
    }

    fn space_json() -> String {
        DecisionSpace::of(&["a", "b"]).to_json().to_string()
    }

    #[test]
    fn parses_the_full_init_surface() {
        let line = format!(
            r#"{{"verb":"init","session":"s1","schema":{},"space":{},"estimators":["ips","clipped"],"policy":{{"kind":"constant","decision":"b"}},"model_value":1.5,"max_weight":4.0,"window":32}}"#,
            schema_json(),
            space_json()
        );
        let req = Request::parse(&line).unwrap();
        let Request::Init(init) = req else {
            panic!("expected init");
        };
        assert_eq!(init.session, "s1");
        assert_eq!(init.estimators, vec!["ips", "clipped"]);
        assert_eq!(init.policy, PolicySpec::ConstantName("b".into()));
        assert_eq!(init.model_value, 1.5);
        assert_eq!(init.max_weight, 4.0);
        assert_eq!(init.window, Some(32));
    }

    #[test]
    fn parses_and_round_trips_the_menu_init_fields() {
        let line = format!(
            concat!(
                r#"{{"verb":"init","session":"s1","schema":{},"space":{},"#,
                r#""estimators":["adaptive","adaptive_dr","mdr","seqdr"],"#,
                r#""policy":{{"kind":"constant","decision":"b"}},"#,
                r#""horizon":4,"embedding":[0,0],"#,
                r#""logging":{{"kind":"constant","decision":"a"}}}}"#,
            ),
            schema_json(),
            space_json()
        );
        let Request::Init(init) = Request::parse(&line).unwrap() else {
            panic!("expected init");
        };
        assert_eq!(init.horizon, 4);
        assert_eq!(init.embedding, Some(vec![0, 0]));
        assert_eq!(init.logging, PolicySpec::ConstantName("a".into()));

        // The snapshot encoding (to_json) must re-parse to the same spec.
        let Request::Init(again) = Request::parse(&init.to_json().to_string()).unwrap() else {
            panic!("expected init");
        };
        assert_eq!(again.horizon, init.horizon);
        assert_eq!(again.embedding, init.embedding);
        assert_eq!(again.logging, init.logging);
        assert_eq!(again.estimators, init.estimators);

        // Validation: zero horizon, bad embedding arity, bad logging kind.
        for (extra, needle) in [
            (r#","horizon":0"#, "horizon"),
            (r#","embedding":[0]"#, "embedding"),
            (r#","logging":{"kind":"warp"}"#, "policy kind"),
        ] {
            let line = format!(
                r#"{{"verb":"init","session":"s","schema":{},"space":{}{extra}}}"#,
                schema_json(),
                space_json()
            );
            let e = Request::parse(&line).unwrap_err();
            assert!(e.contains(needle), "{extra}: {e}");
        }
    }

    #[test]
    fn init_defaults_are_sensible() {
        let line = format!(
            r#"{{"verb":"init","session":"s","schema":{},"space":{}}}"#,
            schema_json(),
            space_json()
        );
        let Request::Init(init) = Request::parse(&line).unwrap() else {
            panic!("expected init");
        };
        assert_eq!(init.estimators, vec!["ips", "snips", "dm", "dr"]);
        assert_eq!(init.policy, PolicySpec::Uniform);
        assert_eq!(init.max_weight, DEFAULT_MAX_WEIGHT);
        assert_eq!(init.window, None);
        assert_eq!(init.horizon, 1);
        assert_eq!(init.embedding, None);
        assert_eq!(init.logging, PolicySpec::Uniform);
    }

    #[test]
    fn parses_ingest_records() {
        let schema = ContextSchema::builder().categorical("g", 2).build();
        let c = Context::build(&schema).set_cat("g", 1).finish();
        let rec = ddn_trace::TraceRecord::new(c, Decision::from_index(0), 2.0)
            .with_propensity(0.5);
        let line = format!(
            r#"{{"verb":"ingest","session":"s","records":[{}]}}"#,
            rec.to_json().to_string()
        );
        let Request::Ingest {
            session,
            records,
            seq,
        } = Request::parse(&line).unwrap()
        else {
            panic!("expected ingest");
        };
        assert_eq!(session, "s");
        assert_eq!(records, vec![rec]);
        assert_eq!(seq, None);
    }

    #[test]
    fn parses_ingest_seq() {
        let line = r#"{"verb":"ingest","session":"s","records":[],"seq":7}"#;
        let Request::Ingest { seq, .. } = Request::parse(line).unwrap() else {
            panic!("expected ingest");
        };
        assert_eq!(seq, Some(7));
        let e = Request::parse(r#"{"verb":"ingest","session":"s","records":[],"seq":-1}"#)
            .unwrap_err();
        assert!(e.contains("seq"), "{e}");
        let e = Request::parse(r#"{"verb":"ingest","session":"s","records":[],"seq":"x"}"#)
            .unwrap_err();
        assert!(e.contains("seq"), "{e}");
    }

    #[test]
    fn rejects_malformed_requests_with_messages() {
        for (line, needle) in [
            ("{not json}", "bad JSON"),
            (r#"{"session":"s"}"#, "verb"),
            (r#"{"verb":"warp"}"#, "unknown verb"),
            (r#"{"verb":"ingest","records":[]}"#, "session"),
            (r#"{"verb":"ingest","session":"s"}"#, "records"),
            (r#"{"verb":"init","session":"s"}"#, "schema"),
        ] {
            let e = Request::parse(line).unwrap_err();
            assert!(e.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn parses_stats_verb() {
        let Request::Stats { flight } = Request::parse(r#"{"verb":"stats"}"#).unwrap() else {
            panic!("expected stats");
        };
        assert!(!flight);
        let Request::Stats { flight } =
            Request::parse(r#"{"verb":"stats","flight":true}"#).unwrap()
        else {
            panic!("expected stats");
        };
        assert!(flight);
        let e = Request::parse(r#"{"verb":"stats","flight":1}"#).unwrap_err();
        assert!(e.contains("flight"), "{e}");
    }

    #[test]
    fn request_ids_are_extracted_and_echoed() {
        let v = Json::parse(r#"{"verb":"health","id":"abc-7"}"#).unwrap();
        let id = request_id(&v);
        assert_eq!(id, Some(Json::str("abc-7")));
        let resp = attach_id(ok_response(vec![]), id);
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("abc-7"));
        // Errors echo too, and numeric (or any) ids survive verbatim.
        let v = Json::parse(r#"{"verb":"nope","id":42}"#).unwrap();
        let resp = attach_id(error_response("unknown verb"), request_id(&v));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("id"), Some(&Json::Int(42)));
        // No id, no field.
        let resp = attach_id(ok_response(vec![]), None);
        assert!(resp.get("id").is_none());
    }

    #[test]
    fn response_builders_shape_the_envelope() {
        let ok = ok_response(vec![("accepted", Json::Int(3))]);
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(ok.get("accepted"), Some(&Json::Int(3)));
        let err = error_response("nope");
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(err.get("error").and_then(Json::as_str), Some("nope"));
    }
}
