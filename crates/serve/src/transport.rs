//! Byte-stream abstraction over the socket, so faults can be injected
//! deterministically between the protocol layer and the kernel.
//!
//! Both endpoints — the server's connection handler and [`ServeClient`] —
//! move bytes exclusively through a [`Transport`]. Production uses
//! [`TcpTransport`] (a thin `TcpStream` wrapper); chaos tests wrap it in
//! [`FaultyTransport`], which consults a shared
//! [`ddn_testkit::FaultCursor`] before every read and write and injects
//! partial I/O, delays, mid-line disconnects, and error returns at the
//! byte offsets a seeded [`ddn_testkit::FaultPlan`] scripted.
//!
//! The cursor is shared (`Arc<Mutex<_>>`) across clones and reconnects:
//! offsets are cumulative over the endpoint's lifetime, so one plan
//! deterministically scripts an entire retrying session.
//!
//! [`ServeClient`]: crate::client::ServeClient

use ddn_testkit::{Dir, FaultCursor, IoDecision};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A bidirectional byte stream the protocol layer reads and writes
/// through. Mirrors the `TcpStream` surface the serve layer needs, plus
/// cloning into independently-owned read/write halves.
pub trait Transport: Send {
    /// Reads up to `buf.len()` bytes; `Ok(0)` is EOF.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Writes up to `buf.len()` bytes, returning how many were taken.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Flushes buffered bytes to the peer.
    fn flush(&mut self) -> io::Result<()>;
    /// Sets the blocking-read timeout (`None` = block forever).
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
    /// Switches the underlying stream between blocking and nonblocking
    /// mode. The readiness-driven server puts every accepted transport
    /// into nonblocking mode before registering it with epoll.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;
    /// The underlying OS file descriptor, if this transport has one —
    /// what the event loop registers with epoll. Wrappers delegate to
    /// their inner transport; a transport with no fd (none exist today)
    /// would return `None` and cannot be served by the event loop.
    fn raw_fd(&self) -> Option<i32>;
    /// Clones the transport into a second handle over the same stream
    /// (for split read/write halves).
    fn try_clone_transport(&self) -> io::Result<Box<dyn Transport>>;
}

/// The production transport: a `TcpStream` with Nagle disabled.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected stream. The protocol is strict request/response
    /// over small lines, so Nagle buys nothing and its interaction with
    /// delayed ACKs costs ~40ms per reply; it is disabled here.
    pub fn new(stream: TcpStream) -> Self {
        let _ = stream.set_nodelay(true);
        Self { stream }
    }

    /// Connects and wraps.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Ok(Self::new(TcpStream::connect(addr)?))
    }
}

impl Transport for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.stream.set_nonblocking(nonblocking)
    }

    fn raw_fd(&self) -> Option<i32> {
        use std::os::fd::AsRawFd;
        Some(self.stream.as_raw_fd())
    }

    fn try_clone_transport(&self) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(TcpTransport {
            stream: self.stream.try_clone()?,
        }))
    }
}

/// Shared consumption state for a [`FaultyTransport`] family: the plan
/// cursor plus the "connection dropped" latch, shared across clones so a
/// split read/write pair dies together.
#[derive(Clone)]
pub struct FaultState {
    cursor: Arc<Mutex<FaultCursor>>,
    dead: Arc<AtomicBool>,
}

impl FaultState {
    /// Fresh state over a plan cursor.
    pub fn new(cursor: FaultCursor) -> Self {
        Self {
            cursor: Arc::new(Mutex::new(cursor)),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Faults injected so far (all transports sharing this state).
    pub fn injected(&self) -> ddn_testkit::FaultCounts {
        self.lock().injected()
    }

    /// True once a scripted disconnect has fired and no reconnect has
    /// happened yet.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Re-arms the state after a reconnect: the next transport built from
    /// this state is live again (the cursor keeps its cumulative
    /// offsets).
    pub fn revive(&self) {
        self.dead.store(false, Ordering::SeqCst);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultCursor> {
        // A poisoned lock only means some thread panicked elsewhere while
        // holding it; the cursor data is plain and still usable.
        self.cursor.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A transport that injects scripted faults around an inner transport.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    state: FaultState,
}

impl FaultyTransport {
    /// Wraps `inner`, consuming faults from (shared) `state`.
    pub fn new(inner: Box<dyn Transport>, state: FaultState) -> Self {
        state.revive();
        Self { inner, state }
    }

    fn injected_error() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "injected fault")
    }
}

impl Transport for FaultyTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.state.is_dead() {
                return Ok(0); // dropped connection: EOF
            }
            let decision = self.state.lock().decide(Dir::Read, buf.len());
            match decision {
                IoDecision::Proceed { max_len } => {
                    let cap = max_len.min(buf.len()).max(usize::from(!buf.is_empty()));
                    let n = self.inner.read(&mut buf[..cap])?;
                    self.state.lock().advance(Dir::Read, n);
                    return Ok(n);
                }
                // Sleep outside the lock so the peer keeps making
                // progress during the injected stall.
                IoDecision::Delay { micros } => {
                    std::thread::sleep(Duration::from_micros(micros));
                }
                IoDecision::Disconnect => {
                    self.state.dead.store(true, Ordering::SeqCst);
                    return Ok(0);
                }
                IoDecision::Error => return Err(Self::injected_error()),
            }
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        loop {
            if self.state.is_dead() {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected disconnect",
                ));
            }
            let decision = self.state.lock().decide(Dir::Write, buf.len());
            match decision {
                IoDecision::Proceed { max_len } => {
                    let cap = max_len.min(buf.len()).max(usize::from(!buf.is_empty()));
                    let n = self.inner.write(&buf[..cap])?;
                    self.state.lock().advance(Dir::Write, n);
                    return Ok(n);
                }
                IoDecision::Delay { micros } => {
                    std::thread::sleep(Duration::from_micros(micros));
                }
                IoDecision::Disconnect => {
                    self.state.dead.store(true, Ordering::SeqCst);
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "injected disconnect",
                    ));
                }
                IoDecision::Error => return Err(Self::injected_error()),
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.inner.set_nonblocking(nonblocking)
    }

    fn raw_fd(&self) -> Option<i32> {
        // Faults are injected in the read/write calls, not at readiness
        // time, so exposing the inner fd keeps byte-offset fault plans
        // landing at the same offsets under the event loop.
        self.inner.raw_fd()
    }

    fn try_clone_transport(&self) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(FaultyTransport {
            inner: self.inner.try_clone_transport()?,
            state: self.state.clone(),
        }))
    }
}

/// Adapter giving a boxed [`Transport`] the std `Read`/`Write` traits, so
/// it slots under `BufReader` and `writeln!` unchanged.
pub struct IoStream(pub Box<dyn Transport>);

impl Read for IoStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

impl Write for IoStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddn_testkit::{FaultEvent, FaultKind, FaultPlan};
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn tcp_transport_round_trips() {
        let (a, b) = pair();
        let mut ta = TcpTransport::new(a);
        let mut peer = b;
        peer.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        let n = ta.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn partial_fault_clamps_a_write() {
        let (a, b) = pair();
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            dir: Dir::Write,
            offset: 0,
            kind: FaultKind::Partial { max_bytes: 2 },
        });
        let state = FaultState::new(plan.cursor());
        let mut t = FaultyTransport::new(Box::new(TcpTransport::new(a)), state.clone());
        let n = t.write(b"abcdef").unwrap();
        assert_eq!(n, 2, "write should be clamped to the partial cap");
        assert_eq!(state.injected().partial, 1);
        // Follow-up writes are unclamped; the peer sees every byte.
        assert_eq!(t.write(b"cdef").unwrap(), 4);
        let mut peer = b;
        let mut got = [0u8; 6];
        peer.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"abcdef");
    }

    #[test]
    fn disconnect_kills_both_halves_until_revived() {
        let (a, _b) = pair();
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            dir: Dir::Read,
            offset: 0,
            kind: FaultKind::Disconnect,
        });
        let state = FaultState::new(plan.cursor());
        let mut t = FaultyTransport::new(Box::new(TcpTransport::new(a)), state.clone());
        let mut half = t.try_clone_transport().unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(t.read(&mut buf).unwrap(), 0, "disconnect reads as EOF");
        assert!(state.is_dead());
        // The cloned write half is dead too.
        assert_eq!(
            half.write(b"x").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(state.injected().disconnect, 1);
    }

    #[test]
    fn error_fault_fails_one_call_but_not_the_connection() {
        let (a, b) = pair();
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            dir: Dir::Write,
            offset: 0,
            kind: FaultKind::Error,
        });
        let state = FaultState::new(plan.cursor());
        let mut t = FaultyTransport::new(Box::new(TcpTransport::new(a)), state);
        let e = t.write(b"hi").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
        // Retry on the same connection succeeds.
        assert_eq!(t.write(b"hi").unwrap(), 2);
        let mut peer = b;
        let mut got = [0u8; 2];
        peer.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hi");
    }

    #[test]
    fn cursor_offsets_accumulate_across_reconnects() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            dir: Dir::Write,
            offset: 6,
            kind: FaultKind::Disconnect,
        });
        let state = FaultState::new(plan.cursor());

        let (a1, b1) = pair();
        let mut t = FaultyTransport::new(Box::new(TcpTransport::new(a1)), state.clone());
        assert_eq!(t.write(b"abcd").unwrap(), 4);
        drop(b1);

        // "Reconnect": new inner stream, same state. Two more bytes reach
        // the scheduled offset (4 + 2 = 6); the next write disconnects.
        let (a2, _b2) = pair();
        let mut t = FaultyTransport::new(Box::new(TcpTransport::new(a2)), state.clone());
        assert_eq!(t.write(b"ef").unwrap(), 2);
        assert_eq!(
            t.write(b"gh").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(state.injected().disconnect, 1);
    }
}
