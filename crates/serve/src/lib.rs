//! # ddn-serve — streaming ingest + online off-policy evaluation
//!
//! The paper frames its estimators as offline passes over a logged
//! trace, but they are all per-record sums — so the same mathematics
//! runs *while records arrive*. This crate turns the workspace into a
//! service: a zero-dependency TCP server (std::net, newline-delimited
//! JSON reusing `ddn_stats::Json`) that ingests trace records into
//! per-session banks of online estimators (`ddn_estimators::online`) and
//! answers estimate/health queries at any point in the stream, with §4.3
//! coupling change-point detection running live on the reward series.
//!
//! - [`protocol`] — the wire grammar (`init` / `ingest` / `estimate` /
//!   `health` / `shutdown`) and request parsing.
//! - [`frame`] — the length-prefixed binary columnar batch frame: the
//!   high-throughput ingest encoding (contiguous little-endian columns)
//!   that decodes to the same [`Request::Ingest`] as the JSON verb.
//! - [`engine`] — sessions, estimator banks, and the online
//!   [`CouplingMonitor`]; transport-independent and directly testable.
//! - [`server`] — the readiness-driven TCP front end: one epoll event
//!   loop owning every connection, a small dispatcher pool, sharded
//!   bounded ingest queues with backpressure, graceful shutdown.
//! - [`eventloop`] — the zero-dependency epoll/eventfd layer (raw
//!   syscalls; the only module in the workspace allowed `unsafe`).
//! - [`client`] — a blocking client for `ddn replay-to` and tests, with
//!   bounded retry, deterministic backoff, and per-request timeouts.
//! - [`transport`] — the byte-stream abstraction both endpoints I/O
//!   through; chaos tests wrap it in a deterministic fault injector.
//! - [`flightrec`] — the per-shard flight recorder: a bounded ring of
//!   recent request events dumped on worker panic and served by the
//!   `stats` verb for causal post-mortems.
//! - [`wal`] — the per-shard write-ahead log: length-prefixed,
//!   checksummed frames holding the request lines a shard consumed.
//! - [`snapshot`] — periodic full-state snapshots and crash-resume:
//!   restore the latest valid snapshot, replay the WAL tail, self-heal.
//!
//! See DESIGN.md §10 for the protocol grammar, backpressure semantics
//! and the shutdown contract, §11 for the fault model and the
//! exactly-once ingest contract, §12 for the durability subsystem
//! (WAL format, snapshot cadence, recovery invariants, fsync policy),
//! and §13 for the observability plane (request ids, the `stats` verb,
//! metric naming, flight recorder, `ddn top`), and §14 for the
//! readiness-driven event loop and the binary frame byte layout.

// `unsafe` is denied everywhere except `eventloop`, which needs raw
// epoll/eventfd syscalls and carries its own file-level allow + audit.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod eventloop;
pub mod flightrec;
pub mod frame;
pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod transport;
pub mod wal;

pub use client::{ClientConfig, ClientError, ClientStats, ServeClient};
pub use engine::{CouplingMonitor, Engine, Session};
pub use flightrec::{flightrec_path, FlightEvent, FlightRecorder};
pub use frame::{BinaryBatch, FRAME_MAGIC};
pub use protocol::{InitSpec, PolicySpec, Request};
pub use server::{serve, ServeConfig, ServerHandle, ServerStats};
pub use snapshot::{read_snapshot, write_snapshot, RecoverReport, ShardDurability};
pub use transport::{FaultState, FaultyTransport, IoStream, TcpTransport, Transport};
pub use wal::{read_wal, WalFrame, WalWriter};
