//! Session state and request handling, independent of the transport.
//!
//! Each shard worker owns one [`Engine`]: a map from session id to
//! [`Session`], where a session holds a bank of online estimators (one
//! per requested protocol name), the schema/space its records must
//! conform to, and a [`CouplingMonitor`] running §4.3 change-point
//! detection over the live reward stream.

use crate::protocol::{ok_response, InitSpec, PolicySpec};
use ddn_estimators::{
    ActionEmbedding, AdaptiveWeights, OnlineAdaptiveDr, OnlineAdaptiveIps, OnlineClippedIps,
    OnlineDm, OnlineDr, OnlineEstimator, OnlineIps, OnlineMarginalizedDr, OnlineSeqDr,
    OnlineSnips, SlidingWindow,
};
use ddn_models::ConstantModel;
use ddn_policy::{LookupPolicy, Policy, UniformRandomPolicy};
use ddn_stats::changepoint::{pelt, CostModel, Penalty};
use ddn_stats::Json;
use ddn_telemetry::Collector;
use ddn_trace::{DecisionSpace, Trace, TraceRecord};
use std::collections::{HashMap, VecDeque};

/// How many of the most recent rewards the coupling monitor keeps. The
/// server must stay O(1) per session in the stream length, so change
/// points are detected over a bounded trailing window rather than the
/// full history.
pub const COUPLING_WINDOW: usize = 2048;

/// Minimum segment length for the online change-point scan — matches the
/// offline `CouplingDetector` used by the health suite.
pub const COUPLING_MIN_SEGMENT: usize = 20;

/// Online §4.3 coupling detection: keeps a bounded trailing window of
/// observed rewards and, on demand, runs PELT (normal-mean cost, BIC
/// penalty) over it to flag decision–reward coupling regimes live.
pub struct CouplingMonitor {
    window: VecDeque<f64>,
    capacity: usize,
    min_segment: usize,
    seen: u64,
}

impl CouplingMonitor {
    /// A monitor keeping the most recent `capacity` rewards.
    ///
    /// # Panics
    /// Panics if `capacity` or `min_segment` is zero.
    pub fn new(capacity: usize, min_segment: usize) -> Self {
        assert!(capacity > 0, "coupling window capacity must be positive");
        assert!(min_segment > 0, "min_segment must be positive");
        Self {
            window: VecDeque::with_capacity(capacity),
            capacity,
            min_segment,
            seen: 0,
        }
    }

    /// Records one observed reward, evicting the oldest when full.
    pub fn push(&mut self, reward: f64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(reward);
        self.seen += 1;
    }

    /// Change points (window-relative indices) over the trailing window.
    /// Empty until the window holds at least two minimum segments.
    pub fn changepoints(&self) -> Vec<usize> {
        if self.window.len() < 2 * self.min_segment {
            return Vec::new();
        }
        let xs: Vec<f64> = self.window.iter().copied().collect();
        pelt(&xs, CostModel::NormalMean, Penalty::Bic, self.min_segment)
    }

    /// Total rewards ever pushed (including evicted ones).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Serializes the monitor for a snapshot. Rewards are stored as raw
    /// f64 bit patterns (JSON text would lose `-0.0`/non-finite values);
    /// capacity and minimum segment are compile-time constants the
    /// restoring monitor already carries.
    pub fn state_save(&self) -> Json {
        Json::object(vec![
            (
                "window",
                Json::Array(
                    self.window
                        .iter()
                        .map(|&r| Json::Int(r.to_bits() as i64))
                        .collect(),
                ),
            ),
            ("seen", Json::Int(self.seen as i64)),
        ])
    }

    /// Restores state saved by [`CouplingMonitor::state_save`]. Atomic:
    /// on error the monitor keeps its prior state.
    pub fn state_load(&mut self, state: &Json) -> Result<(), String> {
        let raw = state
            .get("window")
            .and_then(Json::as_array)
            .ok_or("coupling state needs a \"window\" array")?;
        if raw.len() > self.capacity {
            return Err(format!(
                "coupling window of {} exceeds capacity {}",
                raw.len(),
                self.capacity
            ));
        }
        let mut window = VecDeque::with_capacity(self.capacity);
        for x in raw {
            let bits = x
                .as_i64()
                .ok_or("coupling window entries must be bit-pattern integers")?;
            window.push_back(f64::from_bits(bits as u64));
        }
        let seen = state
            .get("seen")
            .and_then(Json::as_u64)
            .ok_or("coupling state needs \"seen\"")?;
        if (seen as usize) < window.len() {
            return Err(format!(
                "coupling \"seen\" {seen} below window length {}",
                window.len()
            ));
        }
        self.window = window;
        self.seen = seen;
        Ok(())
    }

    /// The report as a JSON object for the `estimate` response.
    pub fn to_json(&self) -> Json {
        let cps = self.changepoints();
        Json::object(vec![
            ("coupled", Json::Bool(!cps.is_empty())),
            ("segments", Json::Int(cps.len() as i64 + 1)),
            (
                "changepoints",
                Json::Array(cps.into_iter().map(|c| Json::Int(c as i64)).collect()),
            ),
            ("window", Json::Int(self.window.len() as i64)),
            ("seen", Json::Int(self.seen as i64)),
        ])
    }
}

/// One estimator slot: either a cumulative online estimator or a
/// sliding-window wrapper around one.
enum BankEntry {
    Plain(Box<dyn OnlineEstimator + Send>),
    Windowed(SlidingWindow<Box<dyn OnlineEstimator + Send>>),
}

impl BankEntry {
    fn push(&mut self, rec: &TraceRecord) -> Result<(), ddn_estimators::EstimatorError> {
        match self {
            BankEntry::Plain(e) => e.push(rec),
            BankEntry::Windowed(w) => {
                w.push(rec);
                Ok(())
            }
        }
    }

    fn estimate_json(&mut self) -> Json {
        let est = match self {
            BankEntry::Plain(e) => e.estimate(),
            BankEntry::Windowed(w) => w.estimate(),
        };
        match est {
            Ok(e) => Json::object(vec![
                ("value", Json::Num(e.value)),
                ("n", Json::Int(e.n as i64)),
                ("ess", Json::Num(e.diagnostics.effective_sample_size)),
                ("max_weight", Json::Num(e.diagnostics.max_weight)),
            ]),
            Err(e) => Json::object(vec![("error", Json::str(e.to_string()))]),
        }
    }

    fn health_metrics(&self) -> Vec<(&'static str, f64)> {
        match self {
            BankEntry::Plain(e) => e.health_metrics(),
            BankEntry::Windowed(w) => vec![
                ("n", w.len() as f64),
                ("evicted", w.evicted() as f64),
            ],
        }
    }

    fn state_save(&self) -> Json {
        match self {
            BankEntry::Plain(e) => e.state_save(),
            BankEntry::Windowed(w) => w.state_save(),
        }
    }

    fn state_load(&mut self, state: &Json) -> Result<(), ddn_estimators::EstimatorError> {
        match self {
            BankEntry::Plain(e) => e.state_load(state),
            BankEntry::Windowed(w) => w.state_load(state),
        }
    }
}

fn build_policy(
    spec: &PolicySpec,
    space: &DecisionSpace,
) -> Result<Box<dyn Policy + Send + Sync>, String> {
    match spec {
        PolicySpec::Uniform => Ok(Box::new(UniformRandomPolicy::new(space.clone()))),
        PolicySpec::ConstantIndex(i) => {
            if *i >= space.len() {
                return Err(format!(
                    "policy decision index {i} out of range for space of {}",
                    space.len()
                ));
            }
            Ok(Box::new(LookupPolicy::constant(space.clone(), *i)))
        }
        PolicySpec::ConstantName(name) => {
            let i = space.position(name).ok_or_else(|| {
                format!("policy decision {name:?} not in space {:?}", space.names())
            })?;
            Ok(Box::new(LookupPolicy::constant(space.clone(), i)))
        }
    }
}

/// One client-visible evaluation session.
pub struct Session {
    /// The init request that created this session, re-serialized as a
    /// parseable request line — the snapshot encoding of its
    /// configuration (see [`Session::from_state`]).
    init_json: Json,
    schema: ddn_trace::ContextSchema,
    space: DecisionSpace,
    /// `(protocol_name, estimator)` in init-request order.
    bank: Vec<(String, BankEntry)>,
    needs_propensity: bool,
    coupling: CouplingMonitor,
    last_ts: f64,
    accepted: usize,
    /// Next expected batch sequence number for sequenced ingests.
    next_seq: u64,
    /// The acknowledgement sent for the most recent sequenced batch, kept
    /// so a retried (replayed) batch can be re-acknowledged without
    /// re-ingesting. A window of one is enough because the client keeps
    /// at most one ingest outstanding per session (see DESIGN.md §11).
    last_ack: Option<(u64, Json)>,
}

impl Session {
    /// Builds the session's estimator bank from an init spec.
    pub fn new(spec: InitSpec) -> Result<Self, String> {
        let init_json = spec.to_json();
        let mut bank = Vec::with_capacity(spec.estimators.len());
        let mut needs_propensity = false;
        for name in &spec.estimators {
            let policy = build_policy(&spec.policy, &spec.space)?;
            let inner: Box<dyn OnlineEstimator + Send> = match name.as_str() {
                "dm" => Box::new(
                    OnlineDm::new(
                        spec.space.clone(),
                        policy,
                        Box::new(ConstantModel::new(spec.model_value)),
                    )
                    .map_err(|e| e.to_string())?,
                ),
                "ips" => {
                    needs_propensity = true;
                    Box::new(
                        OnlineIps::new(spec.space.clone(), policy).map_err(|e| e.to_string())?,
                    )
                }
                "snips" => {
                    needs_propensity = true;
                    Box::new(
                        OnlineSnips::new(spec.space.clone(), policy).map_err(|e| e.to_string())?,
                    )
                }
                "clipped" => {
                    needs_propensity = true;
                    Box::new(
                        OnlineClippedIps::new(spec.space.clone(), policy, spec.max_weight)
                            .map_err(|e| e.to_string())?,
                    )
                }
                "dr" => {
                    needs_propensity = true;
                    Box::new(
                        OnlineDr::new(
                            spec.space.clone(),
                            policy,
                            Box::new(ConstantModel::new(spec.model_value)),
                        )
                        .map_err(|e| e.to_string())?,
                    )
                }
                "adaptive" => {
                    needs_propensity = true;
                    Box::new(
                        OnlineAdaptiveIps::new(
                            spec.space.clone(),
                            policy,
                            AdaptiveWeights::Stabilized,
                        )
                        .map_err(|e| e.to_string())?,
                    )
                }
                "adaptive_dr" => {
                    needs_propensity = true;
                    Box::new(
                        OnlineAdaptiveDr::new(
                            spec.space.clone(),
                            policy,
                            Box::new(ConstantModel::new(spec.model_value)),
                            AdaptiveWeights::Stabilized,
                        )
                        .map_err(|e| e.to_string())?,
                    )
                }
                // Marginalized DR never reads per-record propensities —
                // its denominators come from the init-declared logging
                // policy's marginals — so it does not flip the
                // propensity requirement.
                "mdr" => Box::new(
                    OnlineMarginalizedDr::new(
                        spec.space.clone(),
                        policy,
                        build_policy(&spec.logging, &spec.space)?,
                        Box::new(ConstantModel::new(spec.model_value)),
                        match &spec.embedding {
                            Some(groups) => ActionEmbedding::from_groups(groups.clone()),
                            None => ActionEmbedding::identity(spec.space.len()),
                        },
                    )
                    .map_err(|e| e.to_string())?,
                ),
                "seqdr" => {
                    needs_propensity = true;
                    Box::new(
                        OnlineSeqDr::new(
                            spec.space.clone(),
                            policy,
                            Box::new(ConstantModel::new(spec.model_value)),
                            spec.horizon,
                        )
                        .map_err(|e| e.to_string())?,
                    )
                }
                other => {
                    return Err(format!(
                        "unknown estimator {other:?} (expected ips|snips|clipped|dm|dr|adaptive|adaptive_dr|mdr|seqdr)"
                    ))
                }
            };
            let entry = match spec.window {
                Some(cap) => BankEntry::Windowed(SlidingWindow::new(inner, cap)),
                None => BankEntry::Plain(inner),
            };
            bank.push((name.clone(), entry));
        }
        Ok(Session {
            init_json,
            schema: spec.schema,
            space: spec.space,
            bank,
            needs_propensity,
            coupling: CouplingMonitor::new(COUPLING_WINDOW, COUPLING_MIN_SEGMENT),
            last_ts: f64::NEG_INFINITY,
            accepted: 0,
            next_seq: 0,
            last_ack: None,
        })
    }

    /// Validates and ingests a batch. On error, records before the
    /// offending one stay ingested and the error names the batch
    /// position; the session remains usable.
    pub fn ingest(&mut self, records: &[TraceRecord]) -> Result<usize, String> {
        for (i, rec) in records.iter().enumerate() {
            let k = self.accepted;
            Trace::validate_record(k, rec, &self.schema, &self.space, &mut self.last_ts)
                .map_err(|e| format!("batch record {i}: {e}"))?;
            if self.needs_propensity && rec.propensity.is_none() {
                return Err(format!(
                    "batch record {i}: logging propensity required by the session's estimators"
                ));
            }
            for (name, entry) in &mut self.bank {
                entry
                    .push(rec)
                    .map_err(|e| format!("batch record {i}: {name}: {e}"))?;
            }
            self.coupling.push(rec.reward);
            self.accepted += 1;
        }
        Ok(records.len())
    }

    /// Validates-then-applies a batch atomically: either every record is
    /// ingested or none is. This is the sequenced-ingest semantics — an
    /// acknowledgement must mean "the whole batch counted once", or a
    /// replay after a partial failure would double-ingest the prefix.
    pub fn ingest_atomic(&mut self, records: &[TraceRecord]) -> Result<usize, String> {
        // Dry-run validation against a scratch timestamp so a reject
        // leaves the session untouched.
        let mut ts = self.last_ts;
        for (i, rec) in records.iter().enumerate() {
            Trace::validate_record(self.accepted + i, rec, &self.schema, &self.space, &mut ts)
                .map_err(|e| format!("batch record {i}: {e}"))?;
            if self.needs_propensity && rec.propensity.is_none() {
                return Err(format!(
                    "batch record {i}: logging propensity required by the session's estimators"
                ));
            }
        }
        // Apply. The checks above cover every push failure mode, so this
        // phase cannot reject.
        for (i, rec) in records.iter().enumerate() {
            for (name, entry) in &mut self.bank {
                entry
                    .push(rec)
                    .map_err(|e| format!("batch record {i}: {name}: {e}"))?;
            }
            self.coupling.push(rec.reward);
            self.accepted += 1;
        }
        self.last_ts = ts;
        Ok(records.len())
    }

    /// Records accepted so far.
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Serializes the full session for a snapshot: the init request that
    /// configures it, every estimator's sufficient statistics, the
    /// coupling monitor, and the exactly-once dedup state (`next_seq`
    /// plus the stored acknowledgement). Timestamps are raw f64 bit
    /// patterns — `last_ts` starts at `NEG_INFINITY`, which JSON text
    /// cannot carry.
    pub fn state_save(&self) -> Json {
        let last_ack = match &self.last_ack {
            None => Json::Null,
            Some((seq, resp)) => Json::object(vec![
                ("seq", Json::Int(*seq as i64)),
                ("resp", resp.clone()),
            ]),
        };
        Json::object(vec![
            ("init", self.init_json.clone()),
            (
                "estimators",
                Json::Array(self.bank.iter().map(|(_, e)| e.state_save()).collect()),
            ),
            ("coupling", self.coupling.state_save()),
            ("last_ts", Json::Int(self.last_ts.to_bits() as i64)),
            ("accepted", Json::Int(self.accepted as i64)),
            ("next_seq", Json::Int(self.next_seq as i64)),
            ("last_ack", last_ack),
        ])
    }

    /// Rebuilds a session from [`Session::state_save`] output: re-parses
    /// the stored init request through [`Request::parse`] (the same code
    /// path a live init takes), then loads estimator, coupling, and
    /// dedup state on top. Any failure discards the partial session.
    ///
    /// [`Request::parse`]: crate::protocol::Request::parse
    pub fn from_state(state: &Json) -> Result<Session, String> {
        let init = state.get("init").ok_or("session state needs \"init\"")?;
        let spec = match crate::protocol::Request::parse(&init.to_string()) {
            Ok(crate::protocol::Request::Init(spec)) => spec,
            Ok(_) => return Err("session state \"init\" is not an init request".into()),
            Err(e) => return Err(format!("session state init: {e}")),
        };
        let mut s = Session::new(spec)?;
        let states = state
            .get("estimators")
            .and_then(Json::as_array)
            .ok_or("session state needs \"estimators\"")?;
        if states.len() != s.bank.len() {
            return Err(format!(
                "session state carries {} estimator states for a bank of {}",
                states.len(),
                s.bank.len()
            ));
        }
        for ((name, entry), st) in s.bank.iter_mut().zip(states) {
            entry.state_load(st).map_err(|e| format!("{name}: {e}"))?;
        }
        s.coupling
            .state_load(state.get("coupling").ok_or("session state needs \"coupling\"")?)?;
        let ts_bits = state
            .get("last_ts")
            .and_then(Json::as_i64)
            .ok_or("session state needs \"last_ts\"")?;
        s.last_ts = f64::from_bits(ts_bits as u64);
        s.accepted = state
            .get("accepted")
            .and_then(Json::as_u64)
            .ok_or("session state needs \"accepted\"")? as usize;
        s.next_seq = state
            .get("next_seq")
            .and_then(Json::as_u64)
            .ok_or("session state needs \"next_seq\"")?;
        s.last_ack = match state.get("last_ack") {
            None | Some(Json::Null) => None,
            Some(a) => {
                let seq = a
                    .get("seq")
                    .and_then(Json::as_u64)
                    .ok_or("last_ack needs \"seq\"")?;
                let resp = a.get("resp").ok_or("last_ack needs \"resp\"")?.clone();
                Some((seq, resp))
            }
        };
        Ok(s)
    }

    /// The `estimate` response body: one object per estimator (keyed by
    /// its protocol name, request order preserved) plus the coupling
    /// report.
    pub fn estimate_json(&mut self) -> Json {
        let coupling = self.coupling.to_json();
        let estimates = Json::Object(
            self.bank
                .iter_mut()
                .map(|(name, entry)| (name.clone(), entry.estimate_json()))
                .collect(),
        );
        ok_response(vec![
            ("n", Json::Int(self.accepted as i64)),
            ("estimates", estimates),
            ("coupling", coupling),
        ])
    }
}

/// The per-shard engine: session routing plus health reporting.
#[derive(Default)]
pub struct Engine {
    sessions: HashMap<String, Session>,
}

impl Engine {
    /// An engine with no sessions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates (or replaces) a session.
    pub fn handle_init(&mut self, spec: InitSpec) -> Json {
        let id = spec.session.clone();
        match Session::new(spec) {
            Ok(s) => {
                self.sessions.insert(id.clone(), s);
                ok_response(vec![("session", Json::str(id))])
            }
            Err(e) => crate::protocol::error_response(&e),
        }
    }

    /// Ingests a batch into a session. The response carries `accepted`
    /// (from this batch) and `total` so the caller can account
    /// throughput.
    ///
    /// With `seq` set, the batch is sequenced: applied atomically and
    /// exactly once. The expected sequence advances the session; a replay
    /// of the last-acknowledged sequence returns the stored
    /// acknowledgement tagged `"duplicate":true` without touching state;
    /// anything else (a gap, or a stale sequence an older retry might
    /// still carry) is an error. Without `seq`, legacy prefix semantics
    /// apply.
    pub fn handle_ingest(
        &mut self,
        session: &str,
        records: &[TraceRecord],
        seq: Option<u64>,
    ) -> Json {
        let Some(s) = self.sessions.get_mut(session) else {
            return crate::protocol::error_response(&format!("unknown session {session:?}"));
        };
        let Some(seq) = seq else {
            return match s.ingest(records) {
                Ok(n) => ok_response(vec![
                    ("accepted", Json::Int(n as i64)),
                    ("total", Json::Int(s.accepted() as i64)),
                ]),
                Err(e) => crate::protocol::error_response(&e),
            };
        };
        if seq == s.next_seq {
            let resp = match s.ingest_atomic(records) {
                Ok(n) => ok_response(vec![
                    ("accepted", Json::Int(n as i64)),
                    ("total", Json::Int(s.accepted() as i64)),
                    ("seq", Json::Int(seq as i64)),
                ]),
                Err(e) => crate::protocol::error_response(&e),
            };
            // A rejected batch is acknowledged (negatively) too: the
            // client may never see the response and will retry the same
            // sequence; it must get the same verdict, not a re-ingest.
            s.next_seq += 1;
            s.last_ack = Some((seq, resp.clone()));
            resp
        } else if s.next_seq > 0 && seq == s.next_seq - 1 {
            match &s.last_ack {
                Some((acked, resp)) if *acked == seq => {
                    let mut fields = match resp.clone() {
                        Json::Object(fields) => fields,
                        other => return other,
                    };
                    fields.push(("duplicate".to_string(), Json::Bool(true)));
                    Json::Object(fields)
                }
                _ => crate::protocol::error_response(&format!(
                    "seq {seq} already consumed but its acknowledgement is gone"
                )),
            }
        } else {
            crate::protocol::error_response(&format!(
                "seq {seq} out of order (expected {})",
                s.next_seq
            ))
        }
    }

    /// The current estimates for a session.
    pub fn handle_estimate(&mut self, session: &str) -> Json {
        match self.sessions.get_mut(session) {
            None => crate::protocol::error_response(&format!("unknown session {session:?}")),
            Some(s) => s.estimate_json(),
        }
    }

    /// Estimator health for every session on this shard, as a telemetry
    /// collector (sources are `serve/<session>/<estimator>`).
    pub fn collector(&self) -> Collector {
        let mut c = Collector::default();
        for (id, session) in &self.sessions {
            for (name, entry) in &session.bank {
                c.health
                    .push((format!("serve/{id}/{name}"), entry.health_metrics()));
            }
        }
        c
    }

    /// Number of live sessions.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Every session serialized for a snapshot, keyed by session id and
    /// sorted so identical state always produces identical bytes.
    pub fn state_save(&self) -> Json {
        let mut ids: Vec<&String> = self.sessions.keys().collect();
        ids.sort();
        Json::Object(
            ids.into_iter()
                .map(|id| (id.clone(), self.sessions[id].state_save()))
                .collect(),
        )
    }

    /// Restores sessions saved by [`Engine::state_save`] into this
    /// engine. Atomic: every session must parse before any is installed,
    /// so a corrupt snapshot cannot leave a half-restored engine.
    /// Returns how many sessions were restored.
    pub fn restore_sessions(&mut self, state: &Json) -> Result<usize, String> {
        let obj = state
            .as_object()
            .ok_or("engine state must be an object of sessions")?;
        let mut restored = Vec::with_capacity(obj.len());
        for (id, s) in obj {
            let sess = Session::from_state(s).map_err(|e| format!("session {id:?}: {e}"))?;
            restored.push((id.clone(), sess));
        }
        let n = restored.len();
        for (id, sess) in restored {
            self.sessions.insert(id, sess);
        }
        Ok(n)
    }

    /// Drops a session (used by the server to quarantine a session whose
    /// worker panicked mid-request: its state may be half-applied, so it
    /// is destroyed rather than trusted).
    pub fn remove_session(&mut self, session: &str) -> bool {
        self.sessions.remove(session).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use ddn_estimators::Estimator;
    use ddn_stats::rng::{Rng, Xoshiro256};
    use ddn_trace::{Context, ContextSchema, Decision};

    fn schema() -> ContextSchema {
        ContextSchema::builder().categorical("g", 2).build()
    }

    fn space() -> DecisionSpace {
        DecisionSpace::of(&["a", "b"])
    }

    fn init_line(extra: &str) -> String {
        format!(
            r#"{{"verb":"init","session":"s","schema":{},"space":{}{extra}}}"#,
            schema().to_json().to_string(),
            space().to_json().to_string(),
        )
    }

    fn init_spec(extra: &str) -> InitSpec {
        match Request::parse(&init_line(extra)).unwrap() {
            Request::Init(spec) => spec,
            _ => unreachable!(),
        }
    }

    fn records(n: usize, seed: u64) -> Vec<TraceRecord> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..n)
            .map(|_| {
                let g = rng.index(2) as u32;
                let c = Context::build(&schema()).set_cat("g", g).finish();
                let d = rng.index(2);
                let p = if d == 0 { 0.75 } else { 0.25 };
                let r = 2.0 + g as f64 + 3.0 * d as f64;
                TraceRecord::new(c, Decision::from_index(d), r).with_propensity(p)
            })
            .collect()
    }

    #[test]
    fn engine_round_trip_matches_offline_ips() {
        let mut engine = Engine::new();
        let resp = engine.handle_init(init_spec(
            r#","estimators":["ips"],"policy":{"kind":"constant","decision":"b"}"#,
        ));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));

        let recs = records(200, 42);
        let resp = engine.handle_ingest("s", &recs, None);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        assert_eq!(resp.get("total").and_then(Json::as_i64), Some(200));

        let est = engine.handle_estimate("s");
        let online = est
            .get("estimates")
            .and_then(|e| e.get("ips"))
            .and_then(|e| e.get("value"))
            .and_then(Json::as_f64)
            .unwrap();

        let trace = Trace::from_records(schema(), space(), recs).unwrap();
        let policy = LookupPolicy::constant(space(), 1);
        let offline = ddn_estimators::Ips::new()
            .estimate(&trace, &policy)
            .unwrap();
        assert_eq!(online.to_bits(), offline.value.to_bits());
    }

    #[test]
    fn menu_estimators_round_trip_match_offline() {
        use ddn_estimators::{AdaptiveDr, AdaptiveIps, MarginalizedDr, SeqDr};
        use ddn_policy::UniformRandomPolicy;

        let mut engine = Engine::new();
        let resp = engine.handle_init(init_spec(concat!(
            r#","estimators":["adaptive","adaptive_dr","mdr","seqdr"]"#,
            r#","policy":{"kind":"constant","decision":"b"}"#,
            r#","model_value":2.0,"horizon":4"#,
            r#","embedding":[0,0],"logging":{"kind":"uniform"}"#,
        )));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");

        let recs = records(200, 7);
        let resp = engine.handle_ingest("s", &recs, None);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");

        let est = engine.handle_estimate("s");
        let online = |name: &str| {
            est.get("estimates")
                .and_then(|e| e.get(name))
                .and_then(|e| e.get("value"))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{name} missing from {est:?}"))
        };

        let trace = Trace::from_records(schema(), space(), recs).unwrap();
        let policy = LookupPolicy::constant(space(), 1);
        let model = ConstantModel::new(2.0);
        let offline_adaptive = AdaptiveIps::new(AdaptiveWeights::Stabilized)
            .estimate(&trace, &policy)
            .unwrap()
            .value;
        let offline_adaptive_dr = AdaptiveDr::new(model.clone(), AdaptiveWeights::Stabilized)
            .estimate(&trace, &policy)
            .unwrap()
            .value;
        let offline_mdr = MarginalizedDr::new(
            model.clone(),
            ActionEmbedding::from_groups(vec![0, 0]),
            Box::new(UniformRandomPolicy::new(space())),
        )
        .estimate(&trace, &policy)
        .unwrap()
        .value;
        let offline_seqdr = SeqDr::new(model, 4).estimate(&trace, &policy).unwrap().value;

        assert_eq!(online("adaptive").to_bits(), offline_adaptive.to_bits());
        assert_eq!(
            online("adaptive_dr").to_bits(),
            offline_adaptive_dr.to_bits()
        );
        assert_eq!(online("mdr").to_bits(), offline_mdr.to_bits());
        assert_eq!(online("seqdr").to_bits(), offline_seqdr.to_bits());

        // mdr alone must not demand propensities: it prices records off
        // the declared logging policy, never the recorded propensity.
        let mut engine = Engine::new();
        let resp = engine.handle_init(init_spec(
            r#","estimators":["mdr"],"policy":{"kind":"constant","decision":"b"}"#,
        ));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        let mut bare = records(10, 8);
        for r in &mut bare {
            r.propensity = None;
        }
        let resp = engine.handle_ingest("s", &bare, None);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    }

    #[test]
    fn ingest_errors_isolate_the_bad_record() {
        let mut engine = Engine::new();
        engine.handle_init(init_spec(r#","estimators":["ips"]"#));
        let mut recs = records(5, 1);
        recs[3].propensity = None;
        let resp = engine.handle_ingest("s", &recs, None);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        let msg = resp.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("batch record 3"), "{msg}");
        // The three good records before it are in; the session still works.
        let est = engine.handle_estimate("s");
        assert_eq!(est.get("n").and_then(Json::as_i64), Some(3));
    }

    #[test]
    fn sequenced_replay_is_deduplicated() {
        let mut engine = Engine::new();
        engine.handle_init(init_spec(r#","estimators":["ips"]"#));
        let recs = records(10, 2);
        let first = engine.handle_ingest("s", &recs[..5], Some(0));
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{first:?}");
        assert_eq!(first.get("seq").and_then(Json::as_i64), Some(0));
        assert_eq!(first.get("duplicate"), None);

        // Retrying the acknowledged batch returns the stored ack, tagged,
        // without re-ingesting.
        let replay = engine.handle_ingest("s", &recs[..5], Some(0));
        assert_eq!(replay.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(replay.get("duplicate"), Some(&Json::Bool(true)));
        assert_eq!(replay.get("total").and_then(Json::as_i64), Some(5));
        let est = engine.handle_estimate("s");
        assert_eq!(est.get("n").and_then(Json::as_i64), Some(5));

        // The next sequence applies; gaps and stale sequences error.
        let next = engine.handle_ingest("s", &recs[5..], Some(1));
        assert_eq!(next.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(next.get("total").and_then(Json::as_i64), Some(10));
        let gap = engine.handle_ingest("s", &recs[5..], Some(5));
        assert_eq!(gap.get("ok"), Some(&Json::Bool(false)));
        let stale = engine.handle_ingest("s", &recs[..5], Some(0));
        assert_eq!(stale.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            engine
                .handle_estimate("s")
                .get("n")
                .and_then(Json::as_i64),
            Some(10),
            "errors must not mutate the session"
        );
    }

    #[test]
    fn sequenced_ingest_is_atomic() {
        let mut engine = Engine::new();
        engine.handle_init(init_spec(r#","estimators":["ips"]"#));
        let mut recs = records(5, 1);
        recs[3].propensity = None;
        let resp = engine.handle_ingest("s", &recs, Some(0));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        // Unlike the legacy prefix semantics, nothing lands: an ack (even
        // a negative one) must describe the whole batch.
        let est = engine.handle_estimate("s");
        assert_eq!(est.get("n").and_then(Json::as_i64), Some(0));
        // The rejection is itself replayable with the same verdict.
        let replay = engine.handle_ingest("s", &recs, Some(0));
        assert_eq!(replay.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(replay.get("duplicate"), Some(&Json::Bool(true)));
        // The sequence was consumed; the fixed batch goes in as seq 1.
        recs[3].propensity = Some(0.5);
        let ok = engine.handle_ingest("s", &recs, Some(1));
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)), "{ok:?}");
        assert_eq!(ok.get("total").and_then(Json::as_i64), Some(5));
    }

    #[test]
    fn remove_session_quarantines_state() {
        let mut engine = Engine::new();
        engine.handle_init(init_spec(r#","estimators":["ips"]"#));
        assert!(engine.remove_session("s"));
        assert!(!engine.remove_session("s"));
        let resp = engine.handle_estimate("s");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn unknown_sessions_and_estimators_error_cleanly() {
        let mut engine = Engine::new();
        let resp = engine.handle_estimate("ghost");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        let resp = engine.handle_init(init_spec(r#","estimators":["magic"]"#));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(engine.sessions(), 0);
    }

    #[test]
    fn coupling_monitor_flags_a_regime_change() {
        let mut m = CouplingMonitor::new(COUPLING_WINDOW, COUPLING_MIN_SEGMENT);
        for _ in 0..100 {
            m.push(1.0);
        }
        for _ in 0..100 {
            m.push(5.0);
        }
        let cps = m.changepoints();
        assert_eq!(cps.len(), 1, "{cps:?}");
        assert!((90..=110).contains(&cps[0]), "{cps:?}");
        let j = m.to_json();
        assert_eq!(j.get("coupled"), Some(&Json::Bool(true)));
        assert_eq!(j.get("segments").and_then(Json::as_i64), Some(2));
    }

    #[test]
    fn coupling_monitor_window_is_bounded() {
        let mut m = CouplingMonitor::new(64, 8);
        for i in 0..1000 {
            m.push(i as f64);
        }
        assert_eq!(m.seen(), 1000);
        assert_eq!(
            m.to_json().get("window").and_then(Json::as_i64),
            Some(64)
        );
    }

    #[test]
    fn windowed_sessions_estimate_over_the_tail() {
        let mut engine = Engine::new();
        engine.handle_init(init_spec(
            r#","estimators":["ips"],"policy":{"kind":"constant","decision":"b"},"window":50"#,
        ));
        let recs = records(200, 9);
        engine.handle_ingest("s", &recs, None);
        let est = engine.handle_estimate("s");
        let online = est
            .get("estimates")
            .and_then(|e| e.get("ips"))
            .and_then(|e| e.get("value"))
            .and_then(Json::as_f64)
            .unwrap();
        let tail = Trace::from_records(schema(), space(), recs[150..].to_vec()).unwrap();
        let policy = LookupPolicy::constant(space(), 1);
        let offline = ddn_estimators::Ips::new().estimate(&tail, &policy).unwrap();
        assert_eq!(online.to_bits(), offline.value.to_bits());
    }

    #[test]
    fn collector_reports_per_session_estimator_health() {
        let mut engine = Engine::new();
        engine.handle_init(init_spec(r#","estimators":["ips","dm"]"#));
        engine.handle_ingest("s", &records(20, 3), None);
        let c = engine.collector();
        let sources: Vec<&str> = c.health.iter().map(|(s, _)| s.as_str()).collect();
        assert!(sources.contains(&"serve/s/ips"), "{sources:?}");
        assert!(sources.contains(&"serve/s/dm"), "{sources:?}");
        let (_, metrics) = c.health.iter().find(|(s, _)| s == "serve/s/ips").unwrap();
        assert!(metrics.iter().any(|(k, v)| *k == "n" && *v == 20.0));
        assert!(metrics.iter().any(|(k, _)| *k == "ess"));
    }
}
