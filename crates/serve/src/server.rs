//! The TCP transport: one readiness-driven event loop, a small
//! dispatcher pool, and the sharded worker pool.
//!
//! ## Threading model (DESIGN.md §14)
//!
//! ```text
//! event loop ──(complete requests)──▶ dispatchers (fixed pool)
//!   │  epoll over listener,              │  parse JSON line or decode
//!   │  every connection, and             │  binary frame → Request
//!   │  a completion waker                │  hash(session) → shard
//!   ▼                                    ▼
//! accept / read / frame          bounded sync_channel (backpressure)
//!   ▲                                    │
//!   │                                    ▼
//!   └──(responses via waker)──── shard workers (own the sessions)
//! ```
//!
//! The event loop owns every socket: it accepts, reads, splits the byte
//! stream into requests (newline-delimited JSON or length-prefixed
//! binary frames), and writes responses — all nonblocking, so one
//! thread holds ~100k idle connections at a few hundred bytes each
//! instead of a stack per connection. Complete requests are handed to a
//! fixed pool of dispatcher threads ([`ServeConfig::dispatchers`]) that
//! do the parsing/decoding and the shard round-trip, then queue the
//! response bytes back to the loop through an eventfd waker.
//!
//! Each connection is stop-and-wait: one request in flight at a time,
//! responses written in request order. Pipelined bytes wait in the
//! connection's input buffer. While a request is in flight the socket
//! is deregistered from epoll entirely (a mere zero interest mask would
//! still report `EPOLLHUP` and spin a level-triggered loop).
//!
//! Each session lives on exactly one shard (chosen by hashing its id), so
//! session state needs no synchronization and requests for one session
//! are processed in arrival order — an `estimate` sent after an `ingest`
//! on the same connection always sees the ingested records.
//!
//! All socket I/O goes through the [`Transport`] abstraction; chaos tests
//! install a [`ServeConfig::wrap`] hook to interpose a deterministic
//! fault injector between the protocol layer and the kernel.
//!
//! ## Backpressure
//!
//! Ingest queues are bounded ([`ServeConfig::queue_capacity`] messages
//! per shard). A dispatcher first tries a non-blocking send; when the
//! shard's queue is full it counts a `serve.backpressure.stalls` event
//! and falls back to a blocking send, which stalls that dispatcher (and,
//! through stop-and-wait, the client that sent the request) without
//! affecting connections served by the other dispatchers.
//!
//! ## Fault isolation
//!
//! A connection that sends junk bytes, a torn line or frame, or an
//! oversized line gets an error response (or is dropped at EOF) without
//! affecting other connections; such events count
//! `serve.fault.conn_errors`. A shard worker that panics mid-request is
//! caught ([`std::panic::catch_unwind`] around each message), the
//! session whose request panicked is quarantined (its state may be
//! half-applied), and the worker keeps serving its other sessions — the
//! panic costs one session, not the server. Quarantined sessions answer
//! every request with a `degraded` error (re-`init` lifts the
//! quarantine) and show up in `health` under `serve/<session>/degraded`.
//!
//! ## Shutdown contract
//!
//! A `shutdown` verb (the SIGTERM-equivalent for this zero-dependency
//! server) or [`ServerHandle::shutdown`] sets a flag and wakes the
//! event loop with a loopback connection. The loop stops accepting,
//! closes idle connections, flushes in-flight responses, then exits;
//! dropping its work channel stops the dispatchers, and dropping their
//! shard senders stops the workers. [`ServerHandle::shutdown`] joins
//! every thread — loop, dispatchers, and workers — so when it returns
//! the process holds no server state and no thread or fd has leaked.

use crate::engine::Engine;
use crate::eventloop::{Epoll, Event, Waker, EPOLLIN, EPOLLOUT};
use crate::flightrec::{flightrec_path, FlightRecorder};
use crate::frame::{self, FRAME_MAGIC, FRAME_PREFIX_BYTES};
use crate::protocol::{
    attach_id, error_response, ingest_request_json, ok_response, request_id, InitSpec, Request,
};
use crate::snapshot::{check_meta, RecoverReport, ShardDurability};
use crate::transport::{TcpTransport, Transport};
use crate::wal::MAX_FRAME_BYTES;
use ddn_stats::Json;
use ddn_telemetry::{Collector, Counter, Gauge, Histogram, Registry, TelemetrySnapshot};
use ddn_trace::TraceRecord;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hook type for [`ServeConfig::wrap`]: interposes on every accepted
/// connection's transport.
pub type TransportWrap = Arc<dyn Fn(Box<dyn Transport>) -> Box<dyn Transport> + Send + Sync>;

/// Server configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of shard workers (each owns a disjoint set of sessions).
    pub shards: usize,
    /// Bounded queue capacity per shard, in messages.
    pub queue_capacity: usize,
    /// Hard cap on one request line, in bytes; longer lines get an error
    /// response and are discarded without buffering (anti-DoS). Binary
    /// frames are capped separately at the WAL frame limit (64 MiB).
    pub max_line_bytes: usize,
    /// Dispatcher threads parsing requests and doing shard round-trips.
    pub dispatchers: usize,
    /// Optional hook wrapping every accepted connection's transport
    /// (chaos tests inject faults here).
    pub wrap: Option<TransportWrap>,
    /// Test-only failpoint: an `ingest` whose session id contains this
    /// marker panics inside the shard worker, exercising the panic
    /// isolation path deterministically.
    pub failpoint: Option<String>,
    /// Durable-state directory. `None` (the default) keeps all session
    /// state in memory; `Some` enables per-shard write-ahead logging,
    /// periodic snapshots, and crash-resume on startup (DESIGN.md §12).
    pub data_dir: Option<PathBuf>,
    /// Snapshot cadence in WAL frames: after this many logged requests a
    /// shard rotates to a fresh snapshot and an empty WAL. Ignored
    /// without [`ServeConfig::data_dir`].
    pub snapshot_every: u64,
    /// Per-shard flight-recorder capacity in events (the post-mortem
    /// ring dumped on worker panic and served by `stats {"flight":true}`).
    pub flight_capacity: usize,
    /// Record per-request trace metrics (queue-wait and handler-time
    /// histograms, flight-recorder events). On by default; the observe
    /// bench turns it off to measure the tracing overhead itself.
    pub trace_requests: bool,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("addr", &self.addr)
            .field("shards", &self.shards)
            .field("queue_capacity", &self.queue_capacity)
            .field("max_line_bytes", &self.max_line_bytes)
            .field("dispatchers", &self.dispatchers)
            .field("wrap", &self.wrap.as_ref().map(|_| "<hook>"))
            .field("failpoint", &self.failpoint)
            .field("data_dir", &self.data_dir)
            .field("snapshot_every", &self.snapshot_every)
            .field("flight_capacity", &self.flight_capacity)
            .field("trace_requests", &self.trace_requests)
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            queue_capacity: 256,
            max_line_bytes: 1 << 20,
            dispatchers: 2,
            wrap: None,
            failpoint: None,
            data_dir: None,
            snapshot_every: 256,
            flight_capacity: 256,
            trace_requests: true,
        }
    }
}

/// Server-wide counters, surfaced by the `health` verb as telemetry
/// counters (`serve.*`).
///
/// Since the observability plane landed (DESIGN.md §13) the monotonic
/// counters live in the server's [`Registry`] — the same instance the
/// `stats` verb snapshots — so there is exactly one source of truth;
/// the accessor methods below are thin reads of the registry handles.
/// The two up/down values (`conn_active`, `queue_depth`) stay plain
/// atomics (a [`Counter`] is monotonic) and are mirrored into registry
/// *gauges* of the same name on every change.
pub struct ServerStats {
    registry: Arc<Registry>,
    ingest_records: Arc<Counter>,
    backpressure_stalls: Arc<Counter>,
    dedup_replays: Arc<Counter>,
    fault_conn_errors: Arc<Counter>,
    fault_worker_restarts: Arc<Counter>,
    wal_frames: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    snapshot_writes: Arc<Counter>,
    recover_frames_replayed: Arc<Counter>,
    recover_truncated_frames: Arc<Counter>,
    recover_sessions: Arc<Counter>,
    conn_active: AtomicU64,
    queue_depth: AtomicU64,
    conn_gauge: Arc<Gauge>,
    queue_gauge: Arc<Gauge>,
}

impl Default for ServerStats {
    /// Builds stats over a fresh private registry. Each server gets its
    /// own instance (never [`Registry::global`]): tests run many servers
    /// in one process, and the `stats` determinism contract — identical
    /// workloads produce identical snapshots — requires isolation.
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        Self {
            ingest_records: registry.counter("serve.ingest.records"),
            backpressure_stalls: registry.counter("serve.backpressure.stalls"),
            dedup_replays: registry.counter("serve.dedup.replays"),
            fault_conn_errors: registry.counter("serve.fault.conn_errors"),
            fault_worker_restarts: registry.counter("serve.fault.worker_restarts"),
            wal_frames: registry.counter("serve.wal.frames"),
            wal_bytes: registry.counter("serve.wal.bytes"),
            snapshot_writes: registry.counter("serve.snapshot.writes"),
            recover_frames_replayed: registry.counter("serve.recover.frames_replayed"),
            recover_truncated_frames: registry.counter("serve.recover.truncated_frames"),
            recover_sessions: registry.counter("serve.recover.sessions"),
            conn_active: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            conn_gauge: registry.gauge("serve.conn.active"),
            queue_gauge: registry.gauge("serve.queue.depth"),
            registry,
        }
    }
}

impl ServerStats {
    /// The live metric registry backing these counters — the object the
    /// `stats` verb snapshots, and where the per-verb/per-shard request
    /// histograms and gauges live.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Total records accepted across all sessions. Replayed (duplicate)
    /// batches do not count: this is the exactly-once tally.
    pub fn ingest_records(&self) -> u64 {
        self.ingest_records.get()
    }

    /// Connections currently open.
    pub fn conn_active(&self) -> u64 {
        self.conn_active.load(Ordering::Relaxed)
    }

    /// Times a dispatcher found its shard queue full and had to block.
    pub fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls.get()
    }

    /// Messages currently queued across all shards.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Sequenced ingest batches answered from the dedup window instead of
    /// being re-applied (each one is a retry the protocol made safe).
    pub fn dedup_replays(&self) -> u64 {
        self.dedup_replays.get()
    }

    /// Connection-level faults survived: read/write errors, torn lines or
    /// frames at EOF, oversized lines, unframeable frames.
    pub fn fault_conn_errors(&self) -> u64 {
        self.fault_conn_errors.get()
    }

    /// Shard-worker panics caught and recovered from (one quarantined
    /// session each).
    pub fn fault_worker_restarts(&self) -> u64 {
        self.fault_worker_restarts.get()
    }

    /// WAL frames appended across all shards (zero with durability off).
    pub fn wal_frames(&self) -> u64 {
        self.wal_frames.get()
    }

    /// WAL bytes appended across all shards, frame headers included.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.get()
    }

    /// Snapshot files written (the one each shard writes at startup
    /// after recovery counts too).
    pub fn snapshot_writes(&self) -> u64 {
        self.snapshot_writes.get()
    }

    /// WAL frames replayed during startup recovery.
    pub fn recover_frames_replayed(&self) -> u64 {
        self.recover_frames_replayed.get()
    }

    /// Invalid WAL tail frames discarded during startup recovery (torn
    /// writes, checksum failures).
    pub fn recover_truncated_frames(&self) -> u64 {
        self.recover_truncated_frames.get()
    }

    /// Sessions restored from snapshots during startup recovery.
    pub fn recover_sessions(&self) -> u64 {
        self.recover_sessions.get()
    }

    fn conn_opened(&self) {
        let now = self.conn_active.fetch_add(1, Ordering::Relaxed) + 1;
        self.conn_gauge.set(now as f64);
    }

    fn conn_closed(&self) {
        let now = self.conn_active.fetch_sub(1, Ordering::Relaxed) - 1;
        self.conn_gauge.set(now as f64);
    }

    fn queue_inc(&self) {
        let now = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_gauge.set(now as f64);
    }

    fn queue_dec(&self) {
        let now = self.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
        self.queue_gauge.set(now as f64);
    }

    /// Folds one shard's startup recovery into the counters. Opening a
    /// shard's durable state also writes its post-recovery snapshot, so
    /// this counts one snapshot write.
    fn record_recovery(&self, report: &RecoverReport) {
        self.recover_sessions.add(report.sessions);
        self.recover_frames_replayed.add(report.frames_replayed);
        self.recover_truncated_frames.add(report.truncated_frames);
        self.snapshot_writes.inc();
    }

    /// The counters as a telemetry collector (merged into `health`
    /// snapshots alongside per-shard estimator health).
    pub fn collector(&self) -> Collector {
        let mut c = Collector::default();
        c.counts.push(("serve.ingest.records", self.ingest_records()));
        c.counts.push(("serve.queue.depth", self.queue_depth()));
        c.counts.push(("serve.conn.active", self.conn_active()));
        c.counts
            .push(("serve.backpressure.stalls", self.backpressure_stalls()));
        c.counts.push(("serve.dedup.replays", self.dedup_replays()));
        c.counts
            .push(("serve.fault.conn_errors", self.fault_conn_errors()));
        c.counts
            .push(("serve.fault.worker_restarts", self.fault_worker_restarts()));
        c.counts.push(("serve.wal.frames", self.wal_frames()));
        c.counts.push(("serve.wal.bytes", self.wal_bytes()));
        c.counts
            .push(("serve.snapshot.writes", self.snapshot_writes()));
        c.counts.push((
            "serve.recover.frames_replayed",
            self.recover_frames_replayed(),
        ));
        c.counts.push((
            "serve.recover.truncated_frames",
            self.recover_truncated_frames(),
        ));
        c.counts
            .push(("serve.recover.sessions", self.recover_sessions()));
        c
    }
}

/// Messages a dispatcher sends to a shard worker. Replies travel over a
/// per-request channel so a slow shard never blocks other dispatchers.
enum ShardMsg {
    Init {
        spec: InitSpec,
        /// Enqueue time, for the queue-wait histogram.
        at: Instant,
        reply: Sender<Json>,
    },
    Ingest {
        session: String,
        records: Vec<TraceRecord>,
        seq: Option<u64>,
        /// The verbatim binary frame this batch arrived as, if it came
        /// over the binary protocol: the WAL logs these bytes untouched
        /// so crash-resume replays the exact frame (DESIGN.md §14).
        /// `None` for JSON ingests, which log the canonical re-encoding.
        raw: Option<Vec<u8>>,
        at: Instant,
        reply: Sender<Json>,
    },
    Estimate {
        session: String,
        at: Instant,
        reply: Sender<Json>,
    },
    /// Health probe: the shard answers with its estimator-health
    /// collector.
    Collect(Sender<Collector>),
    /// Flight-recorder read: the shard answers with its ring as a JSON
    /// array (oldest first) and, when `dump` is set and durability is
    /// configured, also rewrites `flightrec-<shard>.jsonl`.
    Flight { dump: bool, reply: Sender<Json> },
}

/// Per-verb request metrics: the shared request counter plus this
/// shard's latency histograms (queue wait and handler wall time, both
/// in nanoseconds).
struct ReqMetrics {
    count: Arc<Counter>,
    queue_ns: Arc<Histogram>,
    handle_ns: Arc<Histogram>,
}

impl ReqMetrics {
    fn shard(reg: &Registry, verb: &str, shard: usize) -> Self {
        Self {
            count: reg.counter(&format!("serve.req.{verb}")),
            queue_ns: reg.histogram(&format!("serve.req.{verb}.queue_ns.s{shard}")),
            handle_ns: reg.histogram(&format!("serve.req.{verb}.handle_ns.s{shard}")),
        }
    }
}

/// One shard worker's metric handles, resolved once before the worker
/// spawns — the hot loop never touches the registry mutex, and every
/// shard's metric names exist in the registry before any traffic
/// arrives (so the `stats` key set is workload-independent).
struct ShardMetrics {
    init: ReqMetrics,
    ingest: ReqMetrics,
    estimate: ReqMetrics,
    /// Live (non-quarantined) sessions on this shard.
    sessions: Arc<Gauge>,
    /// WAL frames since the last snapshot rotation, as of this shard's
    /// most recent logged request (set at log time, not rotation time,
    /// so the value is settled before the request's reply is sent).
    wal_lag: Arc<Gauge>,
}

impl ShardMetrics {
    fn new(reg: &Registry, shard: usize) -> Self {
        Self {
            init: ReqMetrics::shard(reg, "init", shard),
            ingest: ReqMetrics::shard(reg, "ingest", shard),
            estimate: ReqMetrics::shard(reg, "estimate", shard),
            sessions: reg.gauge(&format!("serve.sessions.live.s{shard}")),
            wal_lag: reg.gauge(&format!("serve.wal.lag_frames.s{shard}")),
        }
    }
}

/// Everything a shard worker needs for observability, bundled so the
/// worker signature stays readable.
struct ShardCtx {
    shard: usize,
    trace: bool,
    flight_capacity: usize,
    /// Where panic dumps and on-demand dumps go (the durability dir).
    flight_dir: Option<PathBuf>,
    metrics: ShardMetrics,
}

/// Saturating nanosecond count of a duration.
fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// `"ok"` or `"error"` from a response envelope.
fn outcome_of(resp: &Json) -> &'static str {
    if resp.get("ok") == Some(&Json::Bool(true)) {
        "ok"
    } else {
        "error"
    }
}

/// Books one finished request: counts it, records queue-wait and
/// handler latency (when tracing), and appends a flight event. Called
/// BEFORE the reply is sent, so a client that reads `stats` right after
/// its response always sees its own request counted — the per-verb
/// histogram-total == counter invariant holds at every observable
/// moment.
#[allow(clippy::too_many_arguments)]
fn observe_request(
    ctx: &ShardCtx,
    flight: &mut FlightRecorder,
    metrics: &ReqMetrics,
    verb: &'static str,
    session: &str,
    seq: Option<u64>,
    records: u64,
    outcome: &'static str,
    at: Instant,
    started: Instant,
) {
    metrics.count.inc();
    let dur_ns = if ctx.trace {
        let wait_ns = duration_ns(started.duration_since(at));
        let dur_ns = duration_ns(started.elapsed());
        metrics.queue_ns.record(wait_ns);
        metrics.handle_ns.record(dur_ns);
        dur_ns
    } else {
        0
    };
    flight.push(verb, session, seq, records, outcome, dur_ns);
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] for a clean stop.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    event_loop: Option<JoinHandle<()>>,
    dispatchers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Requests shutdown and joins every server thread. Idempotent-safe
    /// with a client-sent `shutdown` verb (both paths set the same flag).
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the event loop if it is parked in epoll_wait.
        let _ = TcpStream::connect(self.local_addr);
        self.join();
    }

    /// Blocks until the server stops — i.e. until some client sends the
    /// `shutdown` verb — then joins every thread. This is what
    /// `ddn serve` does after printing the bound address.
    pub fn join(mut self) {
        // The event loop exits once drained; dropping its work channel
        // stops the dispatchers, and dropping their shard senders stops
        // the workers — join in that dependency order.
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        for h in self.dispatchers.drain(..) {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Locks a mutex, shrugging off poisoning: the guarded data here (the
/// shared work-queue receiver) stays valid even if a holder panicked.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fallback epoll timeout: how long the loop waits with no events
/// before re-checking the shutdown flag (belt-and-braces — shutdown
/// paths also wake the loop explicitly).
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Epoll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Epoll token of the completion waker eventfd.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_CONN0: u64 = 2;

/// One complete request the event loop framed off a connection, headed
/// for a dispatcher.
struct WorkItem {
    conn_id: u64,
    payload: Payload,
}

/// The two wire encodings a request can arrive in.
enum Payload {
    /// One newline-delimited JSON line (newline stripped).
    Line(Vec<u8>),
    /// One complete binary frame, magic through crc.
    Frame(Vec<u8>),
}

/// A finished response headed back to the event loop for writing.
struct Completion {
    conn_id: u64,
    /// The exact bytes to write (response JSON + `\n`).
    bytes: Vec<u8>,
    /// Close the connection after flushing (the `shutdown` ack).
    close: bool,
}

/// Binds `config.addr` and starts the event loop, dispatchers, and
/// shard workers. Any startup failure — bind, epoll/eventfd creation,
/// thread spawn under resource exhaustion — returns an `io::Error`
/// instead of panicking, so `ddn serve` exits 1 with a message.
pub fn serve(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    assert!(config.shards > 0, "need at least one shard");
    assert!(config.queue_capacity > 0, "queue capacity must be positive");
    assert!(config.max_line_bytes > 0, "line cap must be positive");
    assert!(config.dispatchers > 0, "need at least one dispatcher");
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());

    // Crash-resume happens here, on the caller's thread, before any
    // traffic can arrive: each shard restores its snapshot and replays
    // its WAL tail, so serve() returning means recovery is complete.
    if let Some(dir) = &config.data_dir {
        check_meta(dir, config.shards)?;
    }
    let mut senders = Vec::with_capacity(config.shards);
    let mut workers = Vec::with_capacity(config.shards);
    for i in 0..config.shards {
        let (tx, rx) = sync_channel::<ShardMsg>(config.queue_capacity);
        senders.push(tx);
        let stats = Arc::clone(&stats);
        let failpoint = config.failpoint.clone();
        let mut engine = Engine::new();
        let mut poisoned: HashSet<String> = HashSet::new();
        let durability = match &config.data_dir {
            None => None,
            Some(dir) => {
                let (d, report) = ShardDurability::open(
                    dir,
                    i,
                    config.snapshot_every,
                    failpoint.as_deref(),
                    &mut engine,
                    &mut poisoned,
                )?;
                stats.record_recovery(&report);
                Some(d)
            }
        };
        // Resolving the metric handles here (not in the worker) means
        // every shard's metric names are registered before serve()
        // returns, so the `stats` key set does not depend on which
        // shards happen to receive traffic. (Dispatcher-handled verbs
        // get the same treatment just below the shard loop.)
        let ctx = ShardCtx {
            shard: i,
            trace: config.trace_requests,
            flight_capacity: config.flight_capacity,
            flight_dir: config.data_dir.clone(),
            metrics: ShardMetrics::new(stats.registry(), i),
        };
        let spawned = std::thread::Builder::new()
            .name(format!("ddn-serve-shard-{i}"))
            .spawn(move || {
                shard_worker(rx, stats, failpoint, engine, poisoned, durability, ctx)
            });
        match spawned {
            Ok(h) => workers.push(h),
            Err(e) => {
                // Dropping `senders` disconnects the already-spawned
                // workers' receive loops; they exit on their own.
                drop(senders);
                for h in workers {
                    let _ = h.join();
                }
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("cannot spawn shard worker {i}: {e}"),
                ));
            }
        }
    }

    // Eagerly register the dispatcher-handled verbs too, so an idle
    // server and a busy one expose the same `stats` key set.
    for verb in ["health", "stats", "shutdown"] {
        stats.registry().counter(&format!("serve.req.{verb}"));
        stats
            .registry()
            .histogram(&format!("serve.req.{verb}.handle_ns"));
    }

    // All event-loop resources are created here, on the caller's
    // thread, so their failures surface as io::Error from serve().
    let cleanup = |senders: Vec<SyncSender<ShardMsg>>, workers: Vec<JoinHandle<()>>, e: std::io::Error| {
        drop(senders);
        for h in workers {
            let _ = h.join();
        }
        e
    };
    macro_rules! try_startup {
        ($expr:expr) => {
            match $expr {
                Ok(v) => v,
                Err(e) => return Err(cleanup(senders, workers, e)),
            }
        };
    }
    let epoll = try_startup!(Epoll::new());
    let waker = try_startup!(Waker::new());
    try_startup!(listener.set_nonblocking(true));
    try_startup!(epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN));
    try_startup!(epoll.add(waker.raw(), TOKEN_WAKER, EPOLLIN));

    let (work_tx, work_rx) = channel::<WorkItem>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    let (done_tx, done_rx) = channel::<Completion>();

    let mut dispatchers = Vec::with_capacity(config.dispatchers);
    for d in 0..config.dispatchers {
        let work_rx = Arc::clone(&work_rx);
        let senders_d = senders.clone();
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let done_tx_d = done_tx.clone();
        let waker = waker.clone();
        let trace = config.trace_requests;
        let spawned = std::thread::Builder::new()
            .name(format!("ddn-serve-dispatch-{d}"))
            .spawn(move || {
                dispatcher(
                    work_rx, senders_d, shutdown, stats, local_addr, trace, done_tx_d, waker,
                )
            });
        match spawned {
            Ok(h) => dispatchers.push(h),
            Err(e) => {
                drop(work_tx);
                drop(done_tx);
                for h in dispatchers {
                    let _ = h.join();
                }
                return Err(cleanup(
                    senders,
                    workers,
                    std::io::Error::new(e.kind(), format!("cannot spawn dispatcher {d}: {e}")),
                ));
            }
        }
    }
    drop(done_tx); // the loop's rx disconnects once every dispatcher exits

    let event_loop = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let wrap = config.wrap.clone();
        let max_line_bytes = config.max_line_bytes;
        let spawned = std::thread::Builder::new()
            .name("ddn-serve-loop".to_string())
            .spawn(move || {
                event_loop(
                    listener,
                    epoll,
                    waker,
                    work_tx,
                    done_rx,
                    shutdown,
                    stats,
                    wrap,
                    max_line_bytes,
                )
            });
        match spawned {
            Ok(h) => h,
            Err(e) => {
                // work_tx died with the failed closure; dispatchers and
                // workers unwind through their disconnected channels.
                for h in dispatchers {
                    let _ = h.join();
                }
                return Err(cleanup(
                    senders,
                    workers,
                    std::io::Error::new(e.kind(), format!("cannot spawn event loop: {e}")),
                ));
            }
        }
    };

    Ok(ServerHandle {
        local_addr,
        shutdown,
        stats,
        event_loop: Some(event_loop),
        dispatchers,
        workers,
    })
}

/// Per-connection state owned by the event loop.
struct Conn {
    transport: Box<dyn Transport>,
    fd: i32,
    /// Bytes read but not yet framed into a request.
    inbuf: Vec<u8>,
    /// Response bytes not yet written, starting at `outpos`.
    outbuf: Vec<u8>,
    outpos: usize,
    /// A request from this connection is at a dispatcher; stop-and-wait
    /// means no further framing until its completion arrives.
    in_flight: bool,
    /// The peer closed its write side; drain buffered requests, then
    /// close.
    eof: bool,
    /// Close once `outbuf` drains (shutdown ack, unframeable input).
    close_after_flush: bool,
    /// Mid-discard of an oversized JSON line (bytes dropped up to the
    /// next newline, then one error response).
    overflow: bool,
    /// Current epoll interest, `None` when deregistered (in flight).
    interest: Option<u32>,
}

/// What `extract_request` found at the head of a connection's input.
enum Extract {
    /// Not enough bytes yet.
    Need,
    /// A complete request, off to a dispatcher.
    Item(Payload),
    /// A whitespace-only line: skipped, no response (keep extracting).
    Skip,
    /// An oversized JSON line finished discarding: error, keep conn.
    OverflowedLine,
    /// The frame layer is unrecoverable (bad declared length): error,
    /// then close — the next request boundary is unknowable.
    Unframeable(String),
}

/// Splits one request off the head of `inbuf`, advancing the buffer.
///
/// Mode detection is a 1-byte peek: 0xDB (the first magic byte, which
/// no JSON line can start with) switches to binary framing; anything
/// else is a newline-delimited JSON line. A 0xDB head whose next three
/// bytes don't complete the magic falls back to the line path (it will
/// produce a parse-error response at the next newline, like any junk).
fn extract_request(conn: &mut Conn, max_line_bytes: usize) -> Extract {
    if conn.overflow {
        match conn.inbuf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                conn.inbuf.drain(..=i);
                conn.overflow = false;
                return Extract::OverflowedLine;
            }
            None => {
                conn.inbuf.clear();
                return Extract::Need;
            }
        }
    }
    if conn.inbuf.first() == Some(&FRAME_MAGIC[0]) {
        if conn.inbuf.len() < 4 {
            return Extract::Need;
        }
        if conn.inbuf[..4] == FRAME_MAGIC {
            if conn.inbuf.len() < FRAME_PREFIX_BYTES {
                return Extract::Need;
            }
            let body_len =
                u32::from_le_bytes(conn.inbuf[4..8].try_into().expect("4 bytes")) as usize;
            let total = FRAME_PREFIX_BYTES + body_len + frame::FRAME_CRC_BYTES;
            if total > MAX_FRAME_BYTES {
                return Extract::Unframeable(format!(
                    "binary frame declares {body_len} body bytes, exceeding the \
                     {MAX_FRAME_BYTES}-byte frame cap"
                ));
            }
            if conn.inbuf.len() < total {
                return Extract::Need;
            }
            let bytes: Vec<u8> = conn.inbuf.drain(..total).collect();
            return Extract::Item(Payload::Frame(bytes));
        }
    }
    match conn.inbuf.iter().position(|&b| b == b'\n') {
        Some(i) => {
            if i > max_line_bytes {
                // The cap applies even when the terminator has already
                // arrived: an oversized line is rejected by size, never
                // parsed.
                conn.inbuf.drain(..=i);
                return Extract::OverflowedLine;
            }
            let line: Vec<u8> = conn.inbuf.drain(..=i).take(i).collect();
            // Junk bytes are tolerated: lossy decoding plus parse errors
            // produce an error response, never a dropped connection — but
            // whitespace-only lines get no response at all.
            if String::from_utf8_lossy(&line).trim().is_empty() {
                Extract::Skip
            } else {
                Extract::Item(Payload::Line(line))
            }
        }
        None => {
            if conn.inbuf.len() > max_line_bytes {
                // Stop buffering; discard until the newline so the
                // connection can continue with the next request.
                conn.inbuf.clear();
                conn.overflow = true;
            }
            Extract::Need
        }
    }
}

/// Why a connection was closed, for fault accounting.
enum CloseReason {
    /// Clean EOF or an orderly close; no fault counted.
    Clean,
    /// Torn input, socket error, or unframeable bytes.
    Fault,
}

/// Drives one connection as far as it can go without blocking: flush
/// pending output, then frame and dispatch requests (stop-and-wait),
/// then settle the epoll interest. Returns `Some(reason)` when the
/// connection should be closed and removed.
#[allow(clippy::too_many_arguments)]
fn pump_conn(
    conn: &mut Conn,
    token: u64,
    epoll: &Epoll,
    work_tx: &Sender<WorkItem>,
    stats: &ServerStats,
    max_line_bytes: usize,
    draining: bool,
) -> Option<CloseReason> {
    loop {
        // 1. Flush whatever output is pending.
        while conn.outpos < conn.outbuf.len() {
            match conn.transport.write(&conn.outbuf[conn.outpos..]) {
                Ok(0) => return Some(CloseReason::Fault),
                Ok(n) => conn.outpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    set_interest(conn, token, epoll, Some(EPOLLOUT));
                    return None;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Some(CloseReason::Fault),
            }
        }
        conn.outbuf.clear();
        conn.outpos = 0;
        if conn.close_after_flush {
            return Some(CloseReason::Clean);
        }

        // 2. Stop-and-wait: while a request is at a dispatcher, this
        // connection is deregistered from epoll entirely (a zero
        // interest mask would still surface EPOLLHUP and spin).
        if conn.in_flight {
            set_interest(conn, token, epoll, None);
            return None;
        }

        // 3. Frame the next request off the input buffer.
        match extract_request(conn, max_line_bytes) {
            Extract::Skip => continue,
            Extract::Item(payload) => {
                conn.in_flight = true;
                if work_tx
                    .send(WorkItem {
                        conn_id: token,
                        payload,
                    })
                    .is_err()
                {
                    // Dispatchers are gone: the server is stopping.
                    return Some(CloseReason::Clean);
                }
            }
            Extract::OverflowedLine => {
                stats.fault_conn_errors.inc();
                push_response(
                    conn,
                    &error_response(&format!("request line exceeds {max_line_bytes} bytes")),
                );
            }
            Extract::Unframeable(msg) => {
                stats.fault_conn_errors.inc();
                push_response(conn, &error_response(&msg));
                conn.close_after_flush = true;
            }
            Extract::Need => {
                if conn.eof {
                    // The peer died mid-line or mid-frame; the partial
                    // request is dropped (it was never acknowledged).
                    return Some(if !conn.inbuf.is_empty() || conn.overflow {
                        CloseReason::Fault
                    } else {
                        CloseReason::Clean
                    });
                }
                if draining {
                    // Shutdown: idle connections close now instead of
                    // waiting for more requests.
                    return Some(CloseReason::Clean);
                }
                set_interest(conn, token, epoll, Some(EPOLLIN));
                return None;
            }
        }
    }
}

/// Appends one response (JSON + newline) to a connection's output
/// buffer — the exact byte stream `writeln!` produced in the
/// thread-per-connection server, which chaos byte-offset plans pin.
fn push_response(conn: &mut Conn, resp: &Json) {
    conn.outbuf.extend_from_slice(resp.to_string().as_bytes());
    conn.outbuf.push(b'\n');
}

/// Reconciles a connection's epoll registration with the interest it
/// needs right now (`None` = deregistered).
fn set_interest(conn: &mut Conn, token: u64, epoll: &Epoll, want: Option<u32>) {
    match (conn.interest, want) {
        (None, None) => {}
        (Some(cur), Some(ev)) if cur == ev => {}
        (None, Some(ev)) => {
            if epoll.add(conn.fd, token, ev).is_ok() {
                conn.interest = Some(ev);
            }
        }
        (Some(_), Some(ev)) => {
            if epoll.modify(conn.fd, token, ev).is_ok() {
                conn.interest = Some(ev);
            }
        }
        (Some(_), None) => {
            let _ = epoll.del(conn.fd);
            conn.interest = None;
        }
    }
}

/// Reads everything currently available on a connection. Returns
/// `Some(CloseReason::Fault)` on a socket error; EOF is recorded on the
/// conn (buffered requests still get served) rather than returned.
fn conn_read(conn: &mut Conn) -> Option<CloseReason> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match conn.transport.read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
                return None;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&buf[..n]);
                if n < buf.len() {
                    // Short read: the socket is drained for now.
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return None,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Socket-level failure (injected or real): this connection
            // is over, the server is not.
            Err(_) => return Some(CloseReason::Fault),
        }
    }
}

/// The event loop: owns the listener, the epoll instance, and every
/// connection. Never blocks on a socket; blocks only in `epoll_wait`.
#[allow(clippy::too_many_arguments)]
fn event_loop(
    listener: TcpListener,
    epoll: Epoll,
    waker: Waker,
    work_tx: Sender<WorkItem>,
    done_rx: Receiver<Completion>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    wrap: Option<TransportWrap>,
    max_line_bytes: usize,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_CONN0;
    let mut events: Vec<Event> = Vec::new();
    let mut draining = false;

    let close = |conn: &mut Conn, epoll: &Epoll, stats: &ServerStats, reason: CloseReason| {
        if let CloseReason::Fault = reason {
            stats.fault_conn_errors.inc();
        }
        if conn.interest.is_some() {
            let _ = epoll.del(conn.fd);
            conn.interest = None;
        }
        stats.conn_closed();
        // Dropping the transport (by the caller removing the conn)
        // closes the socket fd.
    };

    loop {
        // Apply finished responses first: they free connections to
        // either flush + continue or close.
        while let Ok(done) = done_rx.try_recv() {
            let Some(conn) = conns.get_mut(&done.conn_id) else {
                continue; // connection died while its request was in flight
            };
            conn.in_flight = false;
            conn.outbuf.extend_from_slice(&done.bytes);
            if done.close {
                conn.close_after_flush = true;
            }
            if let Some(reason) = pump_conn(
                conn,
                done.conn_id,
                &epoll,
                &work_tx,
                &stats,
                max_line_bytes,
                draining,
            ) {
                let mut conn = conns.remove(&done.conn_id).expect("conn exists");
                close(&mut conn, &epoll, &stats, reason);
            }
        }

        if !draining && shutdown.load(Ordering::SeqCst) {
            draining = true;
            // Stop accepting: deregister the listener (a level-triggered
            // backlog would otherwise spin the loop). It closes — RSTing
            // any queued connects — when the loop exits and drops it.
            let _ = epoll.del(listener.as_raw_fd());
            // Close every idle connection now; in-flight ones finish
            // their response first (pump_conn closes them via `draining`).
            let idle: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| !c.in_flight && c.outpos >= c.outbuf.len())
                .map(|(t, _)| *t)
                .collect();
            for token in idle {
                let mut conn = conns.remove(&token).expect("conn exists");
                close(&mut conn, &epoll, &stats, CloseReason::Clean);
            }
        }
        if draining && conns.is_empty() {
            break;
        }

        events.clear();
        if epoll
            .wait(&mut events, POLL_INTERVAL.as_millis() as i32)
            .is_err()
        {
            // epoll itself failing is unrecoverable for the loop; treat
            // it as shutdown so the process can exit cleanly.
            shutdown.store(true, Ordering::SeqCst);
            continue;
        }

        for ev in &events {
            match ev.token {
                TOKEN_WAKER => waker.drain(),
                TOKEN_LISTENER => {
                    if draining {
                        continue;
                    }
                    accept_ready(
                        &listener,
                        &wrap,
                        &epoll,
                        &mut conns,
                        &mut next_token,
                        &stats,
                    );
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue; // stale event for a closed conn
                    };
                    // Reading only when read-interested keeps the fault
                    // injector's byte-offset cursor aligned with the
                    // request stream.
                    let read_err = if conn.interest == Some(EPOLLIN) {
                        conn_read(conn)
                    } else {
                        None
                    };
                    let reason = read_err.or_else(|| {
                        pump_conn(
                            conn,
                            token,
                            &epoll,
                            &work_tx,
                            &stats,
                            max_line_bytes,
                            draining,
                        )
                    });
                    if let Some(reason) = reason {
                        let mut conn = conns.remove(&token).expect("conn exists");
                        close(&mut conn, &epoll, &stats, reason);
                    }
                }
            }
        }
    }
    // Loop exit: dropping work_tx stops the dispatchers, whose shard
    // senders then drop and stop the workers. The listener, epoll fd,
    // waker ref, and any remaining sockets close here with their owners.
}

/// Accepts every connection currently queued on the (nonblocking)
/// listener and registers each with the event loop.
fn accept_ready(
    listener: &TcpListener,
    wrap: &Option<TransportWrap>,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    stats: &ServerStats,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            // Transient per-connection accept failures (e.g. the peer
            // aborted while queued): the listener stays healthy, and
            // level-triggered epoll re-reports any remaining backlog.
            Err(_) => return,
        };
        let mut transport: Box<dyn Transport> = Box::new(TcpTransport::new(stream));
        if let Some(wrap) = wrap {
            transport = wrap(transport);
        }
        if transport.set_nonblocking(true).is_err() {
            continue;
        }
        // A transport without an fd cannot be readiness-driven; no
        // production or test transport is fd-less, so just drop it.
        let Some(fd) = transport.raw_fd() else {
            continue;
        };
        let token = *next_token;
        *next_token += 1;
        let mut conn = Conn {
            transport,
            fd,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            in_flight: false,
            eof: false,
            close_after_flush: false,
            overflow: false,
            interest: None,
        };
        if epoll.add(fd, token, EPOLLIN).is_err() {
            continue;
        }
        conn.interest = Some(EPOLLIN);
        stats.conn_opened();
        conns.insert(token, conn);
    }
}

/// A dispatcher thread: pulls framed requests off the shared queue,
/// parses/decodes them, does the shard round-trip, and hands the
/// response bytes back to the event loop.
#[allow(clippy::too_many_arguments)]
fn dispatcher(
    work_rx: Arc<Mutex<Receiver<WorkItem>>>,
    senders: Vec<SyncSender<ShardMsg>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    local_addr: SocketAddr,
    trace: bool,
    done_tx: Sender<Completion>,
    waker: Waker,
) {
    loop {
        // Hold the lock only for the recv itself, so dispatchers take
        // work items one at a time without serializing the handling.
        let item = lock(&work_rx).recv();
        let Ok(item) = item else {
            return; // event loop exited and dropped the work channel
        };
        let (resp, close) = match item.payload {
            Payload::Line(line) => {
                process_line(&line, &senders, &shutdown, &stats, local_addr, trace)
            }
            Payload::Frame(bytes) => {
                process_frame(bytes, &senders, &shutdown, &stats, local_addr, trace)
            }
        };
        let mut bytes = resp.to_string().into_bytes();
        bytes.push(b'\n');
        if done_tx
            .send(Completion {
                conn_id: item.conn_id,
                bytes,
                close,
            })
            .is_err()
        {
            return;
        }
        waker.wake();
    }
}

/// Handles one JSON request line: parse, dispatch, echo the id.
fn process_line(
    line: &[u8],
    senders: &[SyncSender<ShardMsg>],
    shutdown: &AtomicBool,
    stats: &ServerStats,
    local_addr: SocketAddr,
    trace: bool,
) -> (Json, bool) {
    let text = String::from_utf8_lossy(line);
    match Json::parse(text.trim()) {
        Ok(v) => {
            // The id is extracted before verb validation so even an
            // error response for a malformed request echoes it — the
            // client can always correlate.
            let id = request_id(&v);
            let (resp, close) = match Request::from_json(&v) {
                Ok(req) => dispatch(req, None, senders, shutdown, stats, local_addr, trace),
                Err(e) => (error_response(&e), false),
            };
            (attach_id(resp, id), close)
        }
        Err(e) => (error_response(&format!("bad JSON: {e}")), false),
    }
}

/// Handles one complete binary frame: decode, dispatch as an ingest,
/// echo the frame's integer id. A frame that fails decoding (crc
/// mismatch, malformed body) gets an error response but keeps the
/// connection — the length prefix already located the next request
/// boundary, exactly like a bad JSON line.
fn process_frame(
    bytes: Vec<u8>,
    senders: &[SyncSender<ShardMsg>],
    shutdown: &AtomicBool,
    stats: &ServerStats,
    local_addr: SocketAddr,
    trace: bool,
) -> (Json, bool) {
    match frame::decode(&bytes) {
        Ok(batch) => {
            let id = batch.id.map(|i| Json::Int(i as i64));
            let req = Request::Ingest {
                session: batch.session,
                records: batch.records,
                seq: batch.seq,
            };
            let (resp, close) =
                dispatch(req, Some(bytes), senders, shutdown, stats, local_addr, trace);
            (attach_id(resp, id), close)
        }
        Err(e) => (error_response(&format!("bad frame: {e}")), false),
    }
}

fn degraded_response(session: &str) -> Json {
    error_response(&format!(
        "session {session:?} degraded: a worker panicked while serving it; re-init to recover"
    ))
}

/// Write-ahead-logs one request payload (a JSON line or a verbatim
/// binary frame), updating the WAL counters. `Ok(())` with no
/// durability configured. On an I/O error the request MUST NOT be
/// applied (the ack would describe state a restart loses); the caller
/// returns the error to the client instead.
fn wal_log(
    durability: &mut Option<ShardDurability>,
    stats: &ServerStats,
    wal_lag: &Gauge,
    payload: &[u8],
) -> std::io::Result<()> {
    if let Some(d) = durability {
        let bytes = d.log_request(payload)?;
        stats.wal_frames.inc();
        stats.wal_bytes.add(bytes as u64);
        // Set at log time (not rotation time) so the gauge is settled
        // before this request's reply goes out; it reads as "frames a
        // restart would replay, as of the last logged request".
        wal_lag.set(d.frames_since_snapshot() as f64);
    }
    Ok(())
}

/// Rotates to a fresh snapshot when the cadence says so. Snapshot I/O
/// failures are deliberately non-fatal: the WAL already holds every
/// acknowledged request, so losing a rotation costs replay time at the
/// next startup, not state.
fn wal_maybe_snapshot(
    durability: &mut Option<ShardDurability>,
    stats: &ServerStats,
    engine: &Engine,
    poisoned: &HashSet<String>,
) {
    if let Some(d) = durability {
        match d.maybe_snapshot(engine, poisoned) {
            Ok(true) => {
                stats.snapshot_writes.inc();
            }
            Ok(false) => {}
            Err(e) => eprintln!("ddn-serve: snapshot write failed: {e}"),
        }
    }
}

fn shard_worker(
    rx: Receiver<ShardMsg>,
    stats: Arc<ServerStats>,
    failpoint: Option<String>,
    mut engine: Engine,
    // Sessions whose request panicked: their state is untrustworthy, so
    // they answer `degraded` until a client re-inits them. Recovery
    // pre-populates this from the snapshot.
    mut poisoned: HashSet<String>,
    mut durability: Option<ShardDurability>,
    ctx: ShardCtx,
) {
    let mut flight = FlightRecorder::new(ctx.flight_capacity);
    while let Ok(msg) = rx.recv() {
        stats.queue_dec();
        match msg {
            ShardMsg::Init { spec, at, reply } => {
                let started = Instant::now();
                let session = spec.session.clone();
                // Write-ahead: the init line is durable before the session
                // exists, so an acknowledged init always survives a kill.
                if let Err(e) = wal_log(
                    &mut durability,
                    &stats,
                    &ctx.metrics.wal_lag,
                    spec.to_json().to_string().as_bytes(),
                ) {
                    observe_request(
                        &ctx, &mut flight, &ctx.metrics.init, "init", &session, None, 0,
                        "error", at, started,
                    );
                    let _ = reply.send(error_response(&format!("durability failure: {e}")));
                    continue;
                }
                // Re-init lifts a quarantine: the replacement session is
                // built from scratch, sequence numbers included.
                poisoned.remove(&session);
                let resp = engine.handle_init(spec);
                ctx.metrics.sessions.set(engine.sessions() as f64);
                observe_request(
                    &ctx, &mut flight, &ctx.metrics.init, "init", &session, None, 0,
                    outcome_of(&resp), at, started,
                );
                let _ = reply.send(resp);
                wal_maybe_snapshot(&mut durability, &stats, &engine, &poisoned);
            }
            ShardMsg::Ingest {
                session,
                records,
                seq,
                raw,
                at,
                reply,
            } => {
                let started = Instant::now();
                let nrec = records.len() as u64;
                if poisoned.contains(&session) {
                    observe_request(
                        &ctx, &mut flight, &ctx.metrics.ingest, "ingest", &session, seq,
                        nrec, "error", at, started,
                    );
                    let _ = reply.send(degraded_response(&session));
                    continue;
                }
                // Write-ahead of the verdict, whatever it turns out to be:
                // even a rejected sequenced batch consumes its sequence
                // number, so replay must reproduce the rejection or
                // recovery would desynchronize the dedup window. Binary
                // batches log the client's frame bytes verbatim; JSON
                // batches log the canonical re-encoding.
                let payload = match &raw {
                    Some(frame_bytes) => frame_bytes.clone(),
                    None => ingest_request_json(&session, &records, seq)
                        .to_string()
                        .into_bytes(),
                };
                if let Err(e) =
                    wal_log(&mut durability, &stats, &ctx.metrics.wal_lag, &payload)
                {
                    observe_request(
                        &ctx, &mut flight, &ctx.metrics.ingest, "ingest", &session, seq,
                        nrec, "error", at, started,
                    );
                    let _ = reply.send(error_response(&format!("durability failure: {e}")));
                    continue;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(marker) = &failpoint {
                        if session.contains(marker.as_str()) {
                            panic!("failpoint hit for session {session:?}");
                        }
                    }
                    engine.handle_ingest(&session, &records, seq)
                }));
                match outcome {
                    Ok(resp) => {
                        let duplicate =
                            resp.get("duplicate") == Some(&Json::Bool(true));
                        if duplicate {
                            stats.dedup_replays.inc();
                        } else if let Some(accepted) =
                            resp.get("accepted").and_then(Json::as_u64)
                        {
                            stats.ingest_records.add(accepted);
                        }
                        ctx.metrics.sessions.set(engine.sessions() as f64);
                        let oc = if duplicate { "duplicate" } else { outcome_of(&resp) };
                        observe_request(
                            &ctx, &mut flight, &ctx.metrics.ingest, "ingest", &session,
                            seq, nrec, oc, at, started,
                        );
                        let _ = reply.send(resp);
                        wal_maybe_snapshot(&mut durability, &stats, &engine, &poisoned);
                    }
                    Err(_) => {
                        // The worker survives the panic: quarantine the
                        // one session whose state is now suspect and keep
                        // serving the rest of the shard.
                        stats.fault_worker_restarts.inc();
                        engine.remove_session(&session);
                        poisoned.insert(session.clone());
                        ctx.metrics.sessions.set(engine.sessions() as f64);
                        observe_request(
                            &ctx, &mut flight, &ctx.metrics.ingest, "ingest", &session,
                            seq, nrec, "panic", at, started,
                        );
                        // Post-mortem: dump the ring — ending with the
                        // request that panicked — before answering, so
                        // the evidence is on disk even if the process is
                        // killed right after.
                        if let Some(dir) = &ctx.flight_dir {
                            let path = flightrec_path(dir, ctx.shard);
                            if let Err(e) = flight.dump(&path) {
                                eprintln!("ddn-serve: flight-recorder dump failed: {e}");
                            }
                        }
                        let _ = reply.send(degraded_response(&session));
                    }
                }
            }
            ShardMsg::Estimate { session, at, reply } => {
                let started = Instant::now();
                if poisoned.contains(&session) {
                    observe_request(
                        &ctx, &mut flight, &ctx.metrics.estimate, "estimate", &session,
                        None, 0, "error", at, started,
                    );
                    let _ = reply.send(degraded_response(&session));
                    continue;
                }
                let resp = engine.handle_estimate(&session);
                observe_request(
                    &ctx, &mut flight, &ctx.metrics.estimate, "estimate", &session, None,
                    0, outcome_of(&resp), at, started,
                );
                let _ = reply.send(resp);
            }
            ShardMsg::Collect(reply) => {
                let mut c = engine.collector();
                for session in &poisoned {
                    c.health
                        .push((format!("serve/{session}/degraded"), vec![("poisoned", 1.0)]));
                }
                let _ = reply.send(c);
            }
            ShardMsg::Flight { dump, reply } => {
                let events = flight.to_json_array();
                if dump {
                    if let Some(dir) = &ctx.flight_dir {
                        let path = flightrec_path(dir, ctx.shard);
                        if let Err(e) = flight.dump(&path) {
                            eprintln!("ddn-serve: flight-recorder dump failed: {e}");
                        }
                    }
                }
                let _ = reply.send(events);
            }
        }
    }
}

fn shard_of(session: &str, shards: usize) -> usize {
    let mut h = DefaultHasher::new();
    session.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Sends to a shard with backpressure accounting: non-blocking first;
/// on a full queue counts a stall and blocks (stalling only this
/// dispatcher and, through stop-and-wait, its requesting client).
fn send_with_backpressure(
    tx: &SyncSender<ShardMsg>,
    msg: ShardMsg,
    stats: &ServerStats,
) -> Result<(), ()> {
    stats.queue_inc();
    match tx.try_send(msg) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(msg)) => {
            stats.backpressure_stalls.inc();
            tx.send(msg).map_err(|_| {
                stats.queue_dec();
            })
        }
        Err(TrySendError::Disconnected(_)) => {
            stats.queue_dec();
            Err(())
        }
    }
}

/// Counts (and, when tracing, times) a verb handled on the dispatcher
/// thread itself — `health`, `stats`, `shutdown`. These are rare, so
/// the per-call registry lookup is fine; the histogram name carries no
/// shard suffix because no shard was involved.
fn record_conn_verb(stats: &ServerStats, verb: &str, trace: bool, started: Instant) {
    let reg = stats.registry();
    reg.counter(&format!("serve.req.{verb}")).inc();
    if trace {
        reg.histogram(&format!("serve.req.{verb}.handle_ns"))
            .record(duration_ns(started.elapsed()));
    }
}

/// Routes one parsed request and returns the response to write, plus
/// whether to close the connection after replying. `raw` carries the
/// verbatim binary frame for binary ingests (WAL-logged untouched).
fn dispatch(
    req: Request,
    raw: Option<Vec<u8>>,
    senders: &[SyncSender<ShardMsg>],
    shutdown: &AtomicBool,
    stats: &ServerStats,
    local_addr: SocketAddr,
    trace: bool,
) -> (Json, bool) {
    // Enqueue time for shard verbs; handler start for dispatcher verbs.
    let at = Instant::now();
    // Round-trips one message to a shard and waits for its reply.
    let ask = |shard: usize, msg: ShardMsg, rx: Receiver<Json>| -> Json {
        if send_with_backpressure(&senders[shard], msg, stats).is_err() {
            return error_response("server is shutting down");
        }
        rx.recv()
            .unwrap_or_else(|_| error_response("shard worker unavailable"))
    };
    match req {
        Request::Init(spec) => {
            let shard = shard_of(&spec.session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            let msg = ShardMsg::Init {
                spec,
                at,
                reply: tx,
            };
            (ask(shard, msg, rx), false)
        }
        Request::Ingest {
            session,
            records,
            seq,
        } => {
            let shard = shard_of(&session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            let msg = ShardMsg::Ingest {
                session,
                records,
                seq,
                raw,
                at,
                reply: tx,
            };
            (ask(shard, msg, rx), false)
        }
        Request::Estimate { session } => {
            let shard = shard_of(&session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            let msg = ShardMsg::Estimate {
                session,
                at,
                reply: tx,
            };
            (ask(shard, msg, rx), false)
        }
        Request::Health => {
            let mut collectors = Vec::with_capacity(senders.len() + 1);
            collectors.push(stats.collector());
            for tx in senders {
                let (ctx, crx) = std::sync::mpsc::channel();
                if send_with_backpressure(tx, ShardMsg::Collect(ctx), stats).is_ok() {
                    if let Ok(c) = crx.recv() {
                        collectors.push(c);
                    }
                }
            }
            let mut snap = TelemetrySnapshot::from_runs(&collectors);
            snap.set_threads(senders.len());
            record_conn_verb(stats, "health", trace, at);
            (
                ok_response(vec![("telemetry", snap.to_json())]),
                false,
            )
        }
        Request::Stats { flight } => {
            // Snapshot the registry BEFORE booking this request, so the
            // response never counts itself: the first `stats` a client
            // sends reports zero prior `stats` traffic, and every verb's
            // histogram-total == counter invariant holds inside the
            // snapshot (this request's handle_ns is recorded only after
            // the snapshot is taken, together with its counter).
            let snapshot = stats.registry().to_json();
            let mut fields = vec![("stats", snapshot)];
            if flight {
                let mut shards = Vec::with_capacity(senders.len());
                for (i, tx) in senders.iter().enumerate() {
                    let (ftx, frx) = std::sync::mpsc::channel();
                    let msg = ShardMsg::Flight {
                        dump: true,
                        reply: ftx,
                    };
                    let events = if send_with_backpressure(tx, msg, stats).is_ok() {
                        frx.recv().unwrap_or_else(|_| Json::Array(Vec::new()))
                    } else {
                        Json::Array(Vec::new())
                    };
                    shards.push((format!("shard-{i}"), events));
                }
                fields.push(("flight", Json::Object(shards)));
            }
            record_conn_verb(stats, "stats", trace, at);
            (ok_response(fields), false)
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            // Wake the event loop so it observes the flag.
            let _ = TcpStream::connect(local_addr);
            record_conn_verb(stats, "shutdown", trace, at);
            (
                ok_response(vec![("shutting_down", Json::Bool(true))]),
                true,
            )
        }
    }
}
