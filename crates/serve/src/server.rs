//! The TCP transport: acceptor, per-connection readers, and the sharded
//! worker pool.
//!
//! ## Threading model
//!
//! ```text
//! acceptor ──spawn──▶ connection threads (one per client)
//!                         │  parse line → Request
//!                         │  hash(session) → shard
//!                         ▼
//!                bounded sync_channel (backpressure)
//!                         │
//!                         ▼
//!                shard workers (own the sessions; no locks)
//! ```
//!
//! Each session lives on exactly one shard (chosen by hashing its id), so
//! session state needs no synchronization and requests for one session
//! are processed in arrival order — an `estimate` sent after an `ingest`
//! on the same connection always sees the ingested records.
//!
//! ## Backpressure
//!
//! Ingest queues are bounded ([`ServeConfig::queue_capacity`] messages
//! per shard). A connection thread first tries a non-blocking send; when
//! the shard's queue is full it counts a `serve.backpressure.stalls`
//! event and falls back to a blocking send, which stalls *that client's*
//! TCP stream (and eventually the client, via TCP flow control) without
//! affecting other connections.
//!
//! ## Shutdown contract
//!
//! A `shutdown` verb (the SIGTERM-equivalent for this zero-dependency
//! server) or [`ServerHandle::shutdown`] sets a flag, wakes the acceptor
//! with a loopback connection, and answers in-flight requests. Connection
//! threads notice the flag within one poll interval and close; workers
//! drain their queues and exit once every connection is gone.
//! [`ServerHandle::shutdown`] joins every thread, so when it returns the
//! process holds no server state.

use crate::engine::Engine;
use crate::protocol::{error_response, ok_response, InitSpec, Request};
use ddn_stats::Json;
use ddn_telemetry::{Collector, TelemetrySnapshot};
use ddn_trace::TraceRecord;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of shard workers (each owns a disjoint set of sessions).
    pub shards: usize,
    /// Bounded queue capacity per shard, in messages.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            queue_capacity: 256,
        }
    }
}

/// Server-wide counters, surfaced by the `health` verb as telemetry
/// counters (`serve.*`).
#[derive(Default)]
pub struct ServerStats {
    ingest_records: AtomicU64,
    conn_active: AtomicU64,
    backpressure_stalls: AtomicU64,
    queue_depth: AtomicU64,
}

impl ServerStats {
    /// Total records accepted across all sessions.
    pub fn ingest_records(&self) -> u64 {
        self.ingest_records.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn conn_active(&self) -> u64 {
        self.conn_active.load(Ordering::Relaxed)
    }

    /// Times a connection found its shard queue full and had to block.
    pub fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls.load(Ordering::Relaxed)
    }

    /// Messages currently queued across all shards.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// The counters as a telemetry collector (merged into `health`
    /// snapshots alongside per-shard estimator health).
    pub fn collector(&self) -> Collector {
        let mut c = Collector::default();
        c.counts.push(("serve.ingest.records", self.ingest_records()));
        c.counts.push(("serve.queue.depth", self.queue_depth()));
        c.counts.push(("serve.conn.active", self.conn_active()));
        c.counts
            .push(("serve.backpressure.stalls", self.backpressure_stalls()));
        c
    }
}

/// Messages a connection thread sends to a shard worker. Replies travel
/// over a per-request channel so a slow shard never blocks writes for
/// other connections.
enum ShardMsg {
    Init(InitSpec, Sender<Json>),
    Ingest {
        session: String,
        records: Vec<TraceRecord>,
        reply: Sender<Json>,
    },
    Estimate {
        session: String,
        reply: Sender<Json>,
    },
    /// Health probe: the shard answers with its estimator-health
    /// collector.
    Collect(Sender<Collector>),
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] for a clean stop.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Requests shutdown and joins every server thread. Idempotent-safe
    /// with a client-sent `shutdown` verb (both paths set the same flag).
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor if it is parked in accept().
        let _ = TcpStream::connect(self.local_addr);
        self.join();
    }

    /// Blocks until the server stops — i.e. until some client sends the
    /// `shutdown` verb — then joins every thread. This is what
    /// `ddn serve` does after printing the bound address.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// How long a connection thread waits on a quiet socket before checking
/// the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Binds `config.addr` and starts the acceptor and shard workers.
pub fn serve(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    assert!(config.shards > 0, "need at least one shard");
    assert!(config.queue_capacity > 0, "queue capacity must be positive");
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());

    let mut senders = Vec::with_capacity(config.shards);
    let mut workers = Vec::with_capacity(config.shards);
    for i in 0..config.shards {
        let (tx, rx) = sync_channel::<ShardMsg>(config.queue_capacity);
        senders.push(tx);
        let stats = Arc::clone(&stats);
        workers.push(
            std::thread::Builder::new()
                .name(format!("ddn-serve-shard-{i}"))
                .spawn(move || shard_worker(rx, stats))
                .expect("spawn shard worker"),
        );
    }

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        std::thread::Builder::new()
            .name("ddn-serve-acceptor".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    let senders = senders.clone();
                    let shutdown = Arc::clone(&shutdown);
                    let stats = Arc::clone(&stats);
                    let addr = local_addr;
                    let _ = std::thread::Builder::new()
                        .name("ddn-serve-conn".to_string())
                        .spawn(move || {
                            stats.conn_active.fetch_add(1, Ordering::Relaxed);
                            handle_connection(stream, &senders, &shutdown, &stats, addr);
                            stats.conn_active.fetch_sub(1, Ordering::Relaxed);
                        });
                }
                // Dropping `senders` here lets workers exit once every
                // connection thread has also dropped its clones.
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        local_addr,
        shutdown,
        stats,
        acceptor: Some(acceptor),
        workers,
    })
}

fn shard_worker(rx: Receiver<ShardMsg>, stats: Arc<ServerStats>) {
    let mut engine = Engine::new();
    while let Ok(msg) = rx.recv() {
        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        match msg {
            ShardMsg::Init(spec, reply) => {
                let _ = reply.send(engine.handle_init(spec));
            }
            ShardMsg::Ingest {
                session,
                records,
                reply,
            } => {
                let resp = engine.handle_ingest(&session, &records);
                if let Some(accepted) = resp.get("accepted").and_then(Json::as_u64) {
                    stats.ingest_records.fetch_add(accepted, Ordering::Relaxed);
                }
                let _ = reply.send(resp);
            }
            ShardMsg::Estimate { session, reply } => {
                let _ = reply.send(engine.handle_estimate(&session));
            }
            ShardMsg::Collect(reply) => {
                let _ = reply.send(engine.collector());
            }
        }
    }
}

fn shard_of(session: &str, shards: usize) -> usize {
    let mut h = DefaultHasher::new();
    session.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Sends to a shard with backpressure accounting: non-blocking first;
/// on a full queue counts a stall and blocks (stalling only this
/// connection).
fn send_with_backpressure(
    tx: &SyncSender<ShardMsg>,
    msg: ShardMsg,
    stats: &ServerStats,
) -> Result<(), ()> {
    stats.queue_depth.fetch_add(1, Ordering::Relaxed);
    match tx.try_send(msg) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(msg)) => {
            stats.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
            tx.send(msg).map_err(|_| {
                stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            })
        }
        Err(TrySendError::Disconnected(_)) => {
            stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            Err(())
        }
    }
}

/// Routes one parsed request and returns the response to write. `None`
/// means "shut the connection down after replying with `ok`".
fn dispatch(
    req: Request,
    senders: &[SyncSender<ShardMsg>],
    shutdown: &AtomicBool,
    stats: &ServerStats,
    local_addr: SocketAddr,
) -> (Json, bool) {
    // Round-trips one message to a shard and waits for its reply.
    let ask = |shard: usize, msg: ShardMsg, rx: Receiver<Json>| -> Json {
        if send_with_backpressure(&senders[shard], msg, stats).is_err() {
            return error_response("server is shutting down");
        }
        rx.recv()
            .unwrap_or_else(|_| error_response("shard worker unavailable"))
    };
    match req {
        Request::Init(spec) => {
            let shard = shard_of(&spec.session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            (ask(shard, ShardMsg::Init(spec, tx), rx), false)
        }
        Request::Ingest { session, records } => {
            let shard = shard_of(&session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            let msg = ShardMsg::Ingest {
                session,
                records,
                reply: tx,
            };
            (ask(shard, msg, rx), false)
        }
        Request::Estimate { session } => {
            let shard = shard_of(&session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            let msg = ShardMsg::Estimate {
                session,
                reply: tx,
            };
            (ask(shard, msg, rx), false)
        }
        Request::Health => {
            let mut collectors = Vec::with_capacity(senders.len() + 1);
            collectors.push(stats.collector());
            for tx in senders {
                let (ctx, crx) = std::sync::mpsc::channel();
                if send_with_backpressure(tx, ShardMsg::Collect(ctx), stats).is_ok() {
                    if let Ok(c) = crx.recv() {
                        collectors.push(c);
                    }
                }
            }
            let mut snap = TelemetrySnapshot::from_runs(&collectors);
            snap.set_threads(senders.len());
            (
                ok_response(vec![("telemetry", snap.to_json())]),
                false,
            )
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag.
            let _ = TcpStream::connect(local_addr);
            (
                ok_response(vec![("shutting_down", Json::Bool(true))]),
                true,
            )
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    senders: &[SyncSender<ShardMsg>],
    shutdown: &AtomicBool,
    stats: &ServerStats,
    local_addr: SocketAddr,
) {
    // A finite read timeout lets the thread notice shutdown while the
    // client is idle; partial reads accumulate in `buf` across timeouts
    // (read_line appends before erroring), so no bytes are lost.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    // The protocol is strict request/response, so Nagle buys nothing and
    // its interaction with delayed ACKs costs ~40ms per small reply.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    'conn: loop {
        buf.clear();
        let n = loop {
            match reader.read_line(&mut buf) {
                Ok(n) => break n,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        break 'conn;
                    }
                }
                Err(_) => break 'conn,
            }
        };
        if n == 0 {
            break; // client closed
        }
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        // Per-connection error isolation: a bad line produces an error
        // response, never a dropped connection or a dead server.
        let (resp, close) = match Request::parse(line) {
            Ok(req) => dispatch(req, senders, shutdown, stats, local_addr),
            Err(e) => (error_response(&e), false),
        };
        if writeln!(writer, "{}", resp.to_string()).is_err() {
            break;
        }
        if close {
            break;
        }
    }
}
