//! The TCP transport: acceptor, per-connection readers, and the sharded
//! worker pool.
//!
//! ## Threading model
//!
//! ```text
//! acceptor ──spawn──▶ connection threads (one per client)
//!                         │  parse line → Request
//!                         │  hash(session) → shard
//!                         ▼
//!                bounded sync_channel (backpressure)
//!                         │
//!                         ▼
//!                shard workers (own the sessions; no locks)
//! ```
//!
//! Each session lives on exactly one shard (chosen by hashing its id), so
//! session state needs no synchronization and requests for one session
//! are processed in arrival order — an `estimate` sent after an `ingest`
//! on the same connection always sees the ingested records.
//!
//! All socket I/O goes through the [`Transport`] abstraction; chaos tests
//! install a [`ServeConfig::wrap`] hook to interpose a deterministic
//! fault injector between the protocol layer and the kernel.
//!
//! ## Backpressure
//!
//! Ingest queues are bounded ([`ServeConfig::queue_capacity`] messages
//! per shard). A connection thread first tries a non-blocking send; when
//! the shard's queue is full it counts a `serve.backpressure.stalls`
//! event and falls back to a blocking send, which stalls *that client's*
//! TCP stream (and eventually the client, via TCP flow control) without
//! affecting other connections.
//!
//! ## Fault isolation
//!
//! A connection that sends junk bytes, a torn line, or an oversized line
//! gets an error response (or is dropped at EOF) without affecting other
//! connections; such events count `serve.fault.conn_errors`. A shard
//! worker that panics mid-request is caught ([`std::panic::catch_unwind`]
//! around each message), the session whose request panicked is
//! quarantined (its state may be half-applied), and the worker keeps
//! serving its other sessions — the panic costs one session, not the
//! server. Quarantined sessions answer every request with a `degraded`
//! error (re-`init` lifts the quarantine) and show up in `health` under
//! `serve/<session>/degraded`.
//!
//! ## Shutdown contract
//!
//! A `shutdown` verb (the SIGTERM-equivalent for this zero-dependency
//! server) or [`ServerHandle::shutdown`] sets a flag, wakes the acceptor
//! with a loopback connection, and answers in-flight requests. Connection
//! threads notice the flag within one poll interval and close; workers
//! drain their queues and exit once every connection is gone.
//! [`ServerHandle::shutdown`] joins every thread — acceptor, workers,
//! *and* connection threads — so when it returns the process holds no
//! server state and no thread has leaked.

use crate::engine::Engine;
use crate::protocol::{error_response, ingest_request_json, ok_response, InitSpec, Request};
use crate::snapshot::{check_meta, RecoverReport, ShardDurability};
use crate::transport::{IoStream, TcpTransport, Transport};
use ddn_stats::Json;
use ddn_telemetry::{Collector, TelemetrySnapshot};
use ddn_trace::TraceRecord;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hook type for [`ServeConfig::wrap`]: interposes on every accepted
/// connection's transport.
pub type TransportWrap = Arc<dyn Fn(Box<dyn Transport>) -> Box<dyn Transport> + Send + Sync>;

/// Server configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of shard workers (each owns a disjoint set of sessions).
    pub shards: usize,
    /// Bounded queue capacity per shard, in messages.
    pub queue_capacity: usize,
    /// Hard cap on one request line, in bytes; longer lines get an error
    /// response and are discarded without buffering (anti-DoS).
    pub max_line_bytes: usize,
    /// Optional hook wrapping every accepted connection's transport
    /// (chaos tests inject faults here).
    pub wrap: Option<TransportWrap>,
    /// Test-only failpoint: an `ingest` whose session id contains this
    /// marker panics inside the shard worker, exercising the panic
    /// isolation path deterministically.
    pub failpoint: Option<String>,
    /// Durable-state directory. `None` (the default) keeps all session
    /// state in memory; `Some` enables per-shard write-ahead logging,
    /// periodic snapshots, and crash-resume on startup (DESIGN.md §12).
    pub data_dir: Option<PathBuf>,
    /// Snapshot cadence in WAL frames: after this many logged requests a
    /// shard rotates to a fresh snapshot and an empty WAL. Ignored
    /// without [`ServeConfig::data_dir`].
    pub snapshot_every: u64,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("addr", &self.addr)
            .field("shards", &self.shards)
            .field("queue_capacity", &self.queue_capacity)
            .field("max_line_bytes", &self.max_line_bytes)
            .field("wrap", &self.wrap.as_ref().map(|_| "<hook>"))
            .field("failpoint", &self.failpoint)
            .field("data_dir", &self.data_dir)
            .field("snapshot_every", &self.snapshot_every)
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            queue_capacity: 256,
            max_line_bytes: 1 << 20,
            wrap: None,
            failpoint: None,
            data_dir: None,
            snapshot_every: 256,
        }
    }
}

/// Server-wide counters, surfaced by the `health` verb as telemetry
/// counters (`serve.*`).
#[derive(Default)]
pub struct ServerStats {
    ingest_records: AtomicU64,
    conn_active: AtomicU64,
    backpressure_stalls: AtomicU64,
    queue_depth: AtomicU64,
    dedup_replays: AtomicU64,
    fault_conn_errors: AtomicU64,
    fault_worker_restarts: AtomicU64,
    wal_frames: AtomicU64,
    wal_bytes: AtomicU64,
    snapshot_writes: AtomicU64,
    recover_frames_replayed: AtomicU64,
    recover_truncated_frames: AtomicU64,
    recover_sessions: AtomicU64,
}

impl ServerStats {
    /// Total records accepted across all sessions. Replayed (duplicate)
    /// batches do not count: this is the exactly-once tally.
    pub fn ingest_records(&self) -> u64 {
        self.ingest_records.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn conn_active(&self) -> u64 {
        self.conn_active.load(Ordering::Relaxed)
    }

    /// Times a connection found its shard queue full and had to block.
    pub fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls.load(Ordering::Relaxed)
    }

    /// Messages currently queued across all shards.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Sequenced ingest batches answered from the dedup window instead of
    /// being re-applied (each one is a retry the protocol made safe).
    pub fn dedup_replays(&self) -> u64 {
        self.dedup_replays.load(Ordering::Relaxed)
    }

    /// Connection-level faults survived: read/write errors, torn lines at
    /// EOF, oversized lines.
    pub fn fault_conn_errors(&self) -> u64 {
        self.fault_conn_errors.load(Ordering::Relaxed)
    }

    /// Shard-worker panics caught and recovered from (one quarantined
    /// session each).
    pub fn fault_worker_restarts(&self) -> u64 {
        self.fault_worker_restarts.load(Ordering::Relaxed)
    }

    /// WAL frames appended across all shards (zero with durability off).
    pub fn wal_frames(&self) -> u64 {
        self.wal_frames.load(Ordering::Relaxed)
    }

    /// WAL bytes appended across all shards, frame headers included.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot files written (the one each shard writes at startup
    /// after recovery counts too).
    pub fn snapshot_writes(&self) -> u64 {
        self.snapshot_writes.load(Ordering::Relaxed)
    }

    /// WAL frames replayed during startup recovery.
    pub fn recover_frames_replayed(&self) -> u64 {
        self.recover_frames_replayed.load(Ordering::Relaxed)
    }

    /// Invalid WAL tail frames discarded during startup recovery (torn
    /// writes, checksum failures).
    pub fn recover_truncated_frames(&self) -> u64 {
        self.recover_truncated_frames.load(Ordering::Relaxed)
    }

    /// Sessions restored from snapshots during startup recovery.
    pub fn recover_sessions(&self) -> u64 {
        self.recover_sessions.load(Ordering::Relaxed)
    }

    /// Folds one shard's startup recovery into the counters. Opening a
    /// shard's durable state also writes its post-recovery snapshot, so
    /// this counts one snapshot write.
    fn record_recovery(&self, report: &RecoverReport) {
        self.recover_sessions
            .fetch_add(report.sessions, Ordering::Relaxed);
        self.recover_frames_replayed
            .fetch_add(report.frames_replayed, Ordering::Relaxed);
        self.recover_truncated_frames
            .fetch_add(report.truncated_frames, Ordering::Relaxed);
        self.snapshot_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// The counters as a telemetry collector (merged into `health`
    /// snapshots alongside per-shard estimator health).
    pub fn collector(&self) -> Collector {
        let mut c = Collector::default();
        c.counts.push(("serve.ingest.records", self.ingest_records()));
        c.counts.push(("serve.queue.depth", self.queue_depth()));
        c.counts.push(("serve.conn.active", self.conn_active()));
        c.counts
            .push(("serve.backpressure.stalls", self.backpressure_stalls()));
        c.counts.push(("serve.dedup.replays", self.dedup_replays()));
        c.counts
            .push(("serve.fault.conn_errors", self.fault_conn_errors()));
        c.counts
            .push(("serve.fault.worker_restarts", self.fault_worker_restarts()));
        c.counts.push(("serve.wal.frames", self.wal_frames()));
        c.counts.push(("serve.wal.bytes", self.wal_bytes()));
        c.counts
            .push(("serve.snapshot.writes", self.snapshot_writes()));
        c.counts.push((
            "serve.recover.frames_replayed",
            self.recover_frames_replayed(),
        ));
        c.counts.push((
            "serve.recover.truncated_frames",
            self.recover_truncated_frames(),
        ));
        c.counts
            .push(("serve.recover.sessions", self.recover_sessions()));
        c
    }
}

/// Messages a connection thread sends to a shard worker. Replies travel
/// over a per-request channel so a slow shard never blocks writes for
/// other connections.
enum ShardMsg {
    Init(InitSpec, Sender<Json>),
    Ingest {
        session: String,
        records: Vec<TraceRecord>,
        seq: Option<u64>,
        reply: Sender<Json>,
    },
    Estimate {
        session: String,
        reply: Sender<Json>,
    },
    /// Health probe: the shard answers with its estimator-health
    /// collector.
    Collect(Sender<Collector>),
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] for a clean stop.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Requests shutdown and joins every server thread. Idempotent-safe
    /// with a client-sent `shutdown` verb (both paths set the same flag).
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor if it is parked in accept().
        let _ = TcpStream::connect(self.local_addr);
        self.join();
    }

    /// Blocks until the server stops — i.e. until some client sends the
    /// `shutdown` verb — then joins every thread. This is what
    /// `ddn serve` does after printing the bound address.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor is gone, so no new connection threads can appear;
        // drain and join the ones that exist. They observe the shutdown
        // flag within one poll interval.
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *lock(&self.conns));
        for h in handles {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Locks a mutex, shrugging off poisoning: the guarded data here (thread
/// handles, quarantine sets) stays valid even if some holder panicked.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// How long a connection thread waits on a quiet socket before checking
/// the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Binds `config.addr` and starts the acceptor and shard workers.
pub fn serve(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    assert!(config.shards > 0, "need at least one shard");
    assert!(config.queue_capacity > 0, "queue capacity must be positive");
    assert!(config.max_line_bytes > 0, "line cap must be positive");
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    // Crash-resume happens here, on the caller's thread, before any
    // traffic can arrive: each shard restores its snapshot and replays
    // its WAL tail, so serve() returning means recovery is complete.
    if let Some(dir) = &config.data_dir {
        check_meta(dir, config.shards)?;
    }
    let mut senders = Vec::with_capacity(config.shards);
    let mut workers = Vec::with_capacity(config.shards);
    for i in 0..config.shards {
        let (tx, rx) = sync_channel::<ShardMsg>(config.queue_capacity);
        senders.push(tx);
        let stats = Arc::clone(&stats);
        let failpoint = config.failpoint.clone();
        let mut engine = Engine::new();
        let mut poisoned: HashSet<String> = HashSet::new();
        let durability = match &config.data_dir {
            None => None,
            Some(dir) => {
                let (d, report) = ShardDurability::open(
                    dir,
                    i,
                    config.snapshot_every,
                    failpoint.as_deref(),
                    &mut engine,
                    &mut poisoned,
                )?;
                stats.record_recovery(&report);
                Some(d)
            }
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("ddn-serve-shard-{i}"))
                .spawn(move || shard_worker(rx, stats, failpoint, engine, poisoned, durability))
                .expect("spawn shard worker"),
        );
    }

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let conns = Arc::clone(&conns);
        let wrap = config.wrap.clone();
        let max_line_bytes = config.max_line_bytes;
        std::thread::Builder::new()
            .name("ddn-serve-acceptor".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    let mut transport: Box<dyn Transport> =
                        Box::new(TcpTransport::new(stream));
                    if let Some(wrap) = &wrap {
                        transport = wrap(transport);
                    }
                    let senders = senders.clone();
                    let shutdown = Arc::clone(&shutdown);
                    let stats = Arc::clone(&stats);
                    let addr = local_addr;
                    let spawned = std::thread::Builder::new()
                        .name("ddn-serve-conn".to_string())
                        .spawn(move || {
                            stats.conn_active.fetch_add(1, Ordering::Relaxed);
                            handle_connection(
                                transport,
                                &senders,
                                &shutdown,
                                &stats,
                                addr,
                                max_line_bytes,
                            );
                            stats.conn_active.fetch_sub(1, Ordering::Relaxed);
                        });
                    if let Ok(handle) = spawned {
                        let mut guard = lock(&conns);
                        // Reap finished connections so the handle list
                        // stays proportional to live connections, not to
                        // total connections ever accepted.
                        guard.retain(|h| !h.is_finished());
                        guard.push(handle);
                    }
                }
                // Dropping `senders` here lets workers exit once every
                // connection thread has also dropped its clones.
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        local_addr,
        shutdown,
        stats,
        acceptor: Some(acceptor),
        workers,
        conns,
    })
}

fn degraded_response(session: &str) -> Json {
    error_response(&format!(
        "session {session:?} degraded: a worker panicked while serving it; re-init to recover"
    ))
}

/// Write-ahead-logs one request line, updating the WAL counters.
/// `Ok(())` with no durability configured. On an I/O error the request
/// MUST NOT be applied (the ack would describe state a restart loses);
/// the caller returns the error to the client instead.
fn wal_log(
    durability: &mut Option<ShardDurability>,
    stats: &ServerStats,
    line: &str,
) -> std::io::Result<()> {
    if let Some(d) = durability {
        let bytes = d.log_request(line)?;
        stats.wal_frames.fetch_add(1, Ordering::Relaxed);
        stats.wal_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
    Ok(())
}

/// Rotates to a fresh snapshot when the cadence says so. Snapshot I/O
/// failures are deliberately non-fatal: the WAL already holds every
/// acknowledged request, so losing a rotation costs replay time at the
/// next startup, not state.
fn wal_maybe_snapshot(
    durability: &mut Option<ShardDurability>,
    stats: &ServerStats,
    engine: &Engine,
    poisoned: &HashSet<String>,
) {
    if let Some(d) = durability {
        match d.maybe_snapshot(engine, poisoned) {
            Ok(true) => {
                stats.snapshot_writes.fetch_add(1, Ordering::Relaxed);
            }
            Ok(false) => {}
            Err(e) => eprintln!("ddn-serve: snapshot write failed: {e}"),
        }
    }
}

fn shard_worker(
    rx: Receiver<ShardMsg>,
    stats: Arc<ServerStats>,
    failpoint: Option<String>,
    mut engine: Engine,
    // Sessions whose request panicked: their state is untrustworthy, so
    // they answer `degraded` until a client re-inits them. Recovery
    // pre-populates this from the snapshot.
    mut poisoned: HashSet<String>,
    mut durability: Option<ShardDurability>,
) {
    while let Ok(msg) = rx.recv() {
        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        match msg {
            ShardMsg::Init(spec, reply) => {
                // Write-ahead: the init line is durable before the session
                // exists, so an acknowledged init always survives a kill.
                if let Err(e) = wal_log(&mut durability, &stats, &spec.to_json().to_string()) {
                    let _ = reply.send(error_response(&format!("durability failure: {e}")));
                    continue;
                }
                // Re-init lifts a quarantine: the replacement session is
                // built from scratch, sequence numbers included.
                poisoned.remove(&spec.session);
                let _ = reply.send(engine.handle_init(spec));
                wal_maybe_snapshot(&mut durability, &stats, &engine, &poisoned);
            }
            ShardMsg::Ingest {
                session,
                records,
                seq,
                reply,
            } => {
                if poisoned.contains(&session) {
                    let _ = reply.send(degraded_response(&session));
                    continue;
                }
                // Write-ahead of the verdict, whatever it turns out to be:
                // even a rejected sequenced batch consumes its sequence
                // number, so replay must reproduce the rejection or
                // recovery would desynchronize the dedup window.
                let line = ingest_request_json(&session, &records, seq).to_string();
                if let Err(e) = wal_log(&mut durability, &stats, &line) {
                    let _ = reply.send(error_response(&format!("durability failure: {e}")));
                    continue;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(marker) = &failpoint {
                        if session.contains(marker.as_str()) {
                            panic!("failpoint hit for session {session:?}");
                        }
                    }
                    engine.handle_ingest(&session, &records, seq)
                }));
                match outcome {
                    Ok(resp) => {
                        let duplicate =
                            resp.get("duplicate") == Some(&Json::Bool(true));
                        if duplicate {
                            stats.dedup_replays.fetch_add(1, Ordering::Relaxed);
                        } else if let Some(accepted) =
                            resp.get("accepted").and_then(Json::as_u64)
                        {
                            stats.ingest_records.fetch_add(accepted, Ordering::Relaxed);
                        }
                        let _ = reply.send(resp);
                        wal_maybe_snapshot(&mut durability, &stats, &engine, &poisoned);
                    }
                    Err(_) => {
                        // The worker survives the panic: quarantine the
                        // one session whose state is now suspect and keep
                        // serving the rest of the shard.
                        stats.fault_worker_restarts.fetch_add(1, Ordering::Relaxed);
                        engine.remove_session(&session);
                        poisoned.insert(session.clone());
                        let _ = reply.send(degraded_response(&session));
                    }
                }
            }
            ShardMsg::Estimate { session, reply } => {
                if poisoned.contains(&session) {
                    let _ = reply.send(degraded_response(&session));
                    continue;
                }
                let _ = reply.send(engine.handle_estimate(&session));
            }
            ShardMsg::Collect(reply) => {
                let mut c = engine.collector();
                for session in &poisoned {
                    c.health
                        .push((format!("serve/{session}/degraded"), vec![("poisoned", 1.0)]));
                }
                let _ = reply.send(c);
            }
        }
    }
}

fn shard_of(session: &str, shards: usize) -> usize {
    let mut h = DefaultHasher::new();
    session.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Sends to a shard with backpressure accounting: non-blocking first;
/// on a full queue counts a stall and blocks (stalling only this
/// connection).
fn send_with_backpressure(
    tx: &SyncSender<ShardMsg>,
    msg: ShardMsg,
    stats: &ServerStats,
) -> Result<(), ()> {
    stats.queue_depth.fetch_add(1, Ordering::Relaxed);
    match tx.try_send(msg) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(msg)) => {
            stats.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
            tx.send(msg).map_err(|_| {
                stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            })
        }
        Err(TrySendError::Disconnected(_)) => {
            stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            Err(())
        }
    }
}

/// Routes one parsed request and returns the response to write, plus
/// whether to close the connection after replying.
fn dispatch(
    req: Request,
    senders: &[SyncSender<ShardMsg>],
    shutdown: &AtomicBool,
    stats: &ServerStats,
    local_addr: SocketAddr,
) -> (Json, bool) {
    // Round-trips one message to a shard and waits for its reply.
    let ask = |shard: usize, msg: ShardMsg, rx: Receiver<Json>| -> Json {
        if send_with_backpressure(&senders[shard], msg, stats).is_err() {
            return error_response("server is shutting down");
        }
        rx.recv()
            .unwrap_or_else(|_| error_response("shard worker unavailable"))
    };
    match req {
        Request::Init(spec) => {
            let shard = shard_of(&spec.session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            (ask(shard, ShardMsg::Init(spec, tx), rx), false)
        }
        Request::Ingest {
            session,
            records,
            seq,
        } => {
            let shard = shard_of(&session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            let msg = ShardMsg::Ingest {
                session,
                records,
                seq,
                reply: tx,
            };
            (ask(shard, msg, rx), false)
        }
        Request::Estimate { session } => {
            let shard = shard_of(&session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            let msg = ShardMsg::Estimate {
                session,
                reply: tx,
            };
            (ask(shard, msg, rx), false)
        }
        Request::Health => {
            let mut collectors = Vec::with_capacity(senders.len() + 1);
            collectors.push(stats.collector());
            for tx in senders {
                let (ctx, crx) = std::sync::mpsc::channel();
                if send_with_backpressure(tx, ShardMsg::Collect(ctx), stats).is_ok() {
                    if let Ok(c) = crx.recv() {
                        collectors.push(c);
                    }
                }
            }
            let mut snap = TelemetrySnapshot::from_runs(&collectors);
            snap.set_threads(senders.len());
            (
                ok_response(vec![("telemetry", snap.to_json())]),
                false,
            )
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag.
            let _ = TcpStream::connect(local_addr);
            (
                ok_response(vec![("shutting_down", Json::Bool(true))]),
                true,
            )
        }
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// The line exceeded the cap; its bytes were discarded up to the
    /// newline and the buffer is empty.
    Overflow,
    /// The peer closed; `torn` means it closed mid-line (bytes arrived
    /// after the last newline).
    Eof { torn: bool },
    /// The server is shutting down.
    Shutdown,
}

/// Reads one `\n`-terminated line of at most `max` bytes into `line`,
/// byte-wise (arbitrary junk, including invalid UTF-8, is fine). Handles
/// the read-timeout poll against the shutdown flag internally so the
/// oversized-discard state survives quiet periods.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    line: &mut Vec<u8>,
    max: usize,
    shutdown: &AtomicBool,
) -> std::io::Result<LineRead> {
    line.clear();
    let mut overflow = false;
    loop {
        let (found_newline, used) = {
            let buf = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(LineRead::Shutdown);
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                return Ok(LineRead::Eof {
                    torn: !line.is_empty() || overflow,
                });
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if !overflow {
                        line.extend_from_slice(&buf[..i]);
                    }
                    (true, i + 1)
                }
                None => {
                    if !overflow {
                        line.extend_from_slice(buf);
                    }
                    (false, buf.len())
                }
            }
        };
        reader.consume(used);
        if line.len() > max {
            // Stop buffering; keep consuming until the newline so the
            // connection can continue with the next request.
            overflow = true;
            line.clear();
        }
        if found_newline {
            return Ok(if overflow {
                LineRead::Overflow
            } else {
                LineRead::Line
            });
        }
    }
}

fn handle_connection(
    transport: Box<dyn Transport>,
    senders: &[SyncSender<ShardMsg>],
    shutdown: &AtomicBool,
    stats: &ServerStats,
    local_addr: SocketAddr,
    max_line_bytes: usize,
) {
    // A finite read timeout lets the thread notice shutdown while the
    // client is idle; partial reads accumulate in `line` across timeouts,
    // so no bytes are lost.
    let _ = transport.set_read_timeout(Some(POLL_INTERVAL));
    let Ok(write_half) = transport.try_clone_transport() else {
        return;
    };
    let mut writer = IoStream(write_half);
    let mut reader = BufReader::new(IoStream(transport));
    let mut line: Vec<u8> = Vec::new();
    loop {
        let outcome = match read_bounded_line(&mut reader, &mut line, max_line_bytes, shutdown)
        {
            Ok(outcome) => outcome,
            Err(_) => {
                // Socket-level failure (injected or real): this
                // connection is over, the server is not.
                stats.fault_conn_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        };
        let (resp, close) = match outcome {
            LineRead::Shutdown => break,
            LineRead::Eof { torn } => {
                if torn {
                    // The peer died mid-line; the partial request is
                    // dropped (it was never acknowledged).
                    stats.fault_conn_errors.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            LineRead::Overflow => {
                stats.fault_conn_errors.fetch_add(1, Ordering::Relaxed);
                (
                    error_response(&format!(
                        "request line exceeds {max_line_bytes} bytes"
                    )),
                    false,
                )
            }
            LineRead::Line => {
                // Junk bytes are tolerated: lossy decoding plus parse
                // errors produce an error response, never a dropped
                // connection or a dead server.
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    continue;
                }
                match Request::parse(trimmed) {
                    Ok(req) => dispatch(req, senders, shutdown, stats, local_addr),
                    Err(e) => (error_response(&e), false),
                }
            }
        };
        if writeln!(writer, "{}", resp.to_string()).is_err() {
            stats.fault_conn_errors.fetch_add(1, Ordering::Relaxed);
            break;
        }
        if close {
            break;
        }
    }
}
