//! The TCP transport: acceptor, per-connection readers, and the sharded
//! worker pool.
//!
//! ## Threading model
//!
//! ```text
//! acceptor ──spawn──▶ connection threads (one per client)
//!                         │  parse line → Request
//!                         │  hash(session) → shard
//!                         ▼
//!                bounded sync_channel (backpressure)
//!                         │
//!                         ▼
//!                shard workers (own the sessions; no locks)
//! ```
//!
//! Each session lives on exactly one shard (chosen by hashing its id), so
//! session state needs no synchronization and requests for one session
//! are processed in arrival order — an `estimate` sent after an `ingest`
//! on the same connection always sees the ingested records.
//!
//! All socket I/O goes through the [`Transport`] abstraction; chaos tests
//! install a [`ServeConfig::wrap`] hook to interpose a deterministic
//! fault injector between the protocol layer and the kernel.
//!
//! ## Backpressure
//!
//! Ingest queues are bounded ([`ServeConfig::queue_capacity`] messages
//! per shard). A connection thread first tries a non-blocking send; when
//! the shard's queue is full it counts a `serve.backpressure.stalls`
//! event and falls back to a blocking send, which stalls *that client's*
//! TCP stream (and eventually the client, via TCP flow control) without
//! affecting other connections.
//!
//! ## Fault isolation
//!
//! A connection that sends junk bytes, a torn line, or an oversized line
//! gets an error response (or is dropped at EOF) without affecting other
//! connections; such events count `serve.fault.conn_errors`. A shard
//! worker that panics mid-request is caught ([`std::panic::catch_unwind`]
//! around each message), the session whose request panicked is
//! quarantined (its state may be half-applied), and the worker keeps
//! serving its other sessions — the panic costs one session, not the
//! server. Quarantined sessions answer every request with a `degraded`
//! error (re-`init` lifts the quarantine) and show up in `health` under
//! `serve/<session>/degraded`.
//!
//! ## Shutdown contract
//!
//! A `shutdown` verb (the SIGTERM-equivalent for this zero-dependency
//! server) or [`ServerHandle::shutdown`] sets a flag, wakes the acceptor
//! with a loopback connection, and answers in-flight requests. Connection
//! threads notice the flag within one poll interval and close; workers
//! drain their queues and exit once every connection is gone.
//! [`ServerHandle::shutdown`] joins every thread — acceptor, workers,
//! *and* connection threads — so when it returns the process holds no
//! server state and no thread has leaked.

use crate::engine::Engine;
use crate::flightrec::{flightrec_path, FlightRecorder};
use crate::protocol::{
    attach_id, error_response, ingest_request_json, ok_response, request_id, InitSpec, Request,
};
use crate::snapshot::{check_meta, RecoverReport, ShardDurability};
use crate::transport::{IoStream, TcpTransport, Transport};
use ddn_stats::Json;
use ddn_telemetry::{Collector, Counter, Gauge, Histogram, Registry, TelemetrySnapshot};
use ddn_trace::TraceRecord;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hook type for [`ServeConfig::wrap`]: interposes on every accepted
/// connection's transport.
pub type TransportWrap = Arc<dyn Fn(Box<dyn Transport>) -> Box<dyn Transport> + Send + Sync>;

/// Server configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of shard workers (each owns a disjoint set of sessions).
    pub shards: usize,
    /// Bounded queue capacity per shard, in messages.
    pub queue_capacity: usize,
    /// Hard cap on one request line, in bytes; longer lines get an error
    /// response and are discarded without buffering (anti-DoS).
    pub max_line_bytes: usize,
    /// Optional hook wrapping every accepted connection's transport
    /// (chaos tests inject faults here).
    pub wrap: Option<TransportWrap>,
    /// Test-only failpoint: an `ingest` whose session id contains this
    /// marker panics inside the shard worker, exercising the panic
    /// isolation path deterministically.
    pub failpoint: Option<String>,
    /// Durable-state directory. `None` (the default) keeps all session
    /// state in memory; `Some` enables per-shard write-ahead logging,
    /// periodic snapshots, and crash-resume on startup (DESIGN.md §12).
    pub data_dir: Option<PathBuf>,
    /// Snapshot cadence in WAL frames: after this many logged requests a
    /// shard rotates to a fresh snapshot and an empty WAL. Ignored
    /// without [`ServeConfig::data_dir`].
    pub snapshot_every: u64,
    /// Per-shard flight-recorder capacity in events (the post-mortem
    /// ring dumped on worker panic and served by `stats {"flight":true}`).
    pub flight_capacity: usize,
    /// Record per-request trace metrics (queue-wait and handler-time
    /// histograms, flight-recorder events). On by default; the observe
    /// bench turns it off to measure the tracing overhead itself.
    pub trace_requests: bool,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("addr", &self.addr)
            .field("shards", &self.shards)
            .field("queue_capacity", &self.queue_capacity)
            .field("max_line_bytes", &self.max_line_bytes)
            .field("wrap", &self.wrap.as_ref().map(|_| "<hook>"))
            .field("failpoint", &self.failpoint)
            .field("data_dir", &self.data_dir)
            .field("snapshot_every", &self.snapshot_every)
            .field("flight_capacity", &self.flight_capacity)
            .field("trace_requests", &self.trace_requests)
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            queue_capacity: 256,
            max_line_bytes: 1 << 20,
            wrap: None,
            failpoint: None,
            data_dir: None,
            snapshot_every: 256,
            flight_capacity: 256,
            trace_requests: true,
        }
    }
}

/// Server-wide counters, surfaced by the `health` verb as telemetry
/// counters (`serve.*`).
///
/// Since the observability plane landed (DESIGN.md §13) the monotonic
/// counters live in the server's [`Registry`] — the same instance the
/// `stats` verb snapshots — so there is exactly one source of truth;
/// the accessor methods below are thin reads of the registry handles.
/// The two up/down values (`conn_active`, `queue_depth`) stay plain
/// atomics (a [`Counter`] is monotonic) and are mirrored into registry
/// *gauges* of the same name on every change.
pub struct ServerStats {
    registry: Arc<Registry>,
    ingest_records: Arc<Counter>,
    backpressure_stalls: Arc<Counter>,
    dedup_replays: Arc<Counter>,
    fault_conn_errors: Arc<Counter>,
    fault_worker_restarts: Arc<Counter>,
    wal_frames: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    snapshot_writes: Arc<Counter>,
    recover_frames_replayed: Arc<Counter>,
    recover_truncated_frames: Arc<Counter>,
    recover_sessions: Arc<Counter>,
    conn_active: AtomicU64,
    queue_depth: AtomicU64,
    conn_gauge: Arc<Gauge>,
    queue_gauge: Arc<Gauge>,
}

impl Default for ServerStats {
    /// Builds stats over a fresh private registry. Each server gets its
    /// own instance (never [`Registry::global`]): tests run many servers
    /// in one process, and the `stats` determinism contract — identical
    /// workloads produce identical snapshots — requires isolation.
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        Self {
            ingest_records: registry.counter("serve.ingest.records"),
            backpressure_stalls: registry.counter("serve.backpressure.stalls"),
            dedup_replays: registry.counter("serve.dedup.replays"),
            fault_conn_errors: registry.counter("serve.fault.conn_errors"),
            fault_worker_restarts: registry.counter("serve.fault.worker_restarts"),
            wal_frames: registry.counter("serve.wal.frames"),
            wal_bytes: registry.counter("serve.wal.bytes"),
            snapshot_writes: registry.counter("serve.snapshot.writes"),
            recover_frames_replayed: registry.counter("serve.recover.frames_replayed"),
            recover_truncated_frames: registry.counter("serve.recover.truncated_frames"),
            recover_sessions: registry.counter("serve.recover.sessions"),
            conn_active: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            conn_gauge: registry.gauge("serve.conn.active"),
            queue_gauge: registry.gauge("serve.queue.depth"),
            registry,
        }
    }
}

impl ServerStats {
    /// The live metric registry backing these counters — the object the
    /// `stats` verb snapshots, and where the per-verb/per-shard request
    /// histograms and gauges live.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Total records accepted across all sessions. Replayed (duplicate)
    /// batches do not count: this is the exactly-once tally.
    pub fn ingest_records(&self) -> u64 {
        self.ingest_records.get()
    }

    /// Connections currently open.
    pub fn conn_active(&self) -> u64 {
        self.conn_active.load(Ordering::Relaxed)
    }

    /// Times a connection found its shard queue full and had to block.
    pub fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls.get()
    }

    /// Messages currently queued across all shards.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Sequenced ingest batches answered from the dedup window instead of
    /// being re-applied (each one is a retry the protocol made safe).
    pub fn dedup_replays(&self) -> u64 {
        self.dedup_replays.get()
    }

    /// Connection-level faults survived: read/write errors, torn lines at
    /// EOF, oversized lines.
    pub fn fault_conn_errors(&self) -> u64 {
        self.fault_conn_errors.get()
    }

    /// Shard-worker panics caught and recovered from (one quarantined
    /// session each).
    pub fn fault_worker_restarts(&self) -> u64 {
        self.fault_worker_restarts.get()
    }

    /// WAL frames appended across all shards (zero with durability off).
    pub fn wal_frames(&self) -> u64 {
        self.wal_frames.get()
    }

    /// WAL bytes appended across all shards, frame headers included.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.get()
    }

    /// Snapshot files written (the one each shard writes at startup
    /// after recovery counts too).
    pub fn snapshot_writes(&self) -> u64 {
        self.snapshot_writes.get()
    }

    /// WAL frames replayed during startup recovery.
    pub fn recover_frames_replayed(&self) -> u64 {
        self.recover_frames_replayed.get()
    }

    /// Invalid WAL tail frames discarded during startup recovery (torn
    /// writes, checksum failures).
    pub fn recover_truncated_frames(&self) -> u64 {
        self.recover_truncated_frames.get()
    }

    /// Sessions restored from snapshots during startup recovery.
    pub fn recover_sessions(&self) -> u64 {
        self.recover_sessions.get()
    }

    fn conn_opened(&self) {
        let now = self.conn_active.fetch_add(1, Ordering::Relaxed) + 1;
        self.conn_gauge.set(now as f64);
    }

    fn conn_closed(&self) {
        let now = self.conn_active.fetch_sub(1, Ordering::Relaxed) - 1;
        self.conn_gauge.set(now as f64);
    }

    fn queue_inc(&self) {
        let now = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_gauge.set(now as f64);
    }

    fn queue_dec(&self) {
        let now = self.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
        self.queue_gauge.set(now as f64);
    }

    /// Folds one shard's startup recovery into the counters. Opening a
    /// shard's durable state also writes its post-recovery snapshot, so
    /// this counts one snapshot write.
    fn record_recovery(&self, report: &RecoverReport) {
        self.recover_sessions.add(report.sessions);
        self.recover_frames_replayed.add(report.frames_replayed);
        self.recover_truncated_frames.add(report.truncated_frames);
        self.snapshot_writes.inc();
    }

    /// The counters as a telemetry collector (merged into `health`
    /// snapshots alongside per-shard estimator health).
    pub fn collector(&self) -> Collector {
        let mut c = Collector::default();
        c.counts.push(("serve.ingest.records", self.ingest_records()));
        c.counts.push(("serve.queue.depth", self.queue_depth()));
        c.counts.push(("serve.conn.active", self.conn_active()));
        c.counts
            .push(("serve.backpressure.stalls", self.backpressure_stalls()));
        c.counts.push(("serve.dedup.replays", self.dedup_replays()));
        c.counts
            .push(("serve.fault.conn_errors", self.fault_conn_errors()));
        c.counts
            .push(("serve.fault.worker_restarts", self.fault_worker_restarts()));
        c.counts.push(("serve.wal.frames", self.wal_frames()));
        c.counts.push(("serve.wal.bytes", self.wal_bytes()));
        c.counts
            .push(("serve.snapshot.writes", self.snapshot_writes()));
        c.counts.push((
            "serve.recover.frames_replayed",
            self.recover_frames_replayed(),
        ));
        c.counts.push((
            "serve.recover.truncated_frames",
            self.recover_truncated_frames(),
        ));
        c.counts
            .push(("serve.recover.sessions", self.recover_sessions()));
        c
    }
}

/// Messages a connection thread sends to a shard worker. Replies travel
/// over a per-request channel so a slow shard never blocks writes for
/// other connections.
enum ShardMsg {
    Init {
        spec: InitSpec,
        /// Enqueue time, for the queue-wait histogram.
        at: Instant,
        reply: Sender<Json>,
    },
    Ingest {
        session: String,
        records: Vec<TraceRecord>,
        seq: Option<u64>,
        at: Instant,
        reply: Sender<Json>,
    },
    Estimate {
        session: String,
        at: Instant,
        reply: Sender<Json>,
    },
    /// Health probe: the shard answers with its estimator-health
    /// collector.
    Collect(Sender<Collector>),
    /// Flight-recorder read: the shard answers with its ring as a JSON
    /// array (oldest first) and, when `dump` is set and durability is
    /// configured, also rewrites `flightrec-<shard>.jsonl`.
    Flight { dump: bool, reply: Sender<Json> },
}

/// Per-verb request metrics: the shared request counter plus this
/// shard's latency histograms (queue wait and handler wall time, both
/// in nanoseconds).
struct ReqMetrics {
    count: Arc<Counter>,
    queue_ns: Arc<Histogram>,
    handle_ns: Arc<Histogram>,
}

impl ReqMetrics {
    fn shard(reg: &Registry, verb: &str, shard: usize) -> Self {
        Self {
            count: reg.counter(&format!("serve.req.{verb}")),
            queue_ns: reg.histogram(&format!("serve.req.{verb}.queue_ns.s{shard}")),
            handle_ns: reg.histogram(&format!("serve.req.{verb}.handle_ns.s{shard}")),
        }
    }
}

/// One shard worker's metric handles, resolved once before the worker
/// spawns — the hot loop never touches the registry mutex, and every
/// shard's metric names exist in the registry before any traffic
/// arrives (so the `stats` key set is workload-independent).
struct ShardMetrics {
    init: ReqMetrics,
    ingest: ReqMetrics,
    estimate: ReqMetrics,
    /// Live (non-quarantined) sessions on this shard.
    sessions: Arc<Gauge>,
    /// WAL frames since the last snapshot rotation, as of this shard's
    /// most recent logged request (set at log time, not rotation time,
    /// so the value is settled before the request's reply is sent).
    wal_lag: Arc<Gauge>,
}

impl ShardMetrics {
    fn new(reg: &Registry, shard: usize) -> Self {
        Self {
            init: ReqMetrics::shard(reg, "init", shard),
            ingest: ReqMetrics::shard(reg, "ingest", shard),
            estimate: ReqMetrics::shard(reg, "estimate", shard),
            sessions: reg.gauge(&format!("serve.sessions.live.s{shard}")),
            wal_lag: reg.gauge(&format!("serve.wal.lag_frames.s{shard}")),
        }
    }
}

/// Everything a shard worker needs for observability, bundled so the
/// worker signature stays readable.
struct ShardCtx {
    shard: usize,
    trace: bool,
    flight_capacity: usize,
    /// Where panic dumps and on-demand dumps go (the durability dir).
    flight_dir: Option<PathBuf>,
    metrics: ShardMetrics,
}

/// Saturating nanosecond count of a duration.
fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// `"ok"` or `"error"` from a response envelope.
fn outcome_of(resp: &Json) -> &'static str {
    if resp.get("ok") == Some(&Json::Bool(true)) {
        "ok"
    } else {
        "error"
    }
}

/// Books one finished request: counts it, records queue-wait and
/// handler latency (when tracing), and appends a flight event. Called
/// BEFORE the reply is sent, so a client that reads `stats` right after
/// its response always sees its own request counted — the per-verb
/// histogram-total == counter invariant holds at every observable
/// moment.
#[allow(clippy::too_many_arguments)]
fn observe_request(
    ctx: &ShardCtx,
    flight: &mut FlightRecorder,
    metrics: &ReqMetrics,
    verb: &'static str,
    session: &str,
    seq: Option<u64>,
    records: u64,
    outcome: &'static str,
    at: Instant,
    started: Instant,
) {
    metrics.count.inc();
    let dur_ns = if ctx.trace {
        let wait_ns = duration_ns(started.duration_since(at));
        let dur_ns = duration_ns(started.elapsed());
        metrics.queue_ns.record(wait_ns);
        metrics.handle_ns.record(dur_ns);
        dur_ns
    } else {
        0
    };
    flight.push(verb, session, seq, records, outcome, dur_ns);
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] for a clean stop.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Requests shutdown and joins every server thread. Idempotent-safe
    /// with a client-sent `shutdown` verb (both paths set the same flag).
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor if it is parked in accept().
        let _ = TcpStream::connect(self.local_addr);
        self.join();
    }

    /// Blocks until the server stops — i.e. until some client sends the
    /// `shutdown` verb — then joins every thread. This is what
    /// `ddn serve` does after printing the bound address.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor is gone, so no new connection threads can appear;
        // drain and join the ones that exist. They observe the shutdown
        // flag within one poll interval.
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *lock(&self.conns));
        for h in handles {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Locks a mutex, shrugging off poisoning: the guarded data here (thread
/// handles, quarantine sets) stays valid even if some holder panicked.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// How long a connection thread waits on a quiet socket before checking
/// the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Binds `config.addr` and starts the acceptor and shard workers.
pub fn serve(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    assert!(config.shards > 0, "need at least one shard");
    assert!(config.queue_capacity > 0, "queue capacity must be positive");
    assert!(config.max_line_bytes > 0, "line cap must be positive");
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    // Crash-resume happens here, on the caller's thread, before any
    // traffic can arrive: each shard restores its snapshot and replays
    // its WAL tail, so serve() returning means recovery is complete.
    if let Some(dir) = &config.data_dir {
        check_meta(dir, config.shards)?;
    }
    let mut senders = Vec::with_capacity(config.shards);
    let mut workers = Vec::with_capacity(config.shards);
    for i in 0..config.shards {
        let (tx, rx) = sync_channel::<ShardMsg>(config.queue_capacity);
        senders.push(tx);
        let stats = Arc::clone(&stats);
        let failpoint = config.failpoint.clone();
        let mut engine = Engine::new();
        let mut poisoned: HashSet<String> = HashSet::new();
        let durability = match &config.data_dir {
            None => None,
            Some(dir) => {
                let (d, report) = ShardDurability::open(
                    dir,
                    i,
                    config.snapshot_every,
                    failpoint.as_deref(),
                    &mut engine,
                    &mut poisoned,
                )?;
                stats.record_recovery(&report);
                Some(d)
            }
        };
        // Resolving the metric handles here (not in the worker) means
        // every shard's metric names are registered before serve()
        // returns, so the `stats` key set does not depend on which
        // shards happen to receive traffic. (Connection-thread verbs
        // get the same treatment just below the shard loop.)
        let ctx = ShardCtx {
            shard: i,
            trace: config.trace_requests,
            flight_capacity: config.flight_capacity,
            flight_dir: config.data_dir.clone(),
            metrics: ShardMetrics::new(stats.registry(), i),
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("ddn-serve-shard-{i}"))
                .spawn(move || {
                    shard_worker(rx, stats, failpoint, engine, poisoned, durability, ctx)
                })
                .expect("spawn shard worker"),
        );
    }

    // Eagerly register the connection-thread verbs too, so an idle
    // server and a busy one expose the same `stats` key set.
    for verb in ["health", "stats", "shutdown"] {
        stats.registry().counter(&format!("serve.req.{verb}"));
        stats
            .registry()
            .histogram(&format!("serve.req.{verb}.handle_ns"));
    }

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let conns = Arc::clone(&conns);
        let wrap = config.wrap.clone();
        let max_line_bytes = config.max_line_bytes;
        let trace = config.trace_requests;
        std::thread::Builder::new()
            .name("ddn-serve-acceptor".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    let mut transport: Box<dyn Transport> =
                        Box::new(TcpTransport::new(stream));
                    if let Some(wrap) = &wrap {
                        transport = wrap(transport);
                    }
                    let senders = senders.clone();
                    let shutdown = Arc::clone(&shutdown);
                    let stats = Arc::clone(&stats);
                    let addr = local_addr;
                    let spawned = std::thread::Builder::new()
                        .name("ddn-serve-conn".to_string())
                        .spawn(move || {
                            stats.conn_opened();
                            handle_connection(
                                transport,
                                &senders,
                                &shutdown,
                                &stats,
                                addr,
                                max_line_bytes,
                                trace,
                            );
                            stats.conn_closed();
                        });
                    if let Ok(handle) = spawned {
                        let mut guard = lock(&conns);
                        // Reap finished connections so the handle list
                        // stays proportional to live connections, not to
                        // total connections ever accepted.
                        guard.retain(|h| !h.is_finished());
                        guard.push(handle);
                    }
                }
                // Dropping `senders` here lets workers exit once every
                // connection thread has also dropped its clones.
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        local_addr,
        shutdown,
        stats,
        acceptor: Some(acceptor),
        workers,
        conns,
    })
}

fn degraded_response(session: &str) -> Json {
    error_response(&format!(
        "session {session:?} degraded: a worker panicked while serving it; re-init to recover"
    ))
}

/// Write-ahead-logs one request line, updating the WAL counters.
/// `Ok(())` with no durability configured. On an I/O error the request
/// MUST NOT be applied (the ack would describe state a restart loses);
/// the caller returns the error to the client instead.
fn wal_log(
    durability: &mut Option<ShardDurability>,
    stats: &ServerStats,
    wal_lag: &Gauge,
    line: &str,
) -> std::io::Result<()> {
    if let Some(d) = durability {
        let bytes = d.log_request(line)?;
        stats.wal_frames.inc();
        stats.wal_bytes.add(bytes as u64);
        // Set at log time (not rotation time) so the gauge is settled
        // before this request's reply goes out; it reads as "frames a
        // restart would replay, as of the last logged request".
        wal_lag.set(d.frames_since_snapshot() as f64);
    }
    Ok(())
}

/// Rotates to a fresh snapshot when the cadence says so. Snapshot I/O
/// failures are deliberately non-fatal: the WAL already holds every
/// acknowledged request, so losing a rotation costs replay time at the
/// next startup, not state.
fn wal_maybe_snapshot(
    durability: &mut Option<ShardDurability>,
    stats: &ServerStats,
    engine: &Engine,
    poisoned: &HashSet<String>,
) {
    if let Some(d) = durability {
        match d.maybe_snapshot(engine, poisoned) {
            Ok(true) => {
                stats.snapshot_writes.inc();
            }
            Ok(false) => {}
            Err(e) => eprintln!("ddn-serve: snapshot write failed: {e}"),
        }
    }
}

fn shard_worker(
    rx: Receiver<ShardMsg>,
    stats: Arc<ServerStats>,
    failpoint: Option<String>,
    mut engine: Engine,
    // Sessions whose request panicked: their state is untrustworthy, so
    // they answer `degraded` until a client re-inits them. Recovery
    // pre-populates this from the snapshot.
    mut poisoned: HashSet<String>,
    mut durability: Option<ShardDurability>,
    ctx: ShardCtx,
) {
    let mut flight = FlightRecorder::new(ctx.flight_capacity);
    while let Ok(msg) = rx.recv() {
        stats.queue_dec();
        match msg {
            ShardMsg::Init { spec, at, reply } => {
                let started = Instant::now();
                let session = spec.session.clone();
                // Write-ahead: the init line is durable before the session
                // exists, so an acknowledged init always survives a kill.
                if let Err(e) = wal_log(
                    &mut durability,
                    &stats,
                    &ctx.metrics.wal_lag,
                    &spec.to_json().to_string(),
                ) {
                    observe_request(
                        &ctx, &mut flight, &ctx.metrics.init, "init", &session, None, 0,
                        "error", at, started,
                    );
                    let _ = reply.send(error_response(&format!("durability failure: {e}")));
                    continue;
                }
                // Re-init lifts a quarantine: the replacement session is
                // built from scratch, sequence numbers included.
                poisoned.remove(&session);
                let resp = engine.handle_init(spec);
                ctx.metrics.sessions.set(engine.sessions() as f64);
                observe_request(
                    &ctx, &mut flight, &ctx.metrics.init, "init", &session, None, 0,
                    outcome_of(&resp), at, started,
                );
                let _ = reply.send(resp);
                wal_maybe_snapshot(&mut durability, &stats, &engine, &poisoned);
            }
            ShardMsg::Ingest {
                session,
                records,
                seq,
                at,
                reply,
            } => {
                let started = Instant::now();
                let nrec = records.len() as u64;
                if poisoned.contains(&session) {
                    observe_request(
                        &ctx, &mut flight, &ctx.metrics.ingest, "ingest", &session, seq,
                        nrec, "error", at, started,
                    );
                    let _ = reply.send(degraded_response(&session));
                    continue;
                }
                // Write-ahead of the verdict, whatever it turns out to be:
                // even a rejected sequenced batch consumes its sequence
                // number, so replay must reproduce the rejection or
                // recovery would desynchronize the dedup window.
                let line = ingest_request_json(&session, &records, seq).to_string();
                if let Err(e) = wal_log(&mut durability, &stats, &ctx.metrics.wal_lag, &line)
                {
                    observe_request(
                        &ctx, &mut flight, &ctx.metrics.ingest, "ingest", &session, seq,
                        nrec, "error", at, started,
                    );
                    let _ = reply.send(error_response(&format!("durability failure: {e}")));
                    continue;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(marker) = &failpoint {
                        if session.contains(marker.as_str()) {
                            panic!("failpoint hit for session {session:?}");
                        }
                    }
                    engine.handle_ingest(&session, &records, seq)
                }));
                match outcome {
                    Ok(resp) => {
                        let duplicate =
                            resp.get("duplicate") == Some(&Json::Bool(true));
                        if duplicate {
                            stats.dedup_replays.inc();
                        } else if let Some(accepted) =
                            resp.get("accepted").and_then(Json::as_u64)
                        {
                            stats.ingest_records.add(accepted);
                        }
                        ctx.metrics.sessions.set(engine.sessions() as f64);
                        let oc = if duplicate { "duplicate" } else { outcome_of(&resp) };
                        observe_request(
                            &ctx, &mut flight, &ctx.metrics.ingest, "ingest", &session,
                            seq, nrec, oc, at, started,
                        );
                        let _ = reply.send(resp);
                        wal_maybe_snapshot(&mut durability, &stats, &engine, &poisoned);
                    }
                    Err(_) => {
                        // The worker survives the panic: quarantine the
                        // one session whose state is now suspect and keep
                        // serving the rest of the shard.
                        stats.fault_worker_restarts.inc();
                        engine.remove_session(&session);
                        poisoned.insert(session.clone());
                        ctx.metrics.sessions.set(engine.sessions() as f64);
                        observe_request(
                            &ctx, &mut flight, &ctx.metrics.ingest, "ingest", &session,
                            seq, nrec, "panic", at, started,
                        );
                        // Post-mortem: dump the ring — ending with the
                        // request that panicked — before answering, so
                        // the evidence is on disk even if the process is
                        // killed right after.
                        if let Some(dir) = &ctx.flight_dir {
                            let path = flightrec_path(dir, ctx.shard);
                            if let Err(e) = flight.dump(&path) {
                                eprintln!("ddn-serve: flight-recorder dump failed: {e}");
                            }
                        }
                        let _ = reply.send(degraded_response(&session));
                    }
                }
            }
            ShardMsg::Estimate { session, at, reply } => {
                let started = Instant::now();
                if poisoned.contains(&session) {
                    observe_request(
                        &ctx, &mut flight, &ctx.metrics.estimate, "estimate", &session,
                        None, 0, "error", at, started,
                    );
                    let _ = reply.send(degraded_response(&session));
                    continue;
                }
                let resp = engine.handle_estimate(&session);
                observe_request(
                    &ctx, &mut flight, &ctx.metrics.estimate, "estimate", &session, None,
                    0, outcome_of(&resp), at, started,
                );
                let _ = reply.send(resp);
            }
            ShardMsg::Collect(reply) => {
                let mut c = engine.collector();
                for session in &poisoned {
                    c.health
                        .push((format!("serve/{session}/degraded"), vec![("poisoned", 1.0)]));
                }
                let _ = reply.send(c);
            }
            ShardMsg::Flight { dump, reply } => {
                let events = flight.to_json_array();
                if dump {
                    if let Some(dir) = &ctx.flight_dir {
                        let path = flightrec_path(dir, ctx.shard);
                        if let Err(e) = flight.dump(&path) {
                            eprintln!("ddn-serve: flight-recorder dump failed: {e}");
                        }
                    }
                }
                let _ = reply.send(events);
            }
        }
    }
}

fn shard_of(session: &str, shards: usize) -> usize {
    let mut h = DefaultHasher::new();
    session.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Sends to a shard with backpressure accounting: non-blocking first;
/// on a full queue counts a stall and blocks (stalling only this
/// connection).
fn send_with_backpressure(
    tx: &SyncSender<ShardMsg>,
    msg: ShardMsg,
    stats: &ServerStats,
) -> Result<(), ()> {
    stats.queue_inc();
    match tx.try_send(msg) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(msg)) => {
            stats.backpressure_stalls.inc();
            tx.send(msg).map_err(|_| {
                stats.queue_dec();
            })
        }
        Err(TrySendError::Disconnected(_)) => {
            stats.queue_dec();
            Err(())
        }
    }
}

/// Counts (and, when tracing, times) a verb handled on the connection
/// thread itself — `health`, `stats`, `shutdown`. These are rare, so
/// the per-call registry lookup is fine; the histogram name carries no
/// shard suffix because no shard was involved.
fn record_conn_verb(stats: &ServerStats, verb: &str, trace: bool, started: Instant) {
    let reg = stats.registry();
    reg.counter(&format!("serve.req.{verb}")).inc();
    if trace {
        reg.histogram(&format!("serve.req.{verb}.handle_ns"))
            .record(duration_ns(started.elapsed()));
    }
}

/// Routes one parsed request and returns the response to write, plus
/// whether to close the connection after replying.
fn dispatch(
    req: Request,
    senders: &[SyncSender<ShardMsg>],
    shutdown: &AtomicBool,
    stats: &ServerStats,
    local_addr: SocketAddr,
    trace: bool,
) -> (Json, bool) {
    // Enqueue time for shard verbs; handler start for conn-thread verbs.
    let at = Instant::now();
    // Round-trips one message to a shard and waits for its reply.
    let ask = |shard: usize, msg: ShardMsg, rx: Receiver<Json>| -> Json {
        if send_with_backpressure(&senders[shard], msg, stats).is_err() {
            return error_response("server is shutting down");
        }
        rx.recv()
            .unwrap_or_else(|_| error_response("shard worker unavailable"))
    };
    match req {
        Request::Init(spec) => {
            let shard = shard_of(&spec.session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            let msg = ShardMsg::Init {
                spec,
                at,
                reply: tx,
            };
            (ask(shard, msg, rx), false)
        }
        Request::Ingest {
            session,
            records,
            seq,
        } => {
            let shard = shard_of(&session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            let msg = ShardMsg::Ingest {
                session,
                records,
                seq,
                at,
                reply: tx,
            };
            (ask(shard, msg, rx), false)
        }
        Request::Estimate { session } => {
            let shard = shard_of(&session, senders.len());
            let (tx, rx) = std::sync::mpsc::channel();
            let msg = ShardMsg::Estimate {
                session,
                at,
                reply: tx,
            };
            (ask(shard, msg, rx), false)
        }
        Request::Health => {
            let mut collectors = Vec::with_capacity(senders.len() + 1);
            collectors.push(stats.collector());
            for tx in senders {
                let (ctx, crx) = std::sync::mpsc::channel();
                if send_with_backpressure(tx, ShardMsg::Collect(ctx), stats).is_ok() {
                    if let Ok(c) = crx.recv() {
                        collectors.push(c);
                    }
                }
            }
            let mut snap = TelemetrySnapshot::from_runs(&collectors);
            snap.set_threads(senders.len());
            record_conn_verb(stats, "health", trace, at);
            (
                ok_response(vec![("telemetry", snap.to_json())]),
                false,
            )
        }
        Request::Stats { flight } => {
            // Snapshot the registry BEFORE booking this request, so the
            // response never counts itself: the first `stats` a client
            // sends reports zero prior `stats` traffic, and every verb's
            // histogram-total == counter invariant holds inside the
            // snapshot (this request's handle_ns is recorded only after
            // the snapshot is taken, together with its counter).
            let snapshot = stats.registry().to_json();
            let mut fields = vec![("stats", snapshot)];
            if flight {
                let mut shards = Vec::with_capacity(senders.len());
                for (i, tx) in senders.iter().enumerate() {
                    let (ftx, frx) = std::sync::mpsc::channel();
                    let msg = ShardMsg::Flight {
                        dump: true,
                        reply: ftx,
                    };
                    let events = if send_with_backpressure(tx, msg, stats).is_ok() {
                        frx.recv().unwrap_or_else(|_| Json::Array(Vec::new()))
                    } else {
                        Json::Array(Vec::new())
                    };
                    shards.push((format!("shard-{i}"), events));
                }
                fields.push(("flight", Json::Object(shards)));
            }
            record_conn_verb(stats, "stats", trace, at);
            (ok_response(fields), false)
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag.
            let _ = TcpStream::connect(local_addr);
            record_conn_verb(stats, "shutdown", trace, at);
            (
                ok_response(vec![("shutting_down", Json::Bool(true))]),
                true,
            )
        }
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// The line exceeded the cap; its bytes were discarded up to the
    /// newline and the buffer is empty.
    Overflow,
    /// The peer closed; `torn` means it closed mid-line (bytes arrived
    /// after the last newline).
    Eof { torn: bool },
    /// The server is shutting down.
    Shutdown,
}

/// Reads one `\n`-terminated line of at most `max` bytes into `line`,
/// byte-wise (arbitrary junk, including invalid UTF-8, is fine). Handles
/// the read-timeout poll against the shutdown flag internally so the
/// oversized-discard state survives quiet periods.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    line: &mut Vec<u8>,
    max: usize,
    shutdown: &AtomicBool,
) -> std::io::Result<LineRead> {
    line.clear();
    let mut overflow = false;
    loop {
        let (found_newline, used) = {
            let buf = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(LineRead::Shutdown);
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                return Ok(LineRead::Eof {
                    torn: !line.is_empty() || overflow,
                });
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if !overflow {
                        line.extend_from_slice(&buf[..i]);
                    }
                    (true, i + 1)
                }
                None => {
                    if !overflow {
                        line.extend_from_slice(buf);
                    }
                    (false, buf.len())
                }
            }
        };
        reader.consume(used);
        if line.len() > max {
            // Stop buffering; keep consuming until the newline so the
            // connection can continue with the next request.
            overflow = true;
            line.clear();
        }
        if found_newline {
            return Ok(if overflow {
                LineRead::Overflow
            } else {
                LineRead::Line
            });
        }
    }
}

fn handle_connection(
    transport: Box<dyn Transport>,
    senders: &[SyncSender<ShardMsg>],
    shutdown: &AtomicBool,
    stats: &ServerStats,
    local_addr: SocketAddr,
    max_line_bytes: usize,
    trace: bool,
) {
    // A finite read timeout lets the thread notice shutdown while the
    // client is idle; partial reads accumulate in `line` across timeouts,
    // so no bytes are lost.
    let _ = transport.set_read_timeout(Some(POLL_INTERVAL));
    let Ok(write_half) = transport.try_clone_transport() else {
        return;
    };
    let mut writer = IoStream(write_half);
    let mut reader = BufReader::new(IoStream(transport));
    let mut line: Vec<u8> = Vec::new();
    loop {
        let outcome = match read_bounded_line(&mut reader, &mut line, max_line_bytes, shutdown)
        {
            Ok(outcome) => outcome,
            Err(_) => {
                // Socket-level failure (injected or real): this
                // connection is over, the server is not.
                stats.fault_conn_errors.inc();
                break;
            }
        };
        let (resp, close) = match outcome {
            LineRead::Shutdown => break,
            LineRead::Eof { torn } => {
                if torn {
                    // The peer died mid-line; the partial request is
                    // dropped (it was never acknowledged).
                    stats.fault_conn_errors.inc();
                }
                break;
            }
            LineRead::Overflow => {
                stats.fault_conn_errors.inc();
                (
                    error_response(&format!(
                        "request line exceeds {max_line_bytes} bytes"
                    )),
                    false,
                )
            }
            LineRead::Line => {
                // Junk bytes are tolerated: lossy decoding plus parse
                // errors produce an error response, never a dropped
                // connection or a dead server.
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    continue;
                }
                match Json::parse(trimmed) {
                    Ok(v) => {
                        // The id is extracted before verb validation so
                        // even an error response for a malformed request
                        // echoes it — the client can always correlate.
                        let id = request_id(&v);
                        let (resp, close) = match Request::from_json(&v) {
                            Ok(req) => {
                                dispatch(req, senders, shutdown, stats, local_addr, trace)
                            }
                            Err(e) => (error_response(&e), false),
                        };
                        (attach_id(resp, id), close)
                    }
                    Err(e) => (error_response(&format!("bad JSON: {e}")), false),
                }
            }
        };
        if writeln!(writer, "{}", resp.to_string()).is_err() {
            stats.fault_conn_errors.inc();
            break;
        }
        if close {
            break;
        }
    }
}
