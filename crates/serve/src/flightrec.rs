//! The flight recorder: a fixed-size per-shard ring buffer of recent
//! request events, for causal post-mortems.
//!
//! Every request a shard worker handles appends one [`FlightEvent`]
//! (verb, session, sequence number, outcome, duration). The ring keeps
//! only the most recent [`FlightRecorder::capacity`] events, so memory
//! is bounded no matter how long the server runs. Two things read it:
//!
//! - **Panic/quarantine**: when a worker catches a panic it dumps its
//!   ring to `data_dir/flightrec-<shard>.jsonl` (durability directory
//!   configured), so the operator sees exactly which requests — in
//!   order — preceded the blast.
//! - **On demand**: `stats {"flight":true}` returns every shard's ring
//!   inline (and dumps the files too, when a data dir is configured).
//!
//! The dump format is JSONL, oldest event first, one object per line:
//! `{"n":…,"verb":…,"session":…,"seq":…|null,"records":…,"outcome":…,
//! "dur_ns":…}` where `n` is the shard-local monotonic event index
//! (gaps never occur; a dump whose `n`s are not consecutive was
//! corrupted). Outcomes are `"ok"`, `"error"`, `"duplicate"`, and
//! `"panic"`. See DESIGN.md §13.

use ddn_stats::Json;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One recorded request event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Shard-local monotonic event index (starts at 0, never reused).
    pub n: u64,
    /// Request verb (`init` / `ingest` / `estimate`).
    pub verb: &'static str,
    /// Session the request targeted.
    pub session: String,
    /// Ingest batch sequence number, if the request carried one.
    pub seq: Option<u64>,
    /// Records in the batch (0 for non-ingest verbs).
    pub records: u64,
    /// `ok`, `error`, `duplicate`, or `panic`.
    pub outcome: &'static str,
    /// Handler wall time in nanoseconds (0 when tracing is disabled).
    pub dur_ns: u64,
}

impl FlightEvent {
    /// The JSONL object form (fixed key order).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("n", Json::Int(self.n as i64)),
            ("verb", Json::str(self.verb)),
            ("session", Json::str(self.session.clone())),
            (
                "seq",
                match self.seq {
                    Some(q) => Json::Int(q as i64),
                    None => Json::Null,
                },
            ),
            ("records", Json::Int(self.records as i64)),
            ("outcome", Json::str(self.outcome)),
            ("dur_ns", Json::Int(self.dur_ns.min(i64::MAX as u64) as i64)),
        ])
    }
}

/// The dump path for `shard`'s ring under the durability directory.
pub fn flightrec_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("flightrec-{shard}.jsonl"))
}

/// Fixed-capacity ring of the most recent [`FlightEvent`]s on one
/// shard. Single-writer (the shard worker owns it); readers go through
/// the worker's message loop, so no synchronization is needed.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    next_n: u64,
    ring: VecDeque<FlightEvent>,
}

impl FlightRecorder {
    /// Creates an empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        Self {
            capacity,
            next_n: 0,
            ring: VecDeque::with_capacity(capacity),
        }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Appends one event (evicting the oldest at capacity) and returns
    /// its assigned index.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        verb: &'static str,
        session: &str,
        seq: Option<u64>,
        records: u64,
        outcome: &'static str,
        dur_ns: u64,
    ) -> u64 {
        let n = self.next_n;
        self.next_n += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(FlightEvent {
            n,
            verb,
            session: session.to_string(),
            seq,
            records,
            outcome,
            dur_ns,
        });
        n
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// The ring as a JSON array, oldest event first.
    pub fn to_json_array(&self) -> Json {
        Json::Array(self.ring.iter().map(FlightEvent::to_json).collect())
    }

    /// Writes the ring as JSONL to `path` (truncating any previous
    /// dump), oldest event first. The write is best-effort plain I/O —
    /// a dump races no one (the worker owns the ring) and a failed dump
    /// must never take the worker down with it, so callers log and move
    /// on rather than propagating.
    pub fn dump(&self, path: &Path) -> std::io::Result<()> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        for event in &self.ring {
            writeln!(out, "{}", event.to_json().to_string())?;
        }
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_indices_monotonic() {
        let mut rec = FlightRecorder::new(3);
        assert!(rec.is_empty());
        for i in 0..5u64 {
            let n = rec.push("ingest", "s", Some(i), 10, "ok", 100);
            assert_eq!(n, i);
        }
        assert_eq!(rec.len(), 3);
        let ns: Vec<u64> = rec.events().map(|e| e.n).collect();
        assert_eq!(ns, vec![2, 3, 4], "oldest two evicted, order kept");
    }

    #[test]
    fn event_json_shape_is_pinned() {
        let mut rec = FlightRecorder::new(2);
        rec.push("init", "sess", None, 0, "ok", 42);
        rec.push("ingest", "sess", Some(7), 256, "duplicate", 43);
        let arr = rec.to_json_array();
        let events = arr.as_array().unwrap();
        assert_eq!(events.len(), 2);
        let keys: Vec<&str> = events[0]
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            keys,
            ["n", "verb", "session", "seq", "records", "outcome", "dur_ns"],
            "flight event key order is part of the dump format"
        );
        assert_eq!(events[0].get("seq"), Some(&Json::Null));
        assert_eq!(events[1].get("seq"), Some(&Json::Int(7)));
        assert_eq!(
            events[1].get("outcome").and_then(Json::as_str),
            Some("duplicate")
        );
    }

    #[test]
    fn dump_writes_parseable_jsonl() {
        let mut rec = FlightRecorder::new(8);
        for i in 0..4u64 {
            rec.push("ingest", "boom", Some(i), 5, if i == 3 { "panic" } else { "ok" }, 9);
        }
        let dir = std::env::temp_dir().join(format!(
            "ddn-flightrec-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = flightrec_path(&dir, 2);
        assert!(path.to_string_lossy().ends_with("flightrec-2.jsonl"));
        rec.dump(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for (i, line) in lines.iter().enumerate() {
            let v = Json::parse(line).expect("every dumped line parses");
            assert_eq!(v.get("n").and_then(Json::as_u64), Some(i as u64));
        }
        assert!(lines[3].contains("\"outcome\":\"panic\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
