//! A small blocking client for the serve protocol, used by the CLI
//! (`ddn replay-to`, `ddn chaos`) and the end-to-end tests.
//!
//! The client is built for unreliable transports: every request has a
//! read deadline (a silent server yields a typed [`ClientError::Timeout`]
//! instead of hanging the caller forever), transport-level failures are
//! retried a bounded number of times with deterministic exponential
//! backoff (reconnecting through the client's connector), and `ingest`
//! carries a per-session sequence number so a retried batch is
//! acknowledged from the server's dedup window instead of being counted
//! twice. The net contract: an acknowledged batch was ingested exactly
//! once, no matter how many wire-level attempts it took (DESIGN.md §11).

use crate::protocol::{attach_id, request_id, DEFAULT_MAX_WEIGHT};
use crate::transport::{IoStream, TcpTransport, Transport};
use ddn_stats::Json;
use ddn_telemetry::{Collector, Histogram};
use ddn_trace::{ContextSchema, DecisionSpace, TraceRecord};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// No response arrived within the configured read deadline.
    Timeout(Duration),
    /// The server closed the connection or answered with something that
    /// is not a JSON object.
    Protocol(String),
    /// The server answered `{"ok":false,...}`; carries the message.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve client I/O error: {e}"),
            ClientError::Timeout(d) => {
                write!(f, "serve client timed out after {}ms", d.as_millis())
            }
            ClientError::Protocol(m) => write!(f, "serve protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// Whether retrying the request could help. Transport-level failures
    /// (I/O, timeout, torn response) are retryable; a server verdict is
    /// not — the request was received and judged.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, ClientError::Server(_))
    }
}

/// Retry/timeout configuration for [`ServeClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-request read deadline; a silent server fails the attempt with
    /// [`ClientError::Timeout`] after this long.
    pub read_timeout: Duration,
    /// Retries after the first attempt (so `max_retries + 1` attempts in
    /// total) for retryable errors.
    pub max_retries: u32,
    /// Backoff before retry `k` (0-based) is `backoff_base << k` —
    /// deterministic, no jitter, so chaos runs replay identically.
    pub backoff_base: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(30),
            max_retries: 3,
            backoff_base: Duration::from_millis(25),
        }
    }
}

/// How often a blocked read wakes to check the deadline.
const READ_POLL: Duration = Duration::from_millis(50);

/// Counters describing the client's fight with the transport, surfaced
/// as `serve.retry.*` telemetry, plus a client-observed request-latency
/// histogram.
///
/// Cloning snapshots the counters but *shares* the latency histogram
/// (it is behind an `Arc`), so a clone taken before a run still sees
/// latencies recorded during it.
#[derive(Debug, Default, Clone)]
pub struct ClientStats {
    retry_attempts: u64,
    reconnects: u64,
    timeouts: u64,
    giveups: u64,
    latency: Arc<Histogram>,
}

impl ClientStats {
    /// Requests re-sent after a retryable failure.
    pub fn retry_attempts(&self) -> u64 {
        self.retry_attempts
    }

    /// Connections re-established after a drop.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Attempts that hit the read deadline.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Requests abandoned after exhausting every retry.
    pub fn giveups(&self) -> u64 {
        self.giveups
    }

    /// Client-observed request latency in nanoseconds, measured from the
    /// moment [`ServeClient::request`] stamps the request id to the
    /// moment a verdict arrives — retries and backoff sleeps included,
    /// because that is the latency the caller actually waited. Only
    /// delivered verdicts (ok or a server error) are recorded; transport
    /// give-ups are not latencies, they are failures.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// The counters as a telemetry collector.
    pub fn collector(&self) -> Collector {
        let mut c = Collector::default();
        c.counts.push(("serve.retry.attempts", self.retry_attempts));
        c.counts.push(("serve.retry.reconnects", self.reconnects));
        c.counts.push(("serve.retry.timeouts", self.timeouts));
        c.counts.push(("serve.retry.giveups", self.giveups));
        c
    }
}

/// Dials (or re-dials) the server, producing a fresh transport.
pub type Connector = Box<dyn FnMut() -> std::io::Result<Box<dyn Transport>> + Send>;

/// A connected client speaking one request/response pair at a time.
pub struct ServeClient {
    connector: Connector,
    conn: Option<(IoStream, BufReader<IoStream>)>,
    config: ClientConfig,
    stats: ClientStats,
    /// Next ingest sequence number per session.
    seqs: HashMap<String, u64>,
    /// Next request id; one id per logical request, shared by all of its
    /// wire-level retry attempts.
    next_id: u64,
    ever_connected: bool,
}

impl ServeClient {
    /// Connects to a running server with default retry/timeout settings.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit retry/timeout settings.
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<Self, ClientError> {
        let addr = addr.to_string();
        Self::from_connector(
            Box::new(move || Ok(Box::new(TcpTransport::connect(&addr)?) as Box<dyn Transport>)),
            config,
        )
    }

    /// Builds a client over an arbitrary connector (chaos tests hand in a
    /// fault-wrapping one). Dials eagerly so a bad address fails here,
    /// not on the first request.
    pub fn from_connector(connector: Connector, config: ClientConfig) -> Result<Self, ClientError> {
        let mut client = Self {
            connector,
            conn: None,
            config,
            stats: ClientStats::default(),
            seqs: HashMap::new(),
            next_id: 0,
            ever_connected: false,
        };
        client.ensure_conn()?;
        Ok(client)
    }

    /// The client's retry/reconnect/timeout counters and latency
    /// histogram (see [`ClientStats`] for the clone semantics).
    pub fn stats(&self) -> ClientStats {
        self.stats.clone()
    }

    fn ensure_conn(&mut self) -> Result<(), ClientError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let transport = (self.connector)()?;
        let _ = transport.set_read_timeout(Some(READ_POLL));
        let write_half = transport.try_clone_transport()?;
        self.conn = Some((IoStream(write_half), BufReader::new(IoStream(transport))));
        if self.ever_connected {
            self.stats.reconnects += 1;
        }
        self.ever_connected = true;
        Ok(())
    }

    /// One wire-level attempt: write the request bytes (a JSON line or a
    /// binary batch frame — the response is a JSON line either way), read
    /// the response line against the deadline. Any failure drops the
    /// connection so the next attempt re-dials. `id` is the request id
    /// the response must echo (`None` for the degenerate non-object
    /// requests that cannot carry one); a mismatch is a (retryable)
    /// protocol error, because a response that answers some other request
    /// proves the connection's framing can no longer be trusted.
    fn try_once_raw(&mut self, wire: &[u8], id: Option<&Json>) -> Result<Json, ClientError> {
        self.ensure_conn()?;
        let deadline = Instant::now() + self.config.read_timeout;
        let (writer, reader) = self.conn.as_mut().expect("ensure_conn succeeded");
        let result = (|| {
            writer.write_all(wire)?;
            writer.flush()?;
            Ok::<(), std::io::Error>(())
        })();
        if let Err(e) = result {
            self.conn = None;
            return Err(ClientError::Io(e));
        }
        let mut line = String::new();
        loop {
            let polled_at = Instant::now();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    self.conn = None;
                    return Err(ClientError::Protocol("server closed the connection".into()));
                }
                Ok(_) => break,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    // Partial bytes stay buffered in `line` across polls.
                    if Instant::now() >= deadline {
                        self.conn = None;
                        self.stats.timeouts += 1;
                        return Err(ClientError::Timeout(self.config.read_timeout));
                    }
                    // A transport that reports WouldBlock immediately
                    // (instead of honoring the READ_POLL timeout) must
                    // wait explicitly, or this loop would spin a core
                    // until the deadline. The guard keeps the normal
                    // timed path — where the poll itself already slept
                    // — free of extra latency.
                    if polled_at.elapsed() < Duration::from_millis(1) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                Err(e) => {
                    self.conn = None;
                    return Err(ClientError::Io(e));
                }
            }
        }
        let resp = Json::parse(line.trim())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        if resp.get("id") != id {
            self.conn = None;
            return Err(ClientError::Protocol(format!(
                "response id mismatch: sent {}, got {}",
                id.map_or("none".to_string(), Json::to_string),
                resp.get("id").map_or("none".to_string(), Json::to_string),
            )));
        }
        match resp.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(resp),
            Some(false) => Err(ClientError::Server(
                resp.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol("response is missing \"ok\"".into())),
        }
    }

    /// Sends one request object and waits for the one-line response,
    /// retrying transport-level failures up to the configured budget with
    /// deterministic exponential backoff. Returns the response body on
    /// `{"ok":true}`, [`ClientError::Server`] otherwise.
    ///
    /// Retrying is only exactly-once-safe because every verb is
    /// idempotent on the server: `init` replaces, `estimate`/`health`
    /// read, `shutdown` latches, and `ingest` carries a sequence number
    /// the server deduplicates on.
    ///
    /// Every request is stamped with a monotonically increasing `"id"`
    /// (unless the caller already supplied one) that all retry attempts
    /// share; the response must echo it or the attempt fails with a
    /// retryable protocol error. Delivered verdicts — ok or a server
    /// error — record into the [`ClientStats::latency`] histogram.
    pub fn request(&mut self, req: &Json) -> Result<Json, ClientError> {
        let req = if matches!(req, Json::Object(_)) && request_id(req).is_none() {
            let id = Json::Int(self.next_id as i64);
            self.next_id += 1;
            attach_id(req.clone(), Some(id))
        } else {
            // The caller supplied an id (kept), or the request is not an
            // object and cannot carry one.
            req.clone()
        };
        let id = request_id(&req);
        let wire = format!("{}\n", req.to_string()).into_bytes();
        self.request_raw(&wire, id.as_ref())
    }

    /// The retry/backoff/latency loop shared by the JSON and binary
    /// paths. `wire` is the exact bytes of one request — every retry
    /// attempt re-sends them unchanged, which is what makes server-side
    /// sequence deduplication sound for binary frames too.
    fn request_raw(&mut self, wire: &[u8], id: Option<&Json>) -> Result<Json, ClientError> {
        let started = Instant::now();
        let record = |stats: &mut ClientStats| {
            let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            stats.latency.record(ns);
        };
        let mut attempt: u32 = 0;
        loop {
            match self.try_once_raw(wire, id) {
                Ok(resp) => {
                    record(&mut self.stats);
                    return Ok(resp);
                }
                Err(e) if e.is_retryable() && attempt < self.config.max_retries => {
                    self.conn = None;
                    self.stats.retry_attempts += 1;
                    // base << attempt: 1x, 2x, 4x, ... — deterministic.
                    std::thread::sleep(self.config.backoff_base * (1u32 << attempt.min(16)));
                    attempt += 1;
                }
                Err(e) => {
                    if e.is_retryable() {
                        self.stats.giveups += 1;
                    } else {
                        // A server verdict was delivered; that is a
                        // completed request from a latency standpoint.
                        record(&mut self.stats);
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Creates a session evaluating the constant policy `always
    /// <decision>` (by name) with the given estimators. Resets the
    /// client's ingest sequence for that session.
    #[allow(clippy::too_many_arguments)]
    pub fn init(
        &mut self,
        session: &str,
        schema: &ContextSchema,
        space: &DecisionSpace,
        estimators: &[&str],
        decision: &str,
        model_value: f64,
        window: Option<usize>,
    ) -> Result<Json, ClientError> {
        let mut fields = vec![
            ("verb", Json::str("init")),
            ("session", Json::str(session)),
            ("schema", schema.to_json()),
            ("space", space.to_json()),
            (
                "estimators",
                Json::Array(estimators.iter().map(|e| Json::str(*e)).collect()),
            ),
            (
                "policy",
                Json::object(vec![
                    ("kind", Json::str("constant")),
                    ("decision", Json::str(decision)),
                ]),
            ),
            ("model_value", Json::Num(model_value)),
            ("max_weight", Json::Num(DEFAULT_MAX_WEIGHT)),
        ];
        if let Some(w) = window {
            fields.push(("window", Json::Int(w as i64)));
        }
        let resp = self.request(&Json::object(fields))?;
        // A successful (re-)init starts the session's sequence over on
        // both ends.
        self.seqs.insert(session.to_string(), 0);
        Ok(resp)
    }

    /// Creates a session from a fully-formed init request object —
    /// the escape hatch for protocol fields [`ServeClient::init`] does
    /// not surface (the menu extensions `horizon`, `embedding`,
    /// `logging`, or a non-constant policy). Resets the client's ingest
    /// sequence for `session`, which must match the object's
    /// `"session"` field.
    pub fn init_with(&mut self, session: &str, init: &Json) -> Result<Json, ClientError> {
        let resp = self.request(init)?;
        self.seqs.insert(session.to_string(), 0);
        Ok(resp)
    }

    /// Feeds a batch of records into a session, stamped with the
    /// session's next sequence number so server-side deduplication makes
    /// retries exactly-once.
    pub fn ingest(
        &mut self,
        session: &str,
        records: &[TraceRecord],
    ) -> Result<Json, ClientError> {
        let seq = *self.seqs.entry(session.to_string()).or_insert(0);
        let req = Json::object(vec![
            ("verb", Json::str("ingest")),
            ("session", Json::str(session)),
            (
                "records",
                Json::Array(records.iter().map(TraceRecord::to_json).collect()),
            ),
            ("seq", Json::Int(seq as i64)),
        ]);
        let result = self.request(&req);
        // The server consumes the sequence whenever it delivered a
        // verdict — positive or negative — so the client advances on
        // both. Only a transport-level failure leaves it unconsumed.
        if matches!(result, Ok(_) | Err(ClientError::Server(_))) {
            self.seqs.insert(session.to_string(), seq + 1);
        }
        result
    }

    /// Feeds a batch of records into a session over the binary columnar
    /// frame (see [`crate::frame`]) instead of the JSON `ingest` verb.
    /// Semantics are identical to [`ServeClient::ingest`] — the frame
    /// carries the session's next sequence number and a request id the
    /// JSON response must echo, and the frame is encoded exactly once so
    /// every retry re-sends byte-identical wire data. Returns
    /// [`ClientError::Protocol`] without touching the wire when the
    /// batch cannot be encoded (ragged rows, mixed column kinds, or a
    /// batch larger than the frame cap).
    pub fn ingest_binary(
        &mut self,
        session: &str,
        records: &[TraceRecord],
    ) -> Result<Json, ClientError> {
        let seq = *self.seqs.entry(session.to_string()).or_insert(0);
        let id = self.next_id;
        self.next_id += 1;
        let wire = crate::frame::encode(session, records, Some(seq), Some(id))
            .map_err(ClientError::Protocol)?;
        let id_json = Json::Int(id as i64);
        let result = self.request_raw(&wire, Some(&id_json));
        // Same sequence contract as the JSON path: any delivered verdict
        // consumed the sequence number on the server.
        if matches!(result, Ok(_) | Err(ClientError::Server(_))) {
            self.seqs.insert(session.to_string(), seq + 1);
        }
        result
    }

    /// Asks for the session's current estimates.
    pub fn estimate(&mut self, session: &str) -> Result<Json, ClientError> {
        self.request(&Json::object(vec![
            ("verb", Json::str("estimate")),
            ("session", Json::str(session)),
        ]))
    }

    /// Asks for the server-wide telemetry snapshot.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::object(vec![("verb", Json::str("health"))]))
    }

    /// Asks for the server's live metric registry (the `stats` verb).
    /// With `flight` set the response also carries every shard's
    /// flight-recorder ring under `"flight"` (and the server rewrites
    /// the on-disk dumps when durability is configured).
    pub fn server_stats(&mut self, flight: bool) -> Result<Json, ClientError> {
        let mut fields = vec![("verb", Json::str("stats"))];
        if flight {
            fields.push(("flight", Json::Bool(true)));
        }
        self.request(&Json::object(fields))
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::object(vec![("verb", Json::str("shutdown"))]))
    }
}
