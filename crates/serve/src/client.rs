//! A small blocking client for the serve protocol, used by the CLI
//! (`ddn replay-to`) and the end-to-end tests.

use crate::protocol::DEFAULT_MAX_WEIGHT;
use ddn_stats::Json;
use ddn_trace::{ContextSchema, DecisionSpace, TraceRecord};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server closed the connection or answered with something that
    /// is not a JSON object.
    Protocol(String),
    /// The server answered `{"ok":false,...}`; carries the message.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve client I/O error: {e}"),
            ClientError::Protocol(m) => write!(f, "serve protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client speaking one request/response pair at a time.
pub struct ServeClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ServeClient {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response over small lines: disable Nagle so each
        // request leaves immediately instead of waiting on a delayed ACK.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            writer: stream,
            reader,
        })
    }

    /// Sends one request object and waits for the one-line response.
    /// Returns the response body on `{"ok":true}`, [`ClientError::Server`]
    /// otherwise.
    pub fn request(&mut self, req: &Json) -> Result<Json, ClientError> {
        writeln!(self.writer, "{}", req.to_string())?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let resp = Json::parse(line.trim())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        match resp.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(resp),
            Some(false) => Err(ClientError::Server(
                resp.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol(
                "response is missing \"ok\"".into(),
            )),
        }
    }

    /// Creates a session evaluating the constant policy `always
    /// <decision>` (by name) with the given estimators.
    #[allow(clippy::too_many_arguments)]
    pub fn init(
        &mut self,
        session: &str,
        schema: &ContextSchema,
        space: &DecisionSpace,
        estimators: &[&str],
        decision: &str,
        model_value: f64,
        window: Option<usize>,
    ) -> Result<Json, ClientError> {
        let mut fields = vec![
            ("verb", Json::str("init")),
            ("session", Json::str(session)),
            ("schema", schema.to_json()),
            ("space", space.to_json()),
            (
                "estimators",
                Json::Array(estimators.iter().map(|e| Json::str(*e)).collect()),
            ),
            (
                "policy",
                Json::object(vec![
                    ("kind", Json::str("constant")),
                    ("decision", Json::str(decision)),
                ]),
            ),
            ("model_value", Json::Num(model_value)),
            ("max_weight", Json::Num(DEFAULT_MAX_WEIGHT)),
        ];
        if let Some(w) = window {
            fields.push(("window", Json::Int(w as i64)));
        }
        self.request(&Json::object(fields))
    }

    /// Feeds a batch of records into a session.
    pub fn ingest(
        &mut self,
        session: &str,
        records: &[TraceRecord],
    ) -> Result<Json, ClientError> {
        self.request(&Json::object(vec![
            ("verb", Json::str("ingest")),
            ("session", Json::str(session)),
            (
                "records",
                Json::Array(records.iter().map(TraceRecord::to_json).collect()),
            ),
        ]))
    }

    /// Asks for the session's current estimates.
    pub fn estimate(&mut self, session: &str) -> Result<Json, ClientError> {
        self.request(&Json::object(vec![
            ("verb", Json::str("estimate")),
            ("session", Json::str(session)),
        ]))
    }

    /// Asks for the server-wide telemetry snapshot.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::object(vec![("verb", Json::str("health"))]))
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::object(vec![("verb", Json::str("shutdown"))]))
    }
}
