//! Zero-dependency readiness notification: epoll + eventfd via raw
//! syscalls.
//!
//! The serving core (DESIGN.md §14) holds every connection in a single
//! event loop thread instead of a thread per connection, so idle
//! sessions cost a few hundred bytes of buffer instead of a stack. The
//! workspace bans external crates, and `std` does not expose epoll, so
//! this module makes the four required syscalls directly with inline
//! assembly: `epoll_create1`, `epoll_ctl`, `epoll_pwait`, and
//! `eventfd2` (plus `read`/`write`/`close` on the resulting fds).
//!
//! This is the only module in the workspace that uses `unsafe`. The
//! audit surface is deliberately tiny: one `syscall6` function per
//! architecture, a kernel-ABI `EpollEvent` struct, and an owned-fd
//! wrapper whose `Drop` closes via the `close` syscall. Everything
//! above — [`Epoll`], [`Waker`] — is a safe API.
//!
//! Notification is level-triggered (the kernel default): an fd shows up
//! in every `wait` while it stays ready, so the server must mask or
//! deregister interest it cannot act on, or the loop spins. See the
//! interest state machine in `server.rs`.

#![allow(unsafe_code)]

use std::io;
use std::sync::Arc;

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
compile_error!(
    "ddn-serve's event loop needs Linux epoll on x86_64 or aarch64; \
     other targets would need a poll() backend added to eventloop.rs"
);

/// Readiness flag: the fd is readable (or a peer closed cleanly).
pub const EPOLLIN: u32 = 0x1;
/// Readiness flag: the fd is writable.
pub const EPOLLOUT: u32 = 0x4;
/// Readiness flag: error condition. Always reported; cannot be masked.
pub const EPOLLERR: u32 = 0x8;
/// Readiness flag: peer hung up. Always reported; cannot be masked.
pub const EPOLLHUP: u32 = 0x10;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0x80000;
const EFD_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;

/// Raw syscall plumbing, one block per supported architecture. Numbers
/// are from the kernel's syscall tables and are ABI-stable forever.
mod sys {
    #[cfg(target_arch = "x86_64")]
    pub mod nr {
        pub const READ: usize = 0;
        pub const WRITE: usize = 1;
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EVENTFD2: usize = 290;
        pub const EPOLL_CREATE1: usize = 291;
    }

    #[cfg(target_arch = "aarch64")]
    pub mod nr {
        pub const EVENTFD2: usize = 19;
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
        pub const READ: usize = 63;
        pub const WRITE: usize = 64;
    }

    /// Issues a raw 6-argument syscall.
    ///
    /// # Safety
    /// The caller must pass a valid syscall number and arguments whose
    /// pointer/length invariants match that syscall's contract.
    #[cfg(target_arch = "x86_64")]
    pub unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        // `syscall` clobbers rcx (return rip) and r11 (rflags); the
        // fourth argument register is r10, not rcx as in the C ABI.
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
        ret
    }

    /// Issues a raw 6-argument syscall.
    ///
    /// # Safety
    /// The caller must pass a valid syscall number and arguments whose
    /// pointer/length invariants match that syscall's contract.
    #[cfg(target_arch = "aarch64")]
    pub unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }
}

/// Converts a raw syscall return into `io::Result`: the kernel encodes
/// errors as `-errno` in `[-4095, -1]`.
fn check(ret: isize) -> io::Result<usize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// A file descriptor closed on drop via the `close` syscall.
///
/// Used for the epoll instance and the eventfd waker — descriptors that
/// have no `std` owner. Connection sockets stay owned by their
/// `TcpStream`s; this wrapper never takes those over.
#[derive(Debug)]
pub struct OwnedFd(i32);

impl OwnedFd {
    fn from_syscall(ret: isize) -> io::Result<Self> {
        check(ret).map(|fd| OwnedFd(fd as i32))
    }

    /// The raw descriptor, still owned by `self`.
    pub fn raw(&self) -> i32 {
        self.0
    }
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // Errors on close are unreportable from Drop; the fd is gone
        // either way (Linux releases it even when close returns EINTR).
        unsafe {
            sys::syscall6(sys::nr::CLOSE, self.0 as usize, 0, 0, 0, 0, 0);
        }
    }
}

/// The kernel's epoll_event. x86_64 packs it (no padding between the
/// u32 mask and the u64 payload); every other architecture uses natural
/// alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token registered with the fd (connection id, listener, waker).
    pub token: u64,
    /// Readiness bits: [`EPOLLIN`] / [`EPOLLOUT`] / [`EPOLLERR`] /
    /// [`EPOLLHUP`].
    pub events: u32,
}

impl Event {
    /// Whether the fd is readable (or the peer closed / errored, which
    /// a read will observe as EOF or an error).
    pub fn readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0
    }

    /// Whether the fd is writable (or errored, which a write observes).
    pub fn writable(&self) -> bool {
        self.events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0
    }
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        let ret = unsafe { sys::syscall6(sys::nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
        Ok(Epoll {
            fd: OwnedFd::from_syscall(ret)?,
        })
    }

    fn ctl(&self, op: usize, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent {
            events,
            data: token,
        };
        // DEL ignores the event pointer but older kernels want it
        // non-null; passing it unconditionally is always valid.
        let ret = unsafe {
            sys::syscall6(
                sys::nr::EPOLL_CTL,
                self.fd.raw() as usize,
                op,
                fd as usize,
                std::ptr::addr_of!(ev) as usize,
                0,
                0,
            )
        };
        check(ret).map(|_| ())
    }

    /// Registers `fd` with interest `events`, tagged with `token`.
    pub fn add(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest mask of an already-registered `fd`.
    pub fn modify(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd` entirely (no events reported for it at all,
    /// including EPOLLERR/EPOLLHUP — the only way to silence those).
    pub fn del(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (-1 = forever) and appends ready events
    /// to `out`. Retries on EINTR. Returns the number of events added.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const MAX_EVENTS: usize = 256;
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        loop {
            let ret = unsafe {
                sys::syscall6(
                    sys::nr::EPOLL_PWAIT,
                    self.fd.raw() as usize,
                    buf.as_mut_ptr() as usize,
                    MAX_EVENTS,
                    timeout_ms as usize,
                    0, // NULL sigmask: plain epoll_wait semantics
                    8, // sigsetsize; ignored with a NULL mask
                )
            };
            match check(ret) {
                Ok(n) => {
                    for slot in &buf[..n] {
                        // Copy packed fields out by value before use.
                        let (events, data) = (slot.events, slot.data);
                        out.push(Event {
                            token: data,
                            events,
                        });
                    }
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// A cross-thread wakeup handle backed by a nonblocking eventfd.
///
/// Dispatcher threads call [`Waker::wake`] after queuing a completion;
/// the event loop registers the eventfd alongside its sockets and calls
/// [`Waker::drain`] when it fires. Cloning shares the same eventfd.
#[derive(Debug, Clone)]
pub struct Waker {
    fd: Arc<OwnedFd>,
}

impl Waker {
    /// Creates a waker (close-on-exec, nonblocking).
    pub fn new() -> io::Result<Self> {
        let ret = unsafe {
            sys::syscall6(sys::nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0)
        };
        Ok(Waker {
            fd: Arc::new(OwnedFd::from_syscall(ret)?),
        })
    }

    /// The raw eventfd, for registration with [`Epoll::add`].
    pub fn raw(&self) -> i32 {
        self.fd.raw()
    }

    /// Makes the eventfd readable, waking any epoll wait watching it.
    pub fn wake(&self) {
        let one: u64 = 1;
        // The only write error a nonblocking eventfd can return is
        // EAGAIN at counter saturation — which still leaves the fd
        // readable, i.e. the wakeup is already pending. Safe to ignore.
        unsafe {
            sys::syscall6(
                sys::nr::WRITE,
                self.fd.raw() as usize,
                std::ptr::addr_of!(one) as usize,
                8,
                0,
                0,
                0,
            );
        }
    }

    /// Consumes all pending wakeups so the (level-triggered) eventfd
    /// stops reporting readable.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // A single read returns the whole counter and resets it to 0;
        // EAGAIN means it was already empty.
        unsafe {
            sys::syscall6(
                sys::nr::READ,
                self.fd.raw() as usize,
                std::ptr::addr_of_mut!(buf) as usize,
                8,
                0,
                0,
                0,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn wait_times_out_with_no_events() {
        let epoll = Epoll::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        let n = epoll.wait(&mut events, 20).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn waker_wakes_an_epoll_wait_and_drain_silences_it() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        epoll.add(waker.raw(), 7, EPOLLIN).unwrap();

        // Not yet woken: a short wait sees nothing.
        let mut events = Vec::new();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // Wake from another thread (the dispatcher-pool pattern).
        let w2 = waker.clone();
        let t = std::thread::spawn(move || w2.wake());
        let n = epoll.wait(&mut events, 2000).unwrap();
        t.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable());

        // Level-triggered: still readable until drained.
        events.clear();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 1);
        waker.drain();
        events.clear();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_add_modify_del() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(rx.as_raw_fd(), 42, EPOLLIN).unwrap();

        // Idle socket: no events.
        let mut events = Vec::new();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // Data arrives: readable under token 42.
        tx.write_all(b"ping").unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable());

        // Mask readable interest away: silent even with data pending.
        epoll.modify(rx.as_raw_fd(), 42, EPOLLOUT).unwrap();
        events.clear();
        let n = epoll.wait(&mut events, 0).unwrap();
        // A healthy connected socket is writable immediately.
        assert_eq!(n, 1);
        assert!(events[0].writable());

        // Deregister entirely: nothing reported, even peer hangup.
        epoll.del(rx.as_raw_fd()).unwrap();
        drop(tx);
        events.clear();
        assert_eq!(epoll.wait(&mut events, 20).unwrap(), 0);
    }

    #[test]
    fn del_silences_error_and_hangup_events() {
        // The in_flight state in server.rs depends on EPOLL_CTL_DEL
        // suppressing EPOLLHUP (a mere interest mask of 0 would not).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(rx.as_raw_fd(), 1, EPOLLIN).unwrap();
        epoll.del(rx.as_raw_fd()).unwrap();
        drop(tx);
        let mut events = Vec::new();
        assert_eq!(epoll.wait(&mut events, 20).unwrap(), 0);
    }
}
