//! The write-ahead log: length-prefixed, checksummed frames on disk.
//!
//! ## On-disk layout
//!
//! ```text
//! file   := magic frame*
//! magic  := "DDNWAL01"                     (8 bytes)
//! frame  := len_le32 id_le64 crc_le64 payload
//! len    := payload length in bytes        (u32, little-endian)
//! id     := frame id, strictly increasing  (u64, little-endian)
//! crc    := FNV-1a 64 over id_le64 ++ payload
//! ```
//!
//! A frame's payload is one state-bearing request exactly as it would
//! travel on the wire: either a JSON request line (an `init` or `ingest`
//! object, no trailing newline) or a verbatim binary batch frame
//! ([`crate::frame`]). The WAL is literally the ordered log of every
//! state-bearing request a shard consumed, so recovery replays frames
//! through the same parse/decode code path live traffic takes —
//! bit-identity for free. Recovery tells the two payload kinds apart by
//! the leading byte: the binary magic `0xDB` can never begin a JSON
//! request line.
//!
//! Frame ids are monotonic across snapshot rotations and never reused;
//! a snapshot records the last id it covers, which is what lets recovery
//! skip frames an overlapping (not-yet-truncated) WAL repeats.
//!
//! ## Torn tails
//!
//! A crash can leave at most one partial frame, at the end of the file
//! (appends are a single `write_all`; acknowledged requests are fully
//! written first). [`read_wal`] therefore recovers the longest valid
//! prefix: it stops at the first short header, short payload, checksum
//! mismatch, or non-monotonic id, and reports how many invalid tail
//! frames it discarded (the `serve.recover.truncated_frames` counter).
//! This byte layout is pinned by a golden test; changing it is a format
//! break that must be made deliberately.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic opening every WAL file (also its format version).
pub const WAL_MAGIC: &[u8; 8] = b"DDNWAL01";

/// Hard cap on a single frame's payload. A length prefix beyond this is
/// treated as corruption, not an allocation request.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Bytes of frame framing before the payload: len (4) + id (8) + crc (8).
pub const FRAME_HEADER_BYTES: usize = 20;

/// FNV-1a 64-bit over `bytes` — the workspace's zero-dependency frame
/// checksum. Not cryptographic; it guards against torn writes and bit
/// rot, the failure modes a local WAL actually sees.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn frame_crc(id: u64, payload: &[u8]) -> u64 {
    let mut h = fnv1a(&id.to_le_bytes());
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one frame exactly as it appears on disk.
pub fn encode_frame(id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&frame_crc(id, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One decoded WAL frame.
#[derive(Debug, Clone, PartialEq)]
pub struct WalFrame {
    /// Monotonic frame id (never reused across snapshot rotations).
    pub id: u64,
    /// The request line this frame logged.
    pub payload: Vec<u8>,
}

/// An open WAL being appended to by a shard worker.
pub struct WalWriter {
    file: File,
    next_id: u64,
    bytes: u64,
}

impl WalWriter {
    /// Creates (truncating) a WAL at `path` whose first frame will carry
    /// `next_id`. The magic header is written and synced immediately so
    /// an empty log is distinguishable from a missing one.
    pub fn create(path: &Path, next_id: u64) -> io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        Ok(Self {
            file,
            next_id,
            bytes: WAL_MAGIC.len() as u64,
        })
    }

    /// Appends one frame in a single `write_all` and returns its id. The
    /// write reaches the kernel before this returns (a `kill -9` after an
    /// acknowledged append loses nothing); it is *not* fsynced — power-loss
    /// durability is provided at snapshot boundaries via [`WalWriter::sync`].
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        assert!(
            payload.len() <= MAX_FRAME_BYTES,
            "WAL frame payload exceeds MAX_FRAME_BYTES"
        );
        let id = self.next_id;
        let frame = encode_frame(id, payload);
        self.file.write_all(&frame)?;
        self.next_id += 1;
        self.bytes += frame.len() as u64;
        Ok(id)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// The id the next appended frame will carry.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Total bytes written to this file, header included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// The result of scanning a WAL file: its longest valid frame prefix.
#[derive(Debug, Default)]
pub struct WalRead {
    /// Valid frames, in file order.
    pub frames: Vec<WalFrame>,
    /// Invalid tail frames discarded (0 on a clean file, 1 after a torn
    /// write, checksum mismatch, or non-monotonic id).
    pub truncated: u64,
}

/// Reads the longest valid prefix of the WAL at `path`. A missing or
/// zero-length file reads as empty and clean; anything else that stops
/// the scan before end-of-file counts one discarded (truncated) frame.
pub fn read_wal(path: &Path) -> io::Result<WalRead> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalRead::default()),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let mut out = WalRead::default();
    if bytes.is_empty() {
        return Ok(out);
    }
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        out.truncated = 1;
        return Ok(out);
    }
    let mut pos = WAL_MAGIC.len();
    let mut prev_id: Option<u64> = None;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER_BYTES {
            out.truncated = 1;
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let id = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        let crc = u64::from_le_bytes(rest[12..20].try_into().unwrap());
        if len > MAX_FRAME_BYTES || rest.len() < FRAME_HEADER_BYTES + len {
            out.truncated = 1;
            break;
        }
        let payload = &rest[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len];
        if frame_crc(id, payload) != crc || prev_id.is_some_and(|p| id <= p) {
            out.truncated = 1;
            break;
        }
        prev_id = Some(id);
        out.frames.push(WalFrame {
            id,
            payload: payload.to_vec(),
        });
        pos += FRAME_HEADER_BYTES + len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ddn-wal-test-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn append_read_round_trip() {
        let path = scratch("roundtrip");
        let mut w = WalWriter::create(&path, 1).unwrap();
        assert_eq!(w.append(b"alpha").unwrap(), 1);
        assert_eq!(w.append(b"beta").unwrap(), 2);
        assert_eq!(w.next_id(), 3);
        let r = read_wal(&path).unwrap();
        assert_eq!(r.truncated, 0);
        assert_eq!(
            r.frames,
            vec![
                WalFrame {
                    id: 1,
                    payload: b"alpha".to_vec()
                },
                WalFrame {
                    id: 2,
                    payload: b"beta".to_vec()
                },
            ]
        );
    }

    #[test]
    fn missing_and_empty_files_read_clean() {
        let path = scratch("absent");
        let r = read_wal(&path).unwrap();
        assert!(r.frames.is_empty());
        assert_eq!(r.truncated, 0);
        fs::write(&path, b"").unwrap();
        let r = read_wal(&path).unwrap();
        assert!(r.frames.is_empty());
        assert_eq!(r.truncated, 0);
    }

    #[test]
    fn every_torn_tail_byte_offset_recovers_the_acked_prefix() {
        let path = scratch("torn");
        let mut w = WalWriter::create(&path, 1).unwrap();
        w.append(b"first frame").unwrap();
        let intact = fs::read(&path).unwrap();
        let tail = encode_frame(2, b"second frame, torn mid-write");
        // Simulate a kill at every byte offset inside the in-flight frame.
        for cut in 0..tail.len() {
            let mut torn = intact.clone();
            torn.extend_from_slice(&tail[..cut]);
            fs::write(&path, &torn).unwrap();
            let r = read_wal(&path).unwrap();
            assert_eq!(r.frames.len(), 1, "cut at {cut}");
            assert_eq!(r.frames[0].payload, b"first frame");
            assert_eq!(r.truncated, if cut == 0 { 0 } else { 1 }, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_checksum_and_bad_magic_stop_the_scan() {
        let path = scratch("crc");
        let mut w = WalWriter::create(&path, 1).unwrap();
        w.append(b"good").unwrap();
        w.append(b"evil").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip a payload byte of the second frame
        fs::write(&path, &bytes).unwrap();
        let r = read_wal(&path).unwrap();
        assert_eq!(r.frames.len(), 1);
        assert_eq!(r.truncated, 1);

        fs::write(&path, b"NOTAWAL!rest").unwrap();
        let r = read_wal(&path).unwrap();
        assert!(r.frames.is_empty());
        assert_eq!(r.truncated, 1);
    }

    #[test]
    fn non_monotonic_ids_are_corruption() {
        let path = scratch("ids");
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_frame(5, b"a"));
        bytes.extend_from_slice(&encode_frame(5, b"b"));
        fs::write(&path, &bytes).unwrap();
        let r = read_wal(&path).unwrap();
        assert_eq!(r.frames.len(), 1);
        assert_eq!(r.truncated, 1);
    }
}
